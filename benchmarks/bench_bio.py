"""Section 5 benchmark: the biology case-study pipeline.

Benchmarks the end-to-end case study on a reduced synthetic dataset and
asserts the qualitative comparison: degree enriches the most pathways
and IMM's top pathways are the planted response modules.
"""

from repro.bio import make_expression_dataset, run_case_study

from conftest import BENCH


def _dataset(seed=4):
    return make_expression_dataset(
        "tumor",
        num_response_modules=3,
        num_housekeeping_modules=3,
        module_size=12,
        response_shadows=6,
        housekeeping_shadows=12,
        num_bridge=60,
        num_noise=80,
        num_samples=50,
        seed=seed,
    )


def test_case_study_pipeline(benchmark):
    ds = _dataset()
    result = benchmark(
        lambda: run_case_study(
            "tumor", k=BENCH.bio_k, seed=4, dataset=ds, theta_cap=BENCH.theta_cap
        )
    )
    assert len(result.imm_seeds) == BENCH.bio_k


def test_bio_shape(benchmark):
    def _shape_check():
        result = run_case_study(
            "tumor", k=36, seed=4, dataset=_dataset(), theta_cap=BENCH.theta_cap
        )
        counts = result.counts()
        fracs = result.top_response_fraction(6)
        # degree concentrated on housekeeping blocks enriches the most sets
        assert counts["degree"] >= counts["IMM"]
        # IMM's top pathways are the disease-relevant (response) ones;
        # degree's and betweenness's are not
        assert fracs["IMM"] > fracs["degree"]
        assert fracs["IMM"] > fracs["betweenness"]


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)