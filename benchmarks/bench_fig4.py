"""Figure 4 benchmark: runtime vs k with phase decomposition (IC)."""

from repro.parallel import PUMA, imm_mt

from conftest import BENCH


def _run(graph, k):
    return imm_mt(
        graph,
        k=k,
        eps=BENCH.fig34_eps_fixed,
        num_threads=20,
        machine=PUMA,
        seed=0,
        theta_cap=BENCH.theta_cap,
    )


def test_fig4_point(benchmark, hepth_ic):
    res = benchmark(lambda: _run(hepth_ic, BENCH.fig34_k_grid[0]))
    assert res.total_time > 0


def test_fig4_shape(benchmark, hepth_ic):
    def _shape_check():
        small = _run(hepth_ic, min(BENCH.fig34_k_grid))
        large = _run(hepth_ic, max(BENCH.fig34_k_grid))
        assert large.total_time > small.total_time  # larger k costs more
        assert large.theta > small.theta  # via θ growth (Figure 2)


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)