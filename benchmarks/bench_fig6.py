"""Figure 6 benchmark: multithreaded strong scaling, IC model.

Asserts the IC findings: near-linear speedups on the larger inputs,
improving with input size.
"""

from repro.parallel import PUMA, imm_mt

from conftest import BENCH


def _speedup_2_to_20(graph):
    def run(threads):
        return imm_mt(
            graph,
            k=BENCH.k_mt,
            eps=BENCH.eps_mt,
            model="IC",
            num_threads=threads,
            machine=PUMA,
            seed=0,
            theta_cap=BENCH.theta_cap,
        ).total_time

    return run(2) / run(20)


def test_fig6_point(benchmark, orkut_ic):
    res = benchmark(
        lambda: imm_mt(
            orkut_ic,
            k=BENCH.k_mt,
            eps=BENCH.eps_mt,
            num_threads=20,
            machine=PUMA,
            seed=0,
            theta_cap=BENCH.theta_cap,
        )
    )
    assert res.ranks == 20


def test_fig6_shape(benchmark, hepth_ic, orkut_ic):
    def _shape_check():
        small_speedup = _speedup_2_to_20(hepth_ic)
        big_speedup = _speedup_2_to_20(orkut_ic)
        # 2 -> 20 threads: meaningful scaling on the big input...
        assert big_speedup > 4.0
        # ...and speedups improve (or at least do not degrade) with size.
        assert big_speedup >= small_speedup * 0.9


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)