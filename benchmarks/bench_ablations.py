"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one design decision of the paper (or of this
reproduction) and measures/validates its effect:

* sorted one-directional layout vs bidirectional hypergraph (memory and
  selection kernel cost);
* per-sample counter-based RNG vs the paper's leap-frog LCG (output
  invariance vs rank count);
* LT weight renormalization on/off (guarantee-preserving weights);
* IMM's martingale θ vs TIM+'s KPT-based θ (estimator tightness);
* CELF laziness vs the naive greedy oracle-call count.
"""

import numpy as np

from repro.baselines import greedy_celf, tim_plus_theta
from repro.graph import lt_normalize
from repro.imm import estimate_theta, select_seeds
from repro.mpi import imm_dist
from repro.rng import SplitMix64
from repro.sampling import (
    HypergraphRRRCollection,
    RRRSampler,
    SortedRRRCollection,
    sample_batch,
)

from conftest import BENCH


def _filled(collection_cls, graph, count=800):
    coll = collection_cls(graph.n)
    sample_batch(graph, "IC", coll, count, seed=0)
    return coll


class TestLayoutAblation:
    def test_selection_sorted_kernel(self, benchmark, hepth_ic):
        coll = _filled(SortedRRRCollection, hepth_ic)
        sel = benchmark(lambda: select_seeds(coll, hepth_ic.n, 10))
        assert len(sel.seeds) == 10

    def test_selection_hypergraph_kernel(self, benchmark, hepth_ic):
        coll = _filled(HypergraphRRRCollection, hepth_ic)
        sel = benchmark(lambda: select_seeds(coll, hepth_ic.n, 10))
        assert len(sel.seeds) == 10

    def test_layouts_same_seeds_different_bytes(self, benchmark, hepth_ic):
        def _shape_check():
            a = _filled(SortedRRRCollection, hepth_ic)
            b = _filled(HypergraphRRRCollection, hepth_ic)
            sa = select_seeds(a, hepth_ic.n, 10)
            sb = select_seeds(b, hepth_ic.n, 10)
            np.testing.assert_array_equal(sa.seeds, sb.seeds)
            assert b.nbytes_model() > 1.5 * a.nbytes_model()


        benchmark.pedantic(_shape_check, rounds=1, iterations=1)

class TestRngAblation:
    def test_per_sample_scheme_rank_invariant(self, benchmark, hepth_ic):
        """The reproduction's default scheme: p cannot change the output."""
        def _shape_check():
            seeds_by_p = [
                imm_dist(
                    hepth_ic, k=8, eps=0.5, num_nodes=p, seed=1, theta_cap=BENCH.theta_cap
                ).seeds
                for p in (1, 4)
            ]
            np.testing.assert_array_equal(seeds_by_p[0], seeds_by_p[1])

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)

    def test_leapfrog_scheme_rank_dependent_but_valid(self, benchmark, hepth_ic):
        """The paper's leap-frog scheme: valid at every p, but the
        sample-to-rank binding makes output p-dependent."""
        def _shape_check():
            results = [
                imm_dist(
                    hepth_ic,
                    k=8,
                    eps=0.5,
                    num_nodes=p,
                    seed=1,
                    rng_scheme="leapfrog",
                    theta_cap=BENCH.theta_cap,
                )
                for p in (1, 4)
            ]
            for res in results:
                assert len(np.unique(res.seeds)) == 8
                assert res.coverage > 0.0


        benchmark.pedantic(_shape_check, rounds=1, iterations=1)

class TestLTNormalizationAblation:
    def test_normalization_bounds_rrr_walks(self, benchmark, hepth_ic):
        """Without renormalization, vertices with in-weight sums > 1
        would make the 'no live edge' residual negative — normalization
        keeps every residual a probability."""
        def _shape_check():
            raw = hepth_ic  # uniform weights: sums can exceed 1
            normalized = lt_normalize(raw)
            sums_raw = [
                raw.in_edge_probs(v).sum() for v in range(raw.n) if raw.in_degree(v)
            ]
            sums_norm = [
                normalized.in_edge_probs(v).sum()
                for v in range(normalized.n)
                if normalized.in_degree(v)
            ]
            assert max(sums_raw) > 1.0  # the hazard exists on this input
            assert max(sums_norm) <= 1.0 + 1e-9  # and normalization removes it

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)

    def test_lt_sampler_on_normalized_weights(self, benchmark, hepth_lt):
        sampler = RRRSampler(hepth_lt, "LT")
        verts, _ = benchmark(lambda: sampler.generate(5, SplitMix64(1)))
        assert 5 in verts.tolist()


class TestEstimatorAblation:
    def test_imm_theta_tighter_than_tim(self, benchmark, hepth_ic):
        """IMM's contribution over TIM+: a tighter lower bound on OPT
        yields fewer samples at the same guarantee."""
        def _shape_check():
            imm_theta = estimate_theta(hepth_ic, 10, 0.5, "IC", seed=0).theta
            tim_theta = tim_plus_theta(hepth_ic, 10, 0.5, seed=0)
            assert imm_theta < tim_theta

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)

    def test_theta_estimation_kernel(self, benchmark, hepth_ic):
        est = benchmark(
            lambda: estimate_theta(
                hepth_ic, 10, 0.5, "IC", seed=0, theta_cap=BENCH.theta_cap
            )
        )
        assert est.theta > 0


class TestCelfAblation:
    def test_celf_lazy_saves_oracle_calls(self, benchmark):
        """CELF re-evaluates only stale heap tops: far fewer oracle calls
        than the n-per-round naive greedy."""
        def _shape_check():
            from repro.graph import barabasi_albert, uniform_random_weights

            g = uniform_random_weights(barabasi_albert(80, 2, seed=1), seed=1, scale=0.3)
            k = 4
            res = greedy_celf(g, k, trials=15, seed=0)
            naive_calls = g.n * k
            assert res.oracle_calls < 0.6 * naive_calls


        benchmark.pedantic(_shape_check, rounds=1, iterations=1)

class TestCommunityDecompositionAblation:
    """Future-work §ii: community decomposition vs whole-graph IMM."""

    def _sbm(self):
        from repro.graph import stochastic_block_model, uniform_random_weights

        g = stochastic_block_model([80, 80, 80], 0.2, 0.003, seed=3)
        return uniform_random_weights(g, seed=1, scale=0.25)

    def test_community_imm_kernel(self, benchmark):
        from repro.community import community_imm

        g = self._sbm()
        res = benchmark.pedantic(
            lambda: community_imm(g, k=9, eps=0.5, seed=2), rounds=1, iterations=1
        )
        assert len(res.seeds) == 9

    def test_decomposition_cheaper_but_not_better(self, benchmark):
        """The paper's criticism quantified: the decomposition does less
        sampling work but cannot beat whole-graph IMM on quality."""
        def _shape_check():
            from repro.community import community_imm
            from repro.diffusion import estimate_spread
            from repro.imm import imm

            g = self._sbm()
            comm = community_imm(g, k=9, eps=0.5, seed=2)
            full = imm(g, k=9, eps=0.5, seed=2)
            assert comm.edges_examined < full.counters.edges_examined
            s_comm = estimate_spread(g, comm.seeds, "IC", trials=150, seed=7).mean
            s_full = estimate_spread(g, full.seeds, "IC", trials=150, seed=7).mean
            assert s_full >= 0.95 * s_comm  # full IMM never loses meaningfully

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)


class TestGraphPartitionAblation:
    """Future-work §i: partitioning the graph as well as R."""

    def test_partitioned_sampling_kernel(self, benchmark, hepth_ic):
        from repro.mpi import partitioned_rr_batch

        batch = benchmark.pedantic(
            lambda: partitioned_rr_batch(hepth_ic, 20, num_ranks=4, seed=0),
            rounds=1,
            iterations=1,
        )
        assert len(batch.collection) == 20

    def test_partitioned_communication_dominates(self, benchmark, hepth_ic):
        """Why the paper replicates the graph: the partitioned design
        pays one n-byte collective per BFS level per sample, while the
        replicated design's sampling phase communicates nothing."""
        def _shape_check():
            from repro.mpi import partitioned_rr_batch
            from repro.parallel import PUMA

            batch = partitioned_rr_batch(
                hepth_ic, 20, num_ranks=8, seed=0, machine=PUMA
            )
            compute_seconds = batch.edges_examined * PUMA.t_edge / 8
            assert batch.comm_seconds > compute_seconds

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)


class TestSketchOracleAblation:
    """Cohen et al.'s claim: sketch queries are orders of magnitude
    cheaper than Monte-Carlo influence estimation at similar accuracy."""

    def test_sketch_oracle_query(self, benchmark, hepth_ic):
        import numpy as np

        from repro.baselines import build_sketches

        sk = build_sketches(hepth_ic, num_instances=8, k=12, seed=0)
        seeds = np.arange(10)
        est = benchmark(lambda: sk.estimate(seeds))
        assert est >= 10

    def test_mc_oracle_query(self, benchmark, hepth_ic):
        import numpy as np

        from repro.diffusion import estimate_spread

        seeds = np.arange(10)
        est = benchmark(
            lambda: estimate_spread(hepth_ic, seeds, "IC", trials=100, seed=1).mean
        )
        assert est >= 10

    def test_oracle_accuracy(self, benchmark, hepth_ic):
        def _shape_check():
            import numpy as np

            from repro.baselines import build_sketches
            from repro.diffusion import estimate_spread

            sk = build_sketches(hepth_ic, num_instances=32, k=24, seed=0)
            seeds = np.arange(10)
            est = sk.estimate(seeds)
            mc = estimate_spread(hepth_ic, seeds, "IC", trials=400, seed=1).mean
            assert abs(est - mc) / mc < 0.35

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)


class TestSweepAblation:
    """The k-sweep's shared collection vs independent per-k runs."""

    def test_sweep_kernel(self, benchmark, hepth_ic):
        from repro.imm import imm_sweep

        results = benchmark.pedantic(
            lambda: imm_sweep(hepth_ic, [5, 10, 20], 0.5, seed=0, theta_cap=BENCH.theta_cap),
            rounds=1,
            iterations=1,
        )
        assert [r.k for r in results] == [5, 10, 20]

    def test_sweep_saves_sampling(self, benchmark, hepth_ic):
        def _shape_check():
            from repro.imm import imm, imm_sweep

            ks = [5, 10, 20]
            sweep = imm_sweep(hepth_ic, ks, 0.5, seed=0, theta_cap=BENCH.theta_cap)
            shared = sweep[-1].num_samples
            independent = sum(
                imm(hepth_ic, k=k, eps=0.5, seed=0, theta_cap=BENCH.theta_cap).num_samples
                for k in ks
            )
            assert shared < independent

        benchmark.pedantic(_shape_check, rounds=1, iterations=1)
