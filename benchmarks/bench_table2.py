"""Table 2 benchmark: serial IMM (hypergraph) vs IMM-OPT (sorted).

Regenerates the Table 2 comparison at benchmark scale and asserts its
shape: identical seed sets, smaller memory for the sorted layout, and a
modeled speedup inside the paper's band.
"""

import numpy as np

from repro.imm import imm
from repro.parallel import PUMA
from repro.perf import modeled_serial_breakdown

from conftest import BENCH

K, EPS, CAP = BENCH.k_serial, BENCH.eps_serial, BENCH.theta_cap


def test_imm_reference_layout(benchmark, hepth_ic):
    result = benchmark(
        lambda: imm(hepth_ic, k=K, eps=EPS, seed=0, layout="hypergraph", theta_cap=CAP)
    )
    assert len(result.seeds) == K


def test_imm_opt_layout(benchmark, hepth_ic):
    result = benchmark(
        lambda: imm(hepth_ic, k=K, eps=EPS, seed=0, layout="sorted", theta_cap=CAP)
    )
    assert len(result.seeds) == K


def test_table2_shape(benchmark, hepth_ic):
    """The paper's Table 2 row: same answer, 2-4x modeled speedup,
    ~18-66% memory savings."""
    def _shape_check():
        ref = imm(hepth_ic, k=K, eps=EPS, seed=0, layout="hypergraph", theta_cap=CAP)
        opt = imm(hepth_ic, k=K, eps=EPS, seed=0, layout="sorted", theta_cap=CAP)
        np.testing.assert_array_equal(ref.seeds, opt.seeds)
        speedup = (
            modeled_serial_breakdown(ref, PUMA).total
            / modeled_serial_breakdown(opt, PUMA).total
        )
        assert 1.5 < speedup < 6.0
        savings = 1.0 - opt.memory_bytes / ref.memory_bytes
        assert 0.15 < savings < 0.75


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)