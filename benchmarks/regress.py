"""Sampling-performance regression harness.

Runs a fixed micro-suite and writes commit-stamped numbers to
``BENCH_sampling.json`` at the repository root:

* **Sampling throughput** — serial vs batched engine generating the full
  θ(ε=0.5, k=50) sample set on the largest registry stand-in
  (com-Orkut, IC): edges/s for both engines and the speedup ratio.
* **Worker scaling** — the process-pool engine at 1/2/4 workers on the
  two largest registry graphs (com-Orkut, soc-LiveJournal1): sampling
  seconds per worker count, the 4-worker speedup, and a per-phase
  breakdown of the fastest pooled rep (worker sampling seconds, arena
  write seconds, parent landing seconds, fused-count merge seconds,
  and IPC descriptor bytes per block).  The ``≥1.6×`` speedup gate and
  the descriptor-size budget (each landed block's IPC payload must
  stay under ``DESCRIPTOR_BYTE_BUDGET`` bytes — the zero-copy arena's
  whole point) are enforced only on hosts with at least 4 usable CPUs
  (``os.sched_getaffinity``); the numbers and the host CPU count are
  printed unconditionally, but a host below that floor refuses to
  *stamp* its worker-scaling record over a gate-ready baseline one
  (``gate_ready`` in the record) — a cramped runner must never bury
  the numbers a capable runner measured.
* **Memory** — the compressed layout's resident-byte promise on the two
  largest registry graphs: modeled resident RRR bytes and bytes per
  sample for the flat and compressed layouts (each measured in a fresh
  subprocess so its peak RSS is honest, not inherited from earlier
  benches), plus selection wall time off each layout on the identical
  sample set.  Two gates: compressed resident bytes must stay at or
  under ``MEMORY_RATIO_GATE`` (0.6×) of flat, and compressed selection
  must finish within ``SELECTION_RATIO_GATE`` (1.5×) of the flat
  kernel.  Both are record-only on workloads whose flat layout is
  smaller than ``MEMORY_GATE_FLOOR_BYTES`` — ratios over a few hundred
  kilobytes of fixed per-layout overhead measure the overhead, not the
  coding.
* **End-to-end ``imm()``** — total seconds, θ, and the selected seed set
  on two registry graphs (cit-HepTh IC, com-YouTube LT).
* **Serving** — freeze-once/query-forever amortization: the one-time
  ``freeze_index`` cost, the zero-copy ``FrozenRRRIndex.open`` time, and
  warm ``top_k`` / ``what_if`` / ``marginal_gain`` latencies against a
  fresh ``imm()`` on the same workload.  Two deterministic gates ride
  along: the served seed set must equal the fresh run's, and the warm
  query must be answered entirely from the index (zero samples added,
  zero edges examined) — a serving path that quietly resamples fails
  here before it fails any timing.
* **Front end** — the async serving front end's traffic numbers on the
  same workload: the zero-fault latency tax over a direct warm engine
  query (gated at ≤ 5 %), the p50/p99 served latency over a concurrent
  distinct-query batch, and the shed rate under an overload burst —
  shedding must happen, stay typed, keep the queue inside its bound,
  and leave every served answer bit-identical.
* **Supervision tax** — the supervised engine with zero faults vs the
  plain pool engine on the same workload; the run fails if supervision
  costs more than ``SUPERVISED_OVERHEAD_TOLERANCE`` (5 %) extra
  wall-clock, so the self-healing bookkeeping can never quietly become
  a per-sample cost.  The gate is two-sided-aware: a *negative*
  overhead beyond the band passes (faster is never a regression) but
  is logged as measurement noise rather than silently accepted as a
  real speedup.

Baseline provenance: every record is stamped with the actual ``HEAD``
at generation time, and the harness refuses to gate against a baseline
whose commit is not an ancestor of the current ``HEAD`` — a record
from a divergent branch (or a hand-edited stamp) would make every
comparison meaningless, so that is a loud failure prompting
``--update-baseline``, not a quiet pass.

Against the checked-in ``BENCH_sampling.json`` the harness fails loudly
(exit 1) when

* any throughput or end-to-end time regresses by more than
  ``TOLERANCE`` (20 %), or
* any ``imm()`` seed set differs from the baseline (a correctness
  regression, not a performance one), or
* the quick equivalence oracle (``repro.validate.validate_quick``)
  reports any violation — cross-implementation divergence fails the
  same gate as a throughput loss, so a perf patch cannot trade
  correctness for speed unnoticed.

Timings are interleaved best-of-``REPS`` within one process — the
hosts this runs on show large run-to-run variance, and min-of-N of
interleaved repetitions is the stable estimator of the achievable time.

Usage::

    python benchmarks/regress.py                   # measure + compare
    python benchmarks/regress.py --update-baseline # accept new numbers
    python benchmarks/regress.py --full-shard 2/3  # one slice of the FULL oracle
    python benchmarks/regress.py --full-shards 3   # the whole 1/3..3/3 matrix
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.datasets import load  # noqa: E402
from repro.imm.imm import imm  # noqa: E402
from repro.sampling import (  # noqa: E402
    BatchedRRRSampler,
    ParallelSamplingEngine,
    RRRSampler,
    SortedRRRCollection,
    sample_batch,
)
from repro.sampling.parallel_engine import DESCRIPTOR_BYTE_BUDGET  # noqa: E402
from repro.sampling.supervisor import SupervisedSamplingEngine  # noqa: E402

BASELINE_PATH = ROOT / "BENCH_sampling.json"
#: Allowed slowdown vs baseline before the harness fails.
TOLERANCE = 0.20
#: Interleaved repetitions per timed quantity (min is reported).
REPS = 5

#: The sampling-throughput workload: the largest registry stand-in with
#: the θ that ε=0.5, k=50 demands of it (measured via estimate_theta).
SAMPLING_DATASET = "com-Orkut"
SAMPLING_MODEL = "IC"
SAMPLING_EPS = 0.5
SAMPLING_K = 50
SAMPLING_THETA = 9980
SAMPLING_SEED = 1

#: End-to-end workloads: (dataset, model, k, eps, seed).
IMM_WORKLOADS = (
    ("cit-HepTh", "IC", 10, 0.5, 1),
    ("com-YouTube", "LT", 10, 0.5, 1),
)

#: The serving workload: (dataset, model, k, eps, seed) — matches the
#: first end-to-end workload so the amortization ratio is meaningful.
SERVING_WORKLOAD = ("cit-HepTh", "IC", 10, 0.5, 1)

#: Worker-scaling workloads: the two largest registry graphs.
WORKER_SCALING_DATASETS = (
    ("com-Orkut", "IC", 9980),
    ("soc-LiveJournal1", "IC", 8000),
)
WORKER_COUNTS = (1, 2, 4)
#: Repetitions per (dataset, worker count) — pool spin-up is excluded
#: from the timing, so fewer reps suffice than for the microseconds-scale
#: engine comparisons above.
WORKER_REPS = 3
#: Required 4-worker sampling speedup on the largest graph — enforced
#: only on hosts that actually have ≥ ``MIN_CPUS_FOR_GATE`` usable CPUs.
MIN_WORKER_SPEEDUP = 1.6
MIN_CPUS_FOR_GATE = 4
#: Allowed zero-fault wall-clock tax of the supervised engine over the
#: plain pool engine on the same workload.
SUPERVISED_OVERHEAD_TOLERANCE = 0.05
SUPERVISED_REPS = 5
SUPERVISED_WORKERS = 2
#: Allowed zero-fault latency tax of the async front end over a direct
#: warm engine query on the same workload.
FRONTEND_OVERHEAD_TOLERANCE = 0.05
#: Reps behind the tax measurement.  The serving query is ~25ms and the
#: 5% band is ~1.2ms — the same order as per-rep scheduler jitter — so
#: the tax is estimated as the *median of paired differences* over
#: interleaved (direct, front-end) reps: pairing cancels host-speed
#: drift and the median rejects the ±several-ms outliers that made a
#: min-vs-min ratio flap across the gate line.
FRONTEND_REPS = 15
#: The overload burst thrown at the front end: ``FRONTEND_BURST``
#: concurrent queries against a queue bounded at
#: ``FRONTEND_BURST_PENDING`` with one worker — most must shed, typed.
FRONTEND_BURST = 12
FRONTEND_BURST_PENDING = 3
#: Size of the concurrent distinct-query batch behind the p50/p99.
FRONTEND_BATCH = 16
#: Allowed zero-fault latency tax of routing a query through the
#: replicated cluster over the identical query on a single front end.
CLUSTER_OVERHEAD_TOLERANCE = 0.05
#: Interleaved (single, routed) pairs behind the tax median — same
#: paired-difference estimator as the front-end tax, same reasons.
CLUSTER_REPS = 15
CLUSTER_REPLICAS = 2
#: Sequential queries against a straggling primary for the hedge
#: win-rate record.
CLUSTER_HEDGE_QUERIES = 6

#: Memory gate: compressed resident RRR bytes must be ≤ this fraction of
#: the flat layout's on the two largest registry graphs (the ≥40 %
#: reduction the HBMax-style coding promises).
MEMORY_RATIO_GATE = 0.6
#: Flat resident bytes below this floor make both memory gates
#: record-only: on a sample set this small the layouts' fixed per-vertex
#: overheads dominate the coded stream and the ratio stops measuring
#: the coding.
MEMORY_GATE_FLOOR_BYTES = 256 * 1024
#: Selection off the coded stream may cost at most this much over the
#: flat kernel on the identical sample set.
SELECTION_RATIO_GATE = 1.5
SELECTION_REPS = 5

#: Runs in a fresh interpreter per (workload, layout) so the reported
#: peak RSS belongs to that layout alone — an in-process high-water mark
#: after the throughput benches would be whichever bench peaked first.
_MEMORY_PROBE = """\
import json, resource, sys
sys.path.insert(0, sys.argv[5])
from repro.datasets import load
from repro.sampling import (
    CompressedRRRCollection, SortedRRRCollection, sample_batch,
)
name, model, theta, layout = sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4]
graph = load(name, model)
cls = CompressedRRRCollection if layout == "compressed" else SortedRRRCollection
coll = cls(graph.n)
sample_batch(graph, model, coll, theta, %d)
if layout == "compressed":
    coll.freeze_permutation()  # the final remap selection reads through
print(json.dumps({
    "resident_bytes": coll.nbytes_model(),
    "entries": coll.total_entries,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
""" % SAMPLING_SEED


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def baseline_provenance_error(baseline: dict) -> str | None:
    """Reason the checked-in baseline must not gate, or ``None``.

    A baseline is gatable only when its commit stamp names an ancestor
    of the current ``HEAD`` — numbers measured on a divergent branch
    (or a stamp that no longer resolves) compare apples to oranges.
    """
    commit = baseline.get("commit")
    if not commit or commit == "unknown":
        return "baseline carries no commit stamp"
    try:
        res = subprocess.run(
            ["git", "merge-base", "--is-ancestor", commit, "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )
    except OSError:
        return "git is unavailable to check baseline ancestry"
    if res.returncode != 0:
        return f"baseline commit {commit} is not an ancestor of HEAD"
    return None


def _time_sampling(graph, model, sampler, engine: str) -> tuple[float, int]:
    """One timed generation of the full θ set into a fresh collection."""
    coll = SortedRRRCollection(graph.n)
    t0 = time.perf_counter()
    batch = sample_batch(
        graph, model, coll, SAMPLING_THETA, SAMPLING_SEED,
        sampler=sampler, engine=engine,
    )
    return time.perf_counter() - t0, batch.edges_examined


def bench_sampling() -> dict:
    graph = load(SAMPLING_DATASET, SAMPLING_MODEL)
    serial = RRRSampler(graph, SAMPLING_MODEL)
    batched = BatchedRRRSampler(graph, SAMPLING_MODEL)
    serial_times, batched_times = [], []
    edges = None
    for _ in range(REPS):  # interleaved so ambient drift hits both engines
        t, e1 = _time_sampling(graph, SAMPLING_MODEL, serial, "serial")
        serial_times.append(t)
        t, e2 = _time_sampling(graph, SAMPLING_MODEL, batched, "batched")
        batched_times.append(t)
        assert e1 == e2, "engines disagree on edges_examined"
        edges = e1
    t_serial, t_batched = min(serial_times), min(batched_times)
    return {
        "dataset": SAMPLING_DATASET,
        "model": SAMPLING_MODEL,
        "eps": SAMPLING_EPS,
        "k": SAMPLING_K,
        "theta": SAMPLING_THETA,
        "edges_examined": int(edges),
        "serial_s": round(t_serial, 4),
        "batched_s": round(t_batched, 4),
        "serial_edges_per_s": round(edges / t_serial),
        "batched_edges_per_s": round(edges / t_batched),
        "speedup": round(t_serial / t_batched, 2),
    }


def bench_worker_scaling() -> dict:
    """Time the process-pool engine at each worker count.

    Engine construction (pool spin-up + shared-memory population) is
    excluded: it is a once-per-run cost the drivers pay once, while the
    per-θ sampling loop is what the paper's scaling figures measure.

    For every pooled worker count the fastest rep's per-phase breakdown
    is recorded from ``EngineStats`` deltas: worker sampling and arena
    write seconds (summed across workers), parent landing and counting
    merge seconds, and — the zero-copy contract made measurable — the
    IPC descriptor bytes that actually crossed the pipe per block.
    """
    phase_keys = (
        "blocks_landed", "sample_seconds", "arena_write_seconds",
        "landing_seconds", "count_merge_seconds", "ipc_descriptor_bytes",
        "arena_overflows",
    )
    cpus = _host_cpus()
    out: dict = {
        "host_cpus": cpus,
        # Numbers measured below MIN_CPUS_FOR_GATE cannot arm the speedup
        # gate and must never be *stamped* over a record that can: main()
        # keeps a gate-ready baseline record when this is False.
        "gate_ready": cpus >= MIN_CPUS_FOR_GATE,
        "workers": list(WORKER_COUNTS),
    }
    for name, model, theta in WORKER_SCALING_DATASETS:
        graph = load(name, model)
        indices = np.arange(theta, dtype=np.int64)
        per_worker: dict[str, float] = {}
        phases: dict[str, dict] = {}
        for w in WORKER_COUNTS:
            with ParallelSamplingEngine(graph, model, workers=w) as eng:
                times, deltas = [], []
                for _ in range(WORKER_REPS):
                    coll = SortedRRRCollection(graph.n)
                    before = eng.stats.as_dict()
                    t0 = time.perf_counter()
                    eng.sample_into(coll, indices, SAMPLING_SEED)
                    times.append(time.perf_counter() - t0)
                    after = eng.stats.as_dict()
                    delta = {k: after[k] - before[k] for k in phase_keys}
                    # gauge, not a counter: the live segment count
                    delta["arena_segments"] = after["arena_segments"]
                    deltas.append(delta)
                chunk_initial = eng.stats.chunk_initial
                chunk_final = eng.stats.chunk_final
            per_worker[str(w)] = round(min(times), 4)
            if w > 1:  # the pooled path is the one with phases to split
                d = deltas[int(np.argmin(times))]
                blocks = max(1, d["blocks_landed"])
                phases[str(w)] = {
                    "blocks_landed": d["blocks_landed"],
                    "sample_s": round(d["sample_seconds"], 4),
                    "arena_write_s": round(d["arena_write_seconds"], 4),
                    "landing_s": round(d["landing_seconds"], 4),
                    "count_merge_s": round(d["count_merge_seconds"], 4),
                    "ipc_descriptor_bytes": d["ipc_descriptor_bytes"],
                    "ipc_bytes_per_block": round(
                        d["ipc_descriptor_bytes"] / blocks, 1
                    ),
                    "arena_segments": d["arena_segments"],
                    "arena_overflows": d["arena_overflows"],
                    "chunk": f"{chunk_initial}->{chunk_final}",
                }
        t1, tmax = per_worker[str(WORKER_COUNTS[0])], per_worker[str(WORKER_COUNTS[-1])]
        out[f"{name}/{model}"] = {
            "theta": theta,
            "seconds": per_worker,
            "speedup_at_max_workers": round(t1 / tmax, 2),
            "phases": phases,
        }
    return out


def bench_supervised_overhead() -> dict:
    """Zero-fault supervision tax vs the plain pool engine.

    Both engines are pre-warmed (pool spin-up excluded, exactly as in
    :func:`bench_worker_scaling`) and run the identical θ workload
    interleaved.  Supervision bookkeeping — per-block deadlines, the
    straggler median window, the fault clock — is per *block*, not per
    sample, so its cost must stay inside the timing noise.
    """
    name, model, theta = WORKER_SCALING_DATASETS[0]
    graph = load(name, model)
    indices = np.arange(theta, dtype=np.int64)
    plain_times, sup_times = [], []
    with ParallelSamplingEngine(
        graph, model, workers=SUPERVISED_WORKERS
    ) as plain, SupervisedSamplingEngine(
        graph, model, workers=SUPERVISED_WORKERS
    ) as sup:
        plain.worker_pids()  # force the lazy worker spawn before timing
        sup.worker_pids()
        for _ in range(SUPERVISED_REPS):
            coll = SortedRRRCollection(graph.n)
            t0 = time.perf_counter()
            plain.sample_into(coll, indices, SAMPLING_SEED)
            plain_times.append(time.perf_counter() - t0)
            coll = SortedRRRCollection(graph.n)
            t0 = time.perf_counter()
            sup.sample_into(coll, indices, SAMPLING_SEED)
            sup_times.append(time.perf_counter() - t0)
    t_plain, t_sup = min(plain_times), min(sup_times)
    return {
        "dataset": name,
        "model": model,
        "theta": theta,
        "workers": SUPERVISED_WORKERS,
        "unsupervised_s": round(t_plain, 4),
        "supervised_s": round(t_sup, 4),
        "overhead": round(t_sup / t_plain - 1.0, 4),
        "tolerance": SUPERVISED_OVERHEAD_TOLERANCE,
    }


def supervised_overhead_gate(so: dict) -> list[str]:
    """Supervision with zero faults must cost < 5 % extra wall-clock.

    Two-sided-aware: only a *positive* tax beyond the band fails.  A
    negative value that large is physically suspect (supervision adds
    bookkeeping, it cannot speed up the identical sampling work), so it
    passes the gate but is called out as measurement noise — an honest
    record beats a silent one when the timings are this jittery.
    """
    if so["overhead"] > SUPERVISED_OVERHEAD_TOLERANCE:
        return [
            f"OVERHEAD supervised[{so['dataset']}/{so['model']}]: zero-fault "
            f"supervision tax {so['overhead']:+.1%} exceeds the allowed "
            f"{SUPERVISED_OVERHEAD_TOLERANCE:.0%} "
            f"({so['supervised_s']}s vs {so['unsupervised_s']}s)"
        ]
    if so["overhead"] < -SUPERVISED_OVERHEAD_TOLERANCE:
        print(
            f"  note: supervised tax {so['overhead']:+.1%} is negative beyond "
            f"the ±{SUPERVISED_OVERHEAD_TOLERANCE:.0%} band — supervision "
            "cannot make identical work faster, so this is measurement "
            "noise, not a speedup (gate passes)"
        )
    return []


def bench_serving() -> dict:
    """Freeze-once/query-forever amortization on one registry workload.

    The fresh ``imm()`` time is the cost every un-amortized query pays;
    the warm ``top_k`` time is what the frozen index serves it for.  The
    query is timed only after one warm-up call so the lazy vertex index
    is built (that cost is part of ``open_s``'s story, not the steady
    state the serving layer advertises).
    """
    import tempfile

    from repro.serving import FrozenRRRIndex, InfluenceQueryEngine, freeze_index

    name, model, k, eps, seed = SERVING_WORKLOAD
    graph = load(name, model)
    fresh_times, ref = [], None
    for _ in range(REPS):
        t0 = time.perf_counter()
        ref = imm(graph, k, eps, model, seed=seed)
        fresh_times.append(time.perf_counter() - t0)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as td:
        out_dir = td + "/index"
        t0 = time.perf_counter()
        index, _ = freeze_index(graph, k, eps, model, seed, out_dir=out_dir)
        freeze_s = time.perf_counter() - t0
        num_samples, entries = index.num_samples, index.entries
        index.close()

        open_times = []
        for _ in range(REPS):
            t0 = time.perf_counter()
            FrozenRRRIndex.open(out_dir).close()
            open_times.append(time.perf_counter() - t0)

        index = FrozenRRRIndex.open(out_dir, graph=graph)
        engine = InfluenceQueryEngine(index, graph=graph, verify=False)
        result = engine.top_k()  # warm-up builds the lazy vertex index
        query_times, whatif_times, marginal_times = [], [], []
        forced = (int(ref.seeds[0]),)
        half_set = np.asarray(ref.seeds[: max(1, k // 2)])
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = engine.top_k()
            query_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            engine.what_if(k, forced=forced)
            whatif_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            engine.marginal_gain(half_set)
            marginal_times.append(time.perf_counter() - t0)
        index.close()

    t_fresh, t_query = min(fresh_times), min(query_times)
    return {
        "dataset": name,
        "model": model,
        "k": k,
        "eps": eps,
        "seed": seed,
        "num_samples": num_samples,
        "entries": entries,
        "fresh_imm_s": round(t_fresh, 4),
        "freeze_s": round(freeze_s, 4),
        "open_s": round(min(open_times), 4),
        "query_s": round(t_query, 4),
        "what_if_s": round(min(whatif_times), 4),
        "marginal_s": round(min(marginal_times), 4),
        "query_speedup_vs_fresh": round(t_fresh / t_query, 1),
        "seeds_match_fresh": bool(np.array_equal(result.seeds, ref.seeds)),
        "served_from_index": bool(
            result.served_from_index and result.edges_examined == 0
        ),
    }


def serving_gate(sv: dict) -> list[str]:
    """The serving layer's two deterministic promises, gated every run."""
    failures = []
    wl = f"{sv['dataset']}/{sv['model']}"
    if not sv["seeds_match_fresh"]:
        failures.append(
            f"SERVING {wl}: frozen-index top_k diverges from a fresh imm() "
            "run — the prefix replay no longer reproduces the estimation "
            "control flow"
        )
    if not sv["served_from_index"]:
        failures.append(
            f"SERVING {wl}: warm query resampled instead of serving from "
            "the frozen index (the no-resampling contract is broken)"
        )
    return failures


def bench_frontend() -> dict:
    """The async front end's traffic numbers on the serving workload.

    Three measurements, each against the same frozen index:

    * **zero-fault tax** — a warm ``top_k`` through the front end
      (admission, coalescing table, lease, worker-thread hop) vs the
      same query on a bare engine; the robustness layer must cost
      < ``FRONTEND_OVERHEAD_TOLERANCE`` when nothing goes wrong.
    * **served-latency distribution** — p50/p99 over a concurrent batch
      of distinct what-if queries, queueing included (the number a
      caller actually observes under load).
    * **shed rate under an overload burst** — ``FRONTEND_BURST``
      concurrent queries against one straggling worker and a queue
      bounded at ``FRONTEND_BURST_PENDING``: the excess must shed with
      typed rejections while every served answer stays bit-identical.
    """
    import asyncio
    import tempfile

    from repro.serving import (
        AdmissionRejected,
        FrozenRRRIndex,
        InfluenceQueryEngine,
        ServingFrontend,
        freeze_index,
    )

    name, model, k, eps, seed = SERVING_WORKLOAD
    graph = load(name, model)
    ref = imm(graph, k, eps, model, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-frontend-") as td:
        out_dir = td + "/index"
        index, _ = freeze_index(graph, k, eps, model, seed, out_dir=out_dir)
        index.close()

        # Direct warm-engine reference: the no-frontend latency.  The
        # reps are *interleaved* with the front-end reps below — host
        # speed drifts by more than the 5% band over the seconds a
        # separate back-to-back block would take, and pairing each rep
        # with its reference makes that drift cancel out of the ratio.
        index = FrozenRRRIndex.open(out_dir)
        engine = InfluenceQueryEngine(index, verify=False)
        engine.top_k()  # warm-up builds the lazy vertex index

        async def _zero_fault():
            async with ServingFrontend(concurrency=1) as fe:
                await fe.top_k(out_dir)  # warm-up: open + thread pool
                direct, times = [], []
                for _ in range(FRONTEND_REPS):
                    t0 = time.perf_counter()
                    engine.top_k()
                    direct.append(time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    res = await fe.top_k(out_dir)
                    times.append(time.perf_counter() - t0)
                return direct, times, res

        async def _latency_batch():
            async with ServingFrontend(concurrency=4) as fe:
                await fe.top_k(out_dir)

                async def timed(i):
                    t0 = time.perf_counter()
                    await fe.what_if(out_dir, k, forced=(i,))
                    return time.perf_counter() - t0

                return await asyncio.gather(
                    *[timed(i) for i in range(FRONTEND_BATCH)]
                )

        async def _burst():
            fe = ServingFrontend(
                concurrency=1,
                max_pending=FRONTEND_BURST_PENDING,
                fault_plan="slowquery:0x0.05",
            )
            results = await asyncio.gather(
                *[fe.top_k(out_dir) for _ in range(FRONTEND_BURST)],
                return_exceptions=True,
            )
            await fe.close()
            shed = sum(isinstance(r, AdmissionRejected) for r in results)
            untyped = sum(
                isinstance(r, BaseException)
                and not isinstance(r, AdmissionRejected)
                for r in results
            )
            served = [r for r in results if not isinstance(r, BaseException)]
            identical = all(
                bool(np.array_equal(r.seeds, ref.seeds)) for r in served
            )
            return shed, untyped, identical, fe.stats.peak_inflight

        direct_times, front_times, front_res = asyncio.run(_zero_fault())
        index.close()
        lats = asyncio.run(_latency_batch())
        shed, untyped, identical, peak = asyncio.run(_burst())

    t_direct = min(direct_times)
    med_diff = float(
        np.median([f - d for d, f in zip(direct_times, front_times)])
    )
    t_front = t_direct + max(med_diff, 0.0)
    return {
        "dataset": name,
        "model": model,
        "k": k,
        "eps": eps,
        "seed": seed,
        "direct_query_s": round(t_direct, 4),
        "frontend_query_s": round(t_front, 4),
        "overhead": round(med_diff / t_direct, 4),
        "tolerance": FRONTEND_OVERHEAD_TOLERANCE,
        "zero_fault_bit_identical": bool(
            np.array_equal(front_res.seeds, ref.seeds)
        ),
        "batch_queries": FRONTEND_BATCH,
        "p50_ms": round(float(np.percentile(lats, 50)) * 1e3, 2),
        "p99_ms": round(float(np.percentile(lats, 99)) * 1e3, 2),
        "burst": FRONTEND_BURST,
        "burst_bound": FRONTEND_BURST_PENDING,
        "burst_shed": int(shed),
        "burst_shed_rate": round(shed / FRONTEND_BURST, 2),
        "burst_untyped_failures": int(untyped),
        "burst_peak_inflight": int(peak),
        "burst_served_bit_identical": bool(identical),
    }


def frontend_gate(fr: dict) -> list[str]:
    """The front end's traffic promises, gated every run.

    Like :func:`supervised_overhead_gate`, the tax gate is
    two-sided-aware: only a positive tax beyond the band fails, and a
    negative one beyond it is called out as noise.
    """
    failures = []
    wl = f"{fr['dataset']}/{fr['model']}"
    if fr["overhead"] > FRONTEND_OVERHEAD_TOLERANCE:
        failures.append(
            f"OVERHEAD frontend[{wl}]: zero-fault front-end tax "
            f"{fr['overhead']:+.1%} exceeds the allowed "
            f"{FRONTEND_OVERHEAD_TOLERANCE:.0%} "
            f"({fr['frontend_query_s']}s vs {fr['direct_query_s']}s direct)"
        )
    elif fr["overhead"] < -FRONTEND_OVERHEAD_TOLERANCE:
        print(
            f"  note: frontend tax {fr['overhead']:+.1%} is negative beyond "
            f"the ±{FRONTEND_OVERHEAD_TOLERANCE:.0%} band — the front end "
            "cannot make the identical query faster, so this is measurement "
            "noise, not a speedup (gate passes)"
        )
    if not fr["zero_fault_bit_identical"] or not fr["burst_served_bit_identical"]:
        failures.append(
            f"FRONTEND {wl}: a served answer diverged from the fresh imm() "
            "run — the traffic layer broke the bit-identity contract"
        )
    if fr["burst_untyped_failures"]:
        failures.append(
            f"FRONTEND {wl}: {fr['burst_untyped_failures']} overload "
            "failure(s) were not typed AdmissionRejected — shedding must "
            "never surface as an arbitrary exception"
        )
    if fr["burst_shed"] == 0:
        failures.append(
            f"FRONTEND {wl}: an overload burst of {fr['burst']} against a "
            f"queue bound of {fr['burst_bound']} shed nothing — admission "
            "control is not bounding the pileup"
        )
    if fr["burst_peak_inflight"] > fr["burst_bound"]:
        failures.append(
            f"FRONTEND {wl}: peak inflight {fr['burst_peak_inflight']} "
            f"exceeded the admission bound {fr['burst_bound']}"
        )
    return failures


def bench_cluster() -> dict:
    """The replicated cluster's routing numbers on the serving workload.

    Three measurements against the same frozen index:

    * **zero-fault routing tax** — a warm ``top_k`` through a
      ``CLUSTER_REPLICAS``-replica router (rendezvous hash, health
      bookkeeping, dispatch indirection) vs the identical query on a
      single front end, as the median of paired differences over
      interleaved reps.  Hedging is off here: it is a tail-latency
      feature with its own axis below, and letting duplicate dispatches
      steal worker time would charge the routing layer for work it
      didn't do.
    * **failover recovery latency** — first query against a router
      whose rendezvous primary is crashed: the failed dispatch, the
      backoff, and the secondary's answer, end to end (recorded, not
      gated — it is dominated by the configured backoff).
    * **hedge win rate** — sequential queries against a straggling
      primary with an aggressive hedge delay: how often the duplicate
      dispatch beats the straggler (recorded, not gated — it is a
      property of the injected latency gap).

    Bit-identity of every answer on every axis is gated, as is the
    presence of the failover/hedge machinery actually engaging: a
    router that never fails over a crashed primary or never hedges past
    a straggler would otherwise record vacuous numbers forever.
    """
    import asyncio
    import tempfile

    from repro.serving import ClusterRouter, ServingFrontend, freeze_index

    name, model, k, eps, seed = SERVING_WORKLOAD
    graph = load(name, model)
    ref = imm(graph, k, eps, model, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as td:
        out_dir = td + "/index"
        index, _ = freeze_index(graph, k, eps, model, seed, out_dir=out_dir)
        index.close()

        async def _zero_fault():
            async with ServingFrontend(concurrency=1) as fe, ClusterRouter(
                num_replicas=CLUSTER_REPLICAS, concurrency=1, hedge=False
            ) as cr:
                await fe.top_k(out_dir)  # warm-up: open + thread pool
                await cr.top_k(out_dir)
                single, routed = [], []
                for _ in range(CLUSTER_REPS):
                    t0 = time.perf_counter()
                    await fe.top_k(out_dir)
                    single.append(time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    res = await cr.top_k(out_dir)
                    routed.append(time.perf_counter() - t0)
                return single, routed, res

        async def _primary():
            async with ClusterRouter(
                num_replicas=CLUSTER_REPLICAS, hedge=False
            ) as cr:
                return cr._order(out_dir)[0].idx

        async def _failover(primary):
            async with ClusterRouter(
                num_replicas=CLUSTER_REPLICAS, concurrency=1, hedge=False,
                fault_plan=f"replicacrash:{primary}@0", backoff_base=0.001,
            ) as cr:
                t0 = time.perf_counter()
                res = await cr.top_k(out_dir)
                dt = time.perf_counter() - t0
                return dt, res, cr.stats.failovers

        async def _hedge(primary):
            async with ClusterRouter(
                num_replicas=CLUSTER_REPLICAS, concurrency=2,
                fault_plan=f"replicaslow:{primary}x0.05", hedge_after=0.005,
            ) as cr:
                results = [
                    await cr.top_k(out_dir)
                    for _ in range(CLUSTER_HEDGE_QUERIES)
                ]
                identical = all(
                    bool(np.array_equal(r.seeds, ref.seeds)) for r in results
                )
                return cr.stats.hedges, cr.stats.hedge_wins, identical

        single_times, routed_times, routed_res = asyncio.run(_zero_fault())
        primary = asyncio.run(_primary())
        fo_s, fo_res, fo_count = asyncio.run(_failover(primary))
        hedges, hedge_wins, hedged_identical = asyncio.run(_hedge(primary))

    t_single = min(single_times)
    med_diff = float(
        np.median([r - s for s, r in zip(single_times, routed_times)])
    )
    t_routed = t_single + max(med_diff, 0.0)
    return {
        "dataset": name,
        "model": model,
        "k": k,
        "eps": eps,
        "seed": seed,
        "replicas": CLUSTER_REPLICAS,
        "single_query_s": round(t_single, 4),
        "router_query_s": round(t_routed, 4),
        "overhead": round(med_diff / t_single, 4),
        "tolerance": CLUSTER_OVERHEAD_TOLERANCE,
        "zero_fault_bit_identical": bool(
            np.array_equal(routed_res.seeds, ref.seeds)
        ),
        "failover_recovery_s": round(fo_s, 4),
        "failovers": int(fo_count),
        "failover_bit_identical": bool(
            np.array_equal(fo_res.seeds, ref.seeds)
        ),
        "hedge_queries": CLUSTER_HEDGE_QUERIES,
        "hedges": int(hedges),
        "hedge_wins": int(hedge_wins),
        "hedge_win_rate": round(hedge_wins / max(hedges, 1), 2),
        "hedged_bit_identical": bool(hedged_identical),
    }


def cluster_gate(cl: dict) -> list[str]:
    """The replicated cluster's promises, gated every run.

    Same two-sided tax treatment as :func:`frontend_gate`: only a
    positive routing tax beyond the band fails; a negative one beyond
    it is measurement noise, called out as such.
    """
    failures = []
    wl = f"{cl['dataset']}/{cl['model']}"
    if cl["overhead"] > CLUSTER_OVERHEAD_TOLERANCE:
        failures.append(
            f"OVERHEAD cluster[{wl}]: zero-fault routing tax "
            f"{cl['overhead']:+.1%} exceeds the allowed "
            f"{CLUSTER_OVERHEAD_TOLERANCE:.0%} "
            f"({cl['router_query_s']}s vs {cl['single_query_s']}s single)"
        )
    elif cl["overhead"] < -CLUSTER_OVERHEAD_TOLERANCE:
        print(
            f"  note: cluster routing tax {cl['overhead']:+.1%} is negative "
            f"beyond the ±{CLUSTER_OVERHEAD_TOLERANCE:.0%} band — the router "
            "cannot make the identical query faster, so this is measurement "
            "noise, not a speedup (gate passes)"
        )
    if not (
        cl["zero_fault_bit_identical"]
        and cl["failover_bit_identical"]
        and cl["hedged_bit_identical"]
    ):
        failures.append(
            f"CLUSTER {wl}: a routed answer diverged from the fresh imm() "
            "run — the replication layer broke the bit-identity contract"
        )
    if cl["failovers"] == 0:
        failures.append(
            f"CLUSTER {wl}: a query against a crashed primary recorded no "
            "failover — the health-checked routing never engaged"
        )
    if cl["hedges"] == 0:
        failures.append(
            f"CLUSTER {wl}: {cl['hedge_queries']} queries against a "
            "straggling primary never hedged — the tail-latency duplicate "
            "dispatch never engaged"
        )
    return failures


def bench_memory() -> dict:
    """Resident bytes + selection time, flat vs compressed layout.

    Each (workload, layout) pair samples the full θ set in a fresh
    subprocess (:data:`_MEMORY_PROBE`) and reports the layout's modeled
    resident bytes and the subprocess's honest peak RSS.  Selection is
    then timed in-process off both layouts on the identical sample set,
    interleaved best-of-``SELECTION_REPS``, with the compressed layout's
    one-time final remap paid *before* the timing (in a real ``imm()``
    run it amortizes across the θ-doubling rounds) but recorded
    alongside so nothing hides.
    """
    from repro.imm.select import select_seeds_compressed, select_seeds_sorted
    from repro.sampling import CompressedRRRCollection

    out: dict = {
        "ratio_gate": MEMORY_RATIO_GATE,
        "gate_floor_bytes": MEMORY_GATE_FLOOR_BYTES,
        "selection_gate": SELECTION_RATIO_GATE,
    }
    for name, model, theta in WORKER_SCALING_DATASETS:
        rec: dict = {"theta": theta}
        for layout in ("flat", "compressed"):
            res = subprocess.run(
                [
                    sys.executable, "-c", _MEMORY_PROBE,
                    name, model, str(theta), layout, str(ROOT / "src"),
                ],
                capture_output=True, text=True, check=True,
            )
            probe = json.loads(res.stdout)
            rec[layout] = {
                "resident_bytes": int(probe["resident_bytes"]),
                "bytes_per_sample": round(probe["resident_bytes"] / theta, 1),
                "peak_rss_kb": int(probe["maxrss_kb"]),
            }
            entries = int(probe["entries"])
        rec["entries"] = entries
        rec["resident_ratio"] = round(
            rec["compressed"]["resident_bytes"] / rec["flat"]["resident_bytes"], 4
        )
        rec["gated"] = bool(
            rec["flat"]["resident_bytes"] >= MEMORY_GATE_FLOOR_BYTES
        )

        graph = load(name, model)
        flat_coll = SortedRRRCollection(graph.n)
        comp_coll = CompressedRRRCollection(graph.n)
        sample_batch(graph, model, flat_coll, theta, SAMPLING_SEED)
        sample_batch(graph, model, comp_coll, theta, SAMPLING_SEED)
        t0 = time.perf_counter()
        comp_coll.freeze_permutation()
        remap_s = time.perf_counter() - t0
        flat_times, comp_times, seeds_match = [], [], True
        for _ in range(SELECTION_REPS):
            t0 = time.perf_counter()
            a = select_seeds_sorted(flat_coll, graph.n, SAMPLING_K)
            flat_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            b = select_seeds_compressed(comp_coll, graph.n, SAMPLING_K)
            comp_times.append(time.perf_counter() - t0)
            seeds_match &= bool(np.array_equal(a.seeds, b.seeds))
        rec["flat"]["select_s"] = round(min(flat_times), 4)
        rec["compressed"]["select_s"] = round(min(comp_times), 4)
        rec["compressed"]["final_remap_s"] = round(remap_s, 4)
        rec["selection_ratio"] = round(min(comp_times) / min(flat_times), 2)
        rec["seeds_match"] = seeds_match
        out[f"{name}/{model}"] = rec
    return out


def memory_gate(mem: dict) -> list[str]:
    """The compressed layout's two promises: ≤0.6× resident bytes and
    ≤1.5× selection time, gated only above the size floor.  Seed-set
    parity between the layouts is gated unconditionally — a divergence
    is a correctness bug at any size."""
    failures: list[str] = []
    for wl, rec in mem.items():
        if not isinstance(rec, dict) or "resident_ratio" not in rec:
            continue
        if not rec["seeds_match"]:
            failures.append(
                f"MEMORY {wl}: compressed-layout selection diverges from the "
                "flat layout on the identical sample set — bit-parity broken"
            )
        if not rec["gated"]:
            print(
                f"  memory gate record-only for {wl}: flat resident "
                f"{rec['flat']['resident_bytes']:,} B is below the "
                f"{MEMORY_GATE_FLOOR_BYTES:,} B floor"
            )
            continue
        if rec["resident_ratio"] > MEMORY_RATIO_GATE:
            failures.append(
                f"MEMORY {wl}: compressed resident bytes are "
                f"{rec['resident_ratio']:.2f}x of flat "
                f"({rec['compressed']['resident_bytes']:,} vs "
                f"{rec['flat']['resident_bytes']:,} B) — the "
                f"{MEMORY_RATIO_GATE}x gate demands a ≥"
                f"{1 - MEMORY_RATIO_GATE:.0%} reduction"
            )
        if rec["selection_ratio"] > SELECTION_RATIO_GATE:
            failures.append(
                f"SELECTION {wl}: coded-stream selection is "
                f"{rec['selection_ratio']}x of the flat kernel "
                f"({rec['compressed']['select_s']}s vs "
                f"{rec['flat']['select_s']}s) — above the "
                f"{SELECTION_RATIO_GATE}x budget"
            )
    return failures


def bench_imm() -> dict:
    out = {}
    for name, model, k, eps, seed in IMM_WORKLOADS:
        graph = load(name, model)
        times, result = [], None
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = imm(graph, k, eps, model, seed=seed)
            times.append(time.perf_counter() - t0)
        out[f"{name}/{model}"] = {
            "k": k,
            "eps": eps,
            "seed": seed,
            "theta": result.theta,
            "seconds": round(min(times), 4),
            "seeds": np.asarray(result.seeds).tolist(),
        }
    return out


def compare(fresh: dict, baseline: dict) -> list[str]:
    """Return a list of loud failure messages (empty = no regression)."""
    failures: list[str] = []
    base_s = baseline.get("sampling", {})
    new_s = fresh["sampling"]
    for key in ("serial_edges_per_s", "batched_edges_per_s"):
        old = base_s.get(key)
        if old and new_s[key] < old * (1.0 - TOLERANCE):
            failures.append(
                f"REGRESSION sampling.{key}: {new_s[key]:,} edges/s is "
                f">{TOLERANCE:.0%} below baseline {old:,}"
            )
    base_i = baseline.get("imm", {})
    for wl, new in fresh["imm"].items():
        old = base_i.get(wl)
        if old is None:
            continue
        if new["seconds"] > old["seconds"] * (1.0 + TOLERANCE):
            failures.append(
                f"REGRESSION imm[{wl}].seconds: {new['seconds']}s is "
                f">{TOLERANCE:.0%} above baseline {old['seconds']}s"
            )
        if new["seeds"] != old["seeds"]:
            failures.append(
                f"CORRECTNESS imm[{wl}]: seed set changed vs baseline — "
                f"the sampling engines no longer reproduce the recorded output"
            )
    base_sv = baseline.get("serving", {})
    new_sv = fresh.get("serving", {})
    for key in ("query_s", "what_if_s", "marginal_s"):
        old = base_sv.get(key)
        if old and new_sv.get(key, 0) > old * (1.0 + TOLERANCE):
            failures.append(
                f"REGRESSION serving.{key}: {new_sv[key]}s is "
                f">{TOLERANCE:.0%} above baseline {old}s"
            )
    base_fr = baseline.get("frontend", {})
    new_fr = fresh.get("frontend", {})
    for key in ("frontend_query_s",):
        old = base_fr.get(key)
        if old and new_fr.get(key, 0) > old * (1.0 + TOLERANCE):
            failures.append(
                f"REGRESSION frontend.{key}: {new_fr[key]}s is "
                f">{TOLERANCE:.0%} above baseline {old}s"
            )
    base_cl = baseline.get("cluster", {})
    new_cl = fresh.get("cluster", {})
    for key in ("router_query_s",):
        old = base_cl.get(key)
        if old and new_cl.get(key, 0) > old * (1.0 + TOLERANCE):
            failures.append(
                f"REGRESSION cluster.{key}: {new_cl[key]}s is "
                f">{TOLERANCE:.0%} above baseline {old}s"
            )
    return failures


def worker_scaling_gate(ws: dict) -> list[str]:
    """The ``≥1.6×`` 4-worker gate, enforced only on capable hosts.

    The same capable-host condition also arms the descriptor-size
    budget: every pooled worker count on every dataset must have moved
    at most ``DESCRIPTOR_BYTE_BUDGET`` IPC bytes per landed block — a
    result that quietly rode back through the pickle fallback instead
    of the arena would blow this long before it blows the speedup.
    """
    if ws["host_cpus"] < MIN_CPUS_FOR_GATE:
        print(
            f"  worker-scaling gate skipped: host has {ws['host_cpus']} usable "
            f"CPU(s) < {MIN_CPUS_FOR_GATE} (numbers recorded for audit)"
        )
        return []
    failures: list[str] = []
    name, model, _ = WORKER_SCALING_DATASETS[0]  # the largest graph
    got = ws[f"{name}/{model}"]["speedup_at_max_workers"]
    if got < MIN_WORKER_SPEEDUP:
        failures.append(
            f"SCALING {name}/{model}: {WORKER_COUNTS[-1]}-worker sampling "
            f"speedup {got}x is below the required {MIN_WORKER_SPEEDUP}x"
        )
    for wl, rec in ws.items():
        if not isinstance(rec, dict):
            continue
        for w, ph in rec.get("phases", {}).items():
            if ph["ipc_bytes_per_block"] > DESCRIPTOR_BYTE_BUDGET:
                failures.append(
                    f"IPC {wl} at {w} workers: {ph['ipc_bytes_per_block']} "
                    f"descriptor bytes/block exceeds the "
                    f"{DESCRIPTOR_BYTE_BUDGET}-byte budget "
                    f"({ph['arena_overflows']} inline fallback(s) of "
                    f"{ph['blocks_landed']} block(s))"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the fresh numbers as the new baseline (skip comparison)",
    )
    parser.add_argument(
        "--skip-validate",
        action="store_true",
        help="skip the quick equivalence oracle (perf numbers only)",
    )
    parser.add_argument(
        "--full-shard",
        default=None,
        metavar="I/M",
        help="run shard I of M of the FULL equivalence oracle instead of "
        "the quick sweep (CI runs the shards as a job matrix)",
    )
    parser.add_argument(
        "--full-shards",
        type=int,
        default=None,
        metavar="M",
        help="run the entire 1/M..M/M full-oracle shard matrix sequentially",
    )
    args = parser.parse_args(argv)
    if args.full_shard and args.full_shards:
        parser.error("--full-shard and --full-shards are mutually exclusive")

    # Resolve the oracle shard plan up front: a malformed spec must fail
    # before minutes of benchmarking, not after.
    shards: list[tuple[int, int]] = []
    if args.full_shard:
        try:
            i_s, m_s = args.full_shard.split("/", 1)
            i, m = int(i_s), int(m_s)
        except ValueError:
            parser.error(f"--full-shard expects I/M (e.g. 2/3), got {args.full_shard!r}")
        if not 1 <= i <= m:
            parser.error(f"--full-shard needs 1 <= I <= M, got {i}/{m}")
        shards = [(i, m)]
    elif args.full_shards:
        if args.full_shards < 1:
            parser.error("--full-shards must be >= 1")
        shards = [(i, args.full_shards) for i in range(1, args.full_shards + 1)]

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    print(f"sampling micro-suite (best of {REPS}, interleaved) ...", flush=True)
    fresh = {
        "commit": _commit(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "reps": REPS,
        "tolerance": TOLERANCE,
        "sampling": bench_sampling(),
        "worker_scaling": bench_worker_scaling(),
        "supervised_overhead": bench_supervised_overhead(),
        "memory": bench_memory(),
        "imm": bench_imm(),
        "serving": bench_serving(),
        "frontend": bench_frontend(),
        "cluster": bench_cluster(),
    }
    s = fresh["sampling"]
    print(
        f"  {s['dataset']} {s['model']} theta={s['theta']}: "
        f"serial {s['serial_s']}s ({s['serial_edges_per_s']:,} e/s), "
        f"batched {s['batched_s']}s ({s['batched_edges_per_s']:,} e/s), "
        f"speedup {s['speedup']}x"
    )
    ws = fresh["worker_scaling"]
    for wl, r in ws.items():
        if not isinstance(r, dict):
            continue
        timings = ", ".join(f"{w}w {t}s" for w, t in r["seconds"].items())
        print(
            f"  pool {wl} theta={r['theta']}: {timings} "
            f"(speedup {r['speedup_at_max_workers']}x, "
            f"host_cpus={ws['host_cpus']})"
        )
        for w, ph in r.get("phases", {}).items():
            print(
                f"    {w}w phases: sample {ph['sample_s']}s, "
                f"arena-write {ph['arena_write_s']}s, "
                f"land {ph['landing_s']}s, merge {ph['count_merge_s']}s, "
                f"ipc {ph['ipc_bytes_per_block']} B/block "
                f"({ph['blocks_landed']} blocks, "
                f"{ph['arena_segments']} segment(s), chunk {ph['chunk']})"
            )
    so = fresh["supervised_overhead"]
    print(
        f"  supervised {so['dataset']}/{so['model']} theta={so['theta']} "
        f"({so['workers']}w): plain {so['unsupervised_s']}s, "
        f"supervised {so['supervised_s']}s (tax {so['overhead']:+.1%})"
    )
    mem = fresh["memory"]
    for wl, r in mem.items():
        if not isinstance(r, dict) or "resident_ratio" not in r:
            continue
        print(
            f"  memory {wl} theta={r['theta']}: flat "
            f"{r['flat']['resident_bytes']:,} B "
            f"({r['flat']['bytes_per_sample']} B/sample), compressed "
            f"{r['compressed']['resident_bytes']:,} B "
            f"({r['compressed']['bytes_per_sample']} B/sample), "
            f"ratio {r['resident_ratio']}x; select "
            f"{r['flat']['select_s']}s vs {r['compressed']['select_s']}s "
            f"({r['selection_ratio']}x, remap {r['compressed']['final_remap_s']}s)"
        )
    for wl, r in fresh["imm"].items():
        print(f"  imm {wl}: theta={r['theta']} {r['seconds']}s")
    sv = fresh["serving"]
    print(
        f"  serving {sv['dataset']}/{sv['model']} "
        f"({sv['num_samples']} frozen samples): fresh {sv['fresh_imm_s']}s, "
        f"freeze {sv['freeze_s']}s, open {sv['open_s']}s, "
        f"query {sv['query_s']}s ({sv['query_speedup_vs_fresh']}x), "
        f"what-if {sv['what_if_s']}s, marginal {sv['marginal_s']}s"
    )
    fr = fresh["frontend"]
    print(
        f"  frontend {fr['dataset']}/{fr['model']}: direct "
        f"{fr['direct_query_s']}s, served {fr['frontend_query_s']}s "
        f"(tax {fr['overhead']:+.1%}), p50 {fr['p50_ms']}ms / "
        f"p99 {fr['p99_ms']}ms over {fr['batch_queries']} concurrent, "
        f"burst shed {fr['burst_shed']}/{fr['burst']} "
        f"(peak inflight {fr['burst_peak_inflight']}/{fr['burst_bound']})"
    )
    cl = fresh["cluster"]
    print(
        f"  cluster {cl['dataset']}/{cl['model']} ({cl['replicas']} "
        f"replicas): single {cl['single_query_s']}s, routed "
        f"{cl['router_query_s']}s (tax {cl['overhead']:+.1%}), failover "
        f"recovery {cl['failover_recovery_s']}s, hedge wins "
        f"{cl['hedge_wins']}/{cl['hedges']} "
        f"(rate {cl['hedge_win_rate']})"
    )

    # A cramped host must not stamp its (meaningless) worker-scaling
    # numbers over a record a capable runner produced: the baseline would
    # then permanently carry a sub-gate speedup nobody can act on.  The
    # fresh measurement is still printed above for audit; only the
    # *stamped* record preserves the gate-ready one.
    if baseline is not None and not ws["gate_ready"]:
        old_ws = baseline.get("worker_scaling", {})
        if old_ws.get("gate_ready"):
            print(
                f"  worker-scaling record kept from baseline commit "
                f"{baseline.get('commit')}: this host has {ws['host_cpus']} "
                f"usable CPU(s) < {MIN_CPUS_FOR_GATE}, refusing to stamp a "
                "non-gate-ready record over a gate-ready one"
            )
            preserved = dict(old_ws)
            preserved["preserved_from_commit"] = baseline.get("commit")
            fresh["worker_scaling"] = preserved

    failures = worker_scaling_gate(ws)
    failures.extend(supervised_overhead_gate(so))
    failures.extend(memory_gate(mem))
    failures.extend(serving_gate(sv))
    failures.extend(frontend_gate(fr))
    failures.extend(cluster_gate(cl))
    if baseline is not None and not args.update_baseline:
        stale = baseline_provenance_error(baseline)
        if stale:
            failures.append(
                f"PROVENANCE {stale} — the recorded numbers cannot gate this "
                "tree; regenerate with --update-baseline"
            )
        else:
            failures.extend(compare(fresh, baseline))

    if not args.skip_validate:
        from repro.validate import validate_full, validate_quick  # noqa: E402

        if shards:
            for i, m in shards:
                print(f"equivalence oracle (full, shard {i}/{m}) ...", flush=True)
                report = validate_full(
                    progress=lambda line: print(f"  {line}"), shard=(i, m)
                )
                print(f"  {report.summary().splitlines()[0]}")
                failures.extend(
                    f"EQUIVALENCE[{i}/{m}] {v}" for v in report.violations
                )
        else:
            print("equivalence oracle (quick) ...", flush=True)
            report = validate_quick()
            print(f"  {report.summary().splitlines()[0]}")
            failures.extend(
                f"EQUIVALENCE {v}" for v in report.violations
            )

    if failures and not args.update_baseline:
        # A regressing run must not stamp its own numbers as the next
        # baseline — the gate would fire exactly once and then go blind.
        print("\n".join(["", "REGRESSION DETECTED (baseline left untouched):"]
                        + failures))
        return 1

    BENCH_OUT = BASELINE_PATH
    BENCH_OUT.write_text(json.dumps(fresh, indent=2) + "\n")
    print(f"wrote {BENCH_OUT.relative_to(ROOT)}")

    if failures:
        print("\n".join(["", "REGRESSION DETECTED:"] + failures))
        return 1
    print("no regression vs baseline" if baseline is not None else "baseline created")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
