"""Figure 3 benchmark: runtime vs ε with phase decomposition (IC).

Asserts the paper's two observations: runtime rises as ε falls, and
Estimation+Sample dominate the breakdown.
"""

from repro.parallel import PUMA, imm_mt

from conftest import BENCH


def _run(graph, eps):
    return imm_mt(
        graph,
        k=BENCH.fig34_k_fixed,
        eps=eps,
        num_threads=20,
        machine=PUMA,
        seed=0,
        theta_cap=BENCH.theta_cap,
    )


def test_fig3_point(benchmark, hepth_ic):
    res = benchmark(lambda: _run(hepth_ic, 0.5))
    assert res.total_time > 0


def test_fig3_shape(benchmark, hepth_ic):
    def _shape_check():
        tight = _run(hepth_ic, min(BENCH.fig34_eps_grid))
        loose = _run(hepth_ic, max(BENCH.fig34_eps_grid))
        assert tight.total_time > loose.total_time  # smaller eps costs more
        for res in (tight, loose):
            b = res.breakdown
            sampling_share = (b.estimate_theta + b.sample) / b.total
            assert sampling_share > 0.5  # Estimation+Sample dominate


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)