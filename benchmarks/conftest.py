"""Benchmark fixtures: bounded workloads shared across bench files.

Each ``bench_*.py`` regenerates one table or figure of the paper at a
reduced, benchmark-friendly scale (the full regeneration lives in
``python -m repro.experiments``).  Assertions inside the benchmarks
check the *shape* the paper reports — who wins, roughly by how much —
so a performance regression or a correctness regression both fail the
suite.
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:  # allow running from a source checkout
    sys.path.insert(0, str(_SRC))

from repro.datasets import load  # noqa: E402
from repro.experiments import CI  # noqa: E402

#: The benchmark scale: small enough that the whole suite is minutes.
BENCH = dataclasses.replace(
    CI,
    name="bench",
    k_serial=10,
    fig1_k_grid=(4, 8, 16),
    fig1_trials=60,
    fig2_eps_grid=(0.4, 0.5),
    fig2_k_grid=(10, 20),
    fig34_eps_grid=(0.4, 0.5),
    fig34_k_grid=(10, 20),
    fig34_k_fixed=10,
    mt_threads=(2, 20),
    k_mt=10,
    puma_nodes=(1, 4, 16),
    edison_nodes=(64, 1024),
    k_dist=10,
    eps_dist=0.4,
    sweep_datasets=("cit-HepTh",),
    big_datasets=("com-YouTube",),
    theta_cap=8000,
    bio_k=24,
)


@pytest.fixture(scope="session")
def hepth_ic():
    return load("cit-HepTh", "IC")


@pytest.fixture(scope="session")
def hepth_lt():
    return load("cit-HepTh", "LT")


@pytest.fixture(scope="session")
def orkut_ic():
    return load("com-Orkut", "IC")


@pytest.fixture(scope="session")
def youtube_ic():
    return load("com-YouTube", "IC")
