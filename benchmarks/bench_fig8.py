"""Figure 8 benchmark: distributed strong scaling on Edison, 64-1024 nodes.

Asserts the Edison findings: IC keeps scaling to high node counts while
LT flattens early (too little work per thread).
"""

from repro.datasets import load
from repro.experiments.distscaling import meter_run, price_run
from repro.parallel import EDISON

from conftest import BENCH


def _scaling_64_up(graph, model):
    """Gain from 64 to 256 nodes (the stand-ins' reduced sampling volume
    saturates before 1024 — the paper's theta is ~100x larger)."""
    metered = meter_run(graph, BENCH.k_dist, BENCH.eps_dist, model, 0, BENCH.theta_cap)
    t64 = price_run(metered, EDISON, 64)["total"]
    t256 = price_run(metered, EDISON, 256)["total"]
    return t64 / t256


def test_fig8_pricing(benchmark, youtube_ic):
    metered = meter_run(youtube_ic, BENCH.k_dist, BENCH.eps_dist, "IC", 0, BENCH.theta_cap)
    out = benchmark(lambda: price_run(metered, EDISON, 1024))
    assert out["total"] > 0


def test_fig8_shape(benchmark, youtube_ic):
    def _shape_check():
        ic_scaling = _scaling_64_up(youtube_ic, "IC")
        lt_scaling = _scaling_64_up(load("com-YouTube", "LT"), "LT")
        # IC keeps gaining with node count; LT gains less (the paper's
        # "low amount of work with respect to the thread count").
        assert ic_scaling > 1.0
        assert ic_scaling > lt_scaling


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)