"""Figure 7 benchmark: distributed strong scaling on Puma (with OOM model).

Asserts the Puma findings: scaling with node count and the simulated
OOM kills of the big IC configurations at small node counts.
"""

import dataclasses

from repro.experiments import fig7
from repro.experiments.distscaling import meter_run, price_run
from repro.parallel import PUMA

from conftest import BENCH


def test_fig7_pricing(benchmark, youtube_ic):
    metered = meter_run(youtube_ic, BENCH.k_dist, BENCH.eps_dist, "IC", 0, BENCH.theta_cap)
    out = benchmark(lambda: price_run(metered, PUMA, 16))
    assert out["total"] > 0


def test_fig7_shape(benchmark, youtube_ic):
    def _shape_check():
        metered = meter_run(youtube_ic, BENCH.k_dist, BENCH.eps_dist, "IC", 0, BENCH.theta_cap)
        t1 = price_run(metered, PUMA, 1)["total"]
        t16 = price_run(metered, PUMA, 16)["total"]
        assert t1 / t16 > 3.0  # the paper reports up to ~8x on 16 nodes


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)

def test_fig7_oom_gaps(benchmark):
    def _shape_check():
        scale = dataclasses.replace(BENCH, big_datasets=("com-Orkut",))
        res = fig7.run(scale=scale)
        ic_rows = [r for r in res.rows if r[1] == "IC"]
        assert any(r[3] is None for r in ic_rows)  # killed at small p
        assert any(r[3] is not None for r in ic_rows)  # alive at large p


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)