"""Figure 2 benchmark: θ as a function of the approximation factor and k.

Benchmarks the estimator and asserts the growth directions (θ up as ε
down, θ up as k up, θ quickly exceeding n).
"""

from repro.imm import estimate_theta

from conftest import BENCH


def test_estimate_theta(benchmark, hepth_ic):
    est = benchmark(
        lambda: estimate_theta(
            hepth_ic, 10, 0.5, "IC", seed=0, theta_cap=BENCH.theta_cap
        )
    )
    assert est.theta > 0


def test_fig2_shape(benchmark, hepth_ic):
    def _shape_check():
        thetas = {}
        for eps in BENCH.fig2_eps_grid:
            for k in BENCH.fig2_k_grid:
                thetas[(eps, k)] = estimate_theta(hepth_ic, k, eps, "IC", seed=0).theta
        eps_hi, eps_lo = max(BENCH.fig2_eps_grid), min(BENCH.fig2_eps_grid)
        k_lo, k_hi = min(BENCH.fig2_k_grid), max(BENCH.fig2_k_grid)
        assert thetas[(eps_lo, k_lo)] > thetas[(eps_hi, k_lo)]  # precision costs
        assert thetas[(eps_hi, k_hi)] > thetas[(eps_hi, k_lo)]  # seeds cost
        assert thetas[(eps_lo, k_hi)] > hepth_ic.n  # θ exceeds n (the paper's note)


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)