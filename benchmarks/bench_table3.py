"""Table 3 benchmark: the speedup ladder IMM -> IMMopt -> IMMmt -> IMMdist.

Benchmarks each rung on the com-Orkut stand-in and asserts the ladder's
monotonicity — the paper's headline claim, including the dist rung
running at doubled k and tighter eps.
"""

from repro.imm import imm
from repro.mpi import imm_dist
from repro.parallel import EDISON, PUMA, imm_mt
from repro.perf import modeled_serial_breakdown

from conftest import BENCH

K, EPS, CAP = BENCH.k_serial, BENCH.eps_serial, BENCH.theta_cap


def test_rung_serial_reference(benchmark, orkut_ic):
    benchmark(
        lambda: imm(orkut_ic, k=K, eps=EPS, seed=0, layout="hypergraph", theta_cap=CAP)
    )


def test_rung_serial_opt(benchmark, orkut_ic):
    benchmark(lambda: imm(orkut_ic, k=K, eps=EPS, seed=0, theta_cap=CAP))


def test_rung_mt(benchmark, orkut_ic):
    benchmark(
        lambda: imm_mt(
            orkut_ic, k=K, eps=EPS, num_threads=20, machine=PUMA, seed=0, theta_cap=CAP
        )
    )


def test_rung_dist(benchmark, orkut_ic):
    benchmark(
        lambda: imm_dist(
            orkut_ic,
            k=2 * K,
            eps=BENCH.eps_dist,
            num_nodes=16,
            machine=EDISON,
            seed=0,
            theta_cap=CAP,
        )
    )


def test_table3_ladder_shape(benchmark, orkut_ic):
    def _shape_check():
        ref = imm(orkut_ic, k=K, eps=EPS, seed=0, layout="hypergraph", theta_cap=CAP)
        opt = imm(orkut_ic, k=K, eps=EPS, seed=0, theta_cap=CAP)
        t_ref = modeled_serial_breakdown(ref, PUMA).total
        t_opt = modeled_serial_breakdown(opt, PUMA).total
        t_mt = imm_mt(
            orkut_ic, k=K, eps=EPS, num_threads=20, machine=PUMA, seed=0, theta_cap=CAP
        ).total_time
        t_dist = imm_dist(
            orkut_ic,
            k=2 * K,
            eps=BENCH.eps_dist,
            num_nodes=64,
            machine=EDISON,
            seed=0,
            theta_cap=CAP,
        ).total_time
        # The ladder: each rung strictly faster, dist wins even with double
        # k and tighter eps (the Table 3 punchline).
        assert t_ref > t_opt > t_mt > t_dist


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)