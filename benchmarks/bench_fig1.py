"""Figure 1 benchmark: activated nodes vs seed-set size and accuracy.

Benchmarks the IMM+evaluate pipeline and asserts the two-arc shape:
activation grows with k, and the tight-accuracy/double-budget arc ends
above the loose arc.
"""

from repro.diffusion import estimate_spread
from repro.imm import imm

from conftest import BENCH

CAP = BENCH.theta_cap


def _arc_point(graph, k, eps):
    seeds = imm(graph, k=k, eps=eps, seed=0, theta_cap=CAP).seeds
    return estimate_spread(graph, seeds, "IC", trials=BENCH.fig1_trials, seed=1).mean


def test_fig1_point(benchmark, hepth_ic):
    spread = benchmark(lambda: _arc_point(hepth_ic, 8, BENCH.fig1_eps_pair[0]))
    assert spread >= 8


def test_fig1_shape(benchmark, hepth_ic):
    def _shape_check():
        eps_loose, eps_tight = BENCH.fig1_eps_pair
        loose_arc = [_arc_point(hepth_ic, k, eps_loose) for k in BENCH.fig1_k_grid]
        # activation grows with k
        assert loose_arc[-1] > loose_arc[0]
        # the "red arc": tighter accuracy at double budget ends higher
        red_end = _arc_point(hepth_ic, 2 * BENCH.fig1_k_grid[-1], eps_tight)
        assert red_end > loose_arc[-1]


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)