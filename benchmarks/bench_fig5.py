"""Figure 5 benchmark: multithreaded strong scaling, LT model.

Asserts the LT findings: modest speedups (small RRR sets leave little
parallel work) and much cheaper absolute work than IC.
"""

from repro.parallel import PUMA, imm_mt

from conftest import BENCH


def _run(graph, threads):
    return imm_mt(
        graph,
        k=BENCH.k_mt,
        eps=BENCH.eps_mt,
        model="LT",
        num_threads=threads,
        machine=PUMA,
        seed=0,
        theta_cap=BENCH.theta_cap,
    )


def test_fig5_point(benchmark, hepth_lt):
    res = benchmark(lambda: _run(hepth_lt, 20))
    assert res.model == "LT"


def test_fig5_shape(benchmark, hepth_lt, hepth_ic):
    def _shape_check():
        t2 = _run(hepth_lt, 2).total_time
        t20 = _run(hepth_lt, 20).total_time
        speedup = t2 / t20
        assert speedup > 1.0  # it does scale...
        # ...and LT is several times cheaper than IC in total work
        lt_edges = _run(hepth_lt, 2).counters.edges_examined
        ic_edges = imm_mt(
            hepth_ic,
            k=BENCH.k_mt,
            eps=BENCH.eps_mt,
            model="IC",
            num_threads=2,
            machine=PUMA,
            seed=0,
            theta_cap=BENCH.theta_cap,
        ).counters.edges_examined
        assert ic_edges > 2 * lt_edges


    benchmark.pedantic(_shape_check, rounds=1, iterations=1)