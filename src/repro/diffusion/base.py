"""Model tags shared across forward simulation and reverse sampling."""

from __future__ import annotations

import enum

__all__ = ["DiffusionModel"]


class DiffusionModel(enum.Enum):
    """The two local-influence models considered by the paper.

    IC — Independent Cascade: a newly activated vertex ``u`` gets a
    one-shot chance to activate each inactive out-neighbor ``v`` with
    probability ``p(u, v)``, independently of history.

    LT — Linear Threshold: each vertex ``v`` draws a threshold
    ``theta_v ~ U[0, 1]`` once; ``v`` activates when the summed weight of
    its active in-neighbors reaches ``theta_v``.  Edge weights into each
    vertex must sum to at most one (see
    :func:`repro.graph.weights.lt_normalize`).
    """

    IC = "IC"
    LT = "LT"

    @classmethod
    def parse(cls, value: "DiffusionModel | str") -> "DiffusionModel":
        """Accept a model instance or its case-insensitive name."""
        if isinstance(value, cls):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            raise ValueError(
                f"unknown diffusion model {value!r}; expected 'IC' or 'LT'"
            ) from None
