"""Forward Independent Cascade simulation (one trial).

A trial is a probabilistic BFS: at step ``i`` every vertex activated at
step ``i-1`` gets a one-shot chance to activate each currently inactive
out-neighbor ``v`` through edge ``e`` with probability ``p(e)``
(Section 3, problem statement).  The frontier expansion is vectorized:
all out-edges of the current frontier are gathered with ``np.repeat`` /
fancy indexing and the coin flips drawn as one block.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..rng import SplitMix64

__all__ = ["ic_trial"]


def ic_trial(
    graph: CSRGraph,
    seeds: np.ndarray,
    rng: SplitMix64,
) -> np.ndarray:
    """Run one IC diffusion trial and return the activated vertex ids.

    Parameters
    ----------
    graph:
        Input graph with IC activation probabilities on out-edges.
    seeds:
        Initially active vertex ids (``A_0 = S``); duplicates allowed.
    rng:
        Stream supplying the edge coin flips.

    Returns
    -------
    Sorted ``int64`` array of all activated vertices, ``I(S)`` for this
    trial (always a superset of ``seeds``).
    """
    active = np.zeros(graph.n, dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    if len(seeds) and (seeds.min() < 0 or seeds.max() >= graph.n):
        raise ValueError("seed id out of range")
    active[seeds] = True
    frontier = np.unique(seeds)
    while len(frontier):
        starts = graph.out_indptr[frontier]
        stops = graph.out_indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather the edge slots of all frontier out-edges.
        offsets = np.repeat(stops - counts.cumsum(), counts) + np.arange(total)
        dst = graph.out_indices[offsets].astype(np.int64)
        probs = graph.out_probs[offsets]
        hit = rng.random_block(total) < probs
        cand = dst[hit & ~active[dst]]
        if len(cand) == 0:
            break
        frontier = np.unique(cand)
        active[frontier] = True
    return np.flatnonzero(active).astype(np.int64)
