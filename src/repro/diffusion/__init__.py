"""Network diffusion models: Independent Cascade and Linear Threshold.

These are the two models ``M`` of the paper (Section 3): forward
diffusion is "a probabilistic variant of BFS from the seed set"; this
subpackage provides single-trial forward simulation for both models plus
the Monte-Carlo spread estimator ``E[|I(S)|]`` used to produce Figure 1.

The *reverse* direction (RRR-set sampling) lives in
:mod:`repro.sampling`, because its data layout — not its probabilistic
semantics — is the paper's contribution.
"""

from .base import DiffusionModel
from .ic import ic_trial
from .lt import lt_trial
from .simulate import SpreadEstimate, estimate_spread, run_trial

__all__ = [
    "DiffusionModel",
    "ic_trial",
    "lt_trial",
    "run_trial",
    "estimate_spread",
    "SpreadEstimate",
]
