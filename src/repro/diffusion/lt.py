"""Forward Linear Threshold simulation (one trial).

Every vertex ``v`` draws a threshold ``theta_v ~ U[0, 1]`` once per
trial; ``v`` activates when the total in-edge weight from active
neighbors reaches ``theta_v``.  A trial therefore maintains a running
"accumulated weight" per vertex and pushes weight forward from each
newly-activated frontier (the in-weights were normalized so that total
incoming weight is at most one, making the threshold comparison a valid
probability statement — see :func:`repro.graph.weights.lt_normalize`).
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..rng import SplitMix64

__all__ = ["lt_trial"]


def lt_trial(
    graph: CSRGraph,
    seeds: np.ndarray,
    rng: SplitMix64,
) -> np.ndarray:
    """Run one LT diffusion trial and return the activated vertex ids.

    Thresholds are drawn for all ``n`` vertices up front (one block), so
    a trial's randomness is a deterministic function of the stream
    position, mirroring how the reverse LT sampler consumes randomness.

    Returns a sorted ``int64`` array of activated vertices.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if len(seeds) and (seeds.min() < 0 or seeds.max() >= graph.n):
        raise ValueError("seed id out of range")
    thresholds = rng.random_block(graph.n)
    # A threshold of exactly 0 would let zero-weight vertices activate
    # spuriously; U[0,1) makes that a measure-zero concern only for the
    # accumulated == 0 case, which we exclude with a strict comparison
    # below for accumulated > 0.
    active = np.zeros(graph.n, dtype=bool)
    active[seeds] = True
    accumulated = np.zeros(graph.n, dtype=np.float64)
    frontier = np.unique(seeds)
    while len(frontier):
        starts = graph.out_indptr[frontier]
        stops = graph.out_indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(stops - counts.cumsum(), counts) + np.arange(total)
        dst = graph.out_indices[offsets].astype(np.int64)
        w = graph.out_probs[offsets]
        np.add.at(accumulated, dst, w)
        newly = np.flatnonzero(
            ~active & (accumulated > 0.0) & (accumulated >= thresholds)
        )
        if len(newly) == 0:
            break
        active[newly] = True
        frontier = newly
    return np.flatnonzero(active).astype(np.int64)
