"""Monte-Carlo estimation of the expected influence spread ``E[|I(S)|]``.

This is the oracle of the original Kempe et al. formulation and the
measurement behind Figure 1 (activated nodes as a function of seed-set
size).  Each trial gets its own counter-based stream, so estimates are
reproducible and trials could be farmed out to ranks without changing
the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph
from ..rng import SplitMix64
from .base import DiffusionModel
from .ic import ic_trial
from .lt import lt_trial

__all__ = ["run_trial", "estimate_spread", "SpreadEstimate"]


def run_trial(
    graph: CSRGraph,
    seeds: np.ndarray,
    model: DiffusionModel | str,
    rng: SplitMix64,
) -> np.ndarray:
    """Dispatch a single forward-diffusion trial for ``model``."""
    model = DiffusionModel.parse(model)
    if model is DiffusionModel.IC:
        return ic_trial(graph, seeds, rng)
    return lt_trial(graph, seeds, rng)


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte-Carlo estimate of the influence spread of a seed set."""

    mean: float
    std: float
    trials: int
    #: Per-trial activation counts, for callers that need the full
    #: distribution (e.g. confidence intervals in the experiment reports).
    samples: np.ndarray

    @property
    def stderr(self) -> float:
        """Standard error of :attr:`mean`."""
        if self.trials <= 1:
            return float("nan")
        return float(self.std / np.sqrt(self.trials))


def estimate_spread(
    graph: CSRGraph,
    seeds: np.ndarray,
    model: DiffusionModel | str = DiffusionModel.IC,
    trials: int = 1000,
    seed: int = 0,
) -> SpreadEstimate:
    """Estimate ``E[|I(S)|]`` with ``trials`` independent diffusions.

    Literature convention is ~10,000 trials (Section 2); the default here
    is lower because the estimator is only used for reporting, not inside
    the optimization loop.

    Parameters
    ----------
    graph, seeds, model:
        As in :func:`run_trial`.
    trials:
        Number of Monte-Carlo repetitions (must be positive).
    seed:
        Master seed; trial ``t`` uses the sub-stream ``split(t)``.
    """
    if trials <= 0:
        raise ValueError(f"need at least one trial, got {trials}")
    master = SplitMix64(seed).split(0x5EED)
    counts = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        activated = run_trial(graph, seeds, model, master.split(t))
        counts[t] = len(activated)
    return SpreadEstimate(
        mean=float(counts.mean()),
        std=float(counts.std(ddof=1)) if trials > 1 else 0.0,
        trials=trials,
        samples=counts,
    )
