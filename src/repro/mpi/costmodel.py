"""α–β (latency–bandwidth) pricing of the collectives.

The standard LogP-family model for a tree-structured collective over
``p`` ranks moving ``nbytes`` per rank:

    T = ceil(log2 p) · (α + β · nbytes)

This is the model underlying the paper's ``O(k · n · lg p)``
communication complexity for the distributed seed selection (one
All-Reduce of the ``n`` counters per greedy iteration), so pricing the
recorded traffic with it reproduces the communication component of
Figures 7–8 by construction.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from ..parallel.machine import MachineSpec

if TYPE_CHECKING:
    from .comm import CommCall

__all__ = [
    "allreduce_seconds",
    "collective_seconds",
    "comm_seconds_by_label",
    "checkpoint_seconds",
]


def allreduce_seconds(machine: MachineSpec, num_ranks: int, nbytes: int) -> float:
    """Modeled seconds for one allreduce of ``nbytes`` per rank."""
    return collective_seconds(machine, num_ranks, nbytes)


def collective_seconds(machine: MachineSpec, num_ranks: int, nbytes: int) -> float:
    """Tree-collective time: ``ceil(lg p) * (alpha + beta * nbytes)``.

    ``num_ranks == 1`` costs nothing (the single-rank code path skips
    communication entirely, as MPI implementations do).
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if nbytes < 0:
        raise ValueError("payload size must be non-negative")
    if num_ranks == 1:
        return 0.0
    hops = math.ceil(math.log2(num_ranks))
    return hops * (machine.alpha + machine.beta * nbytes)


def checkpoint_seconds(machine: MachineSpec, nbytes: int) -> float:
    """Modeled seconds for one durable checkpoint write of ``nbytes``.

    The same α–β shape as a collective, but against stable storage:
    ``disk_alpha`` is the fixed fsync/commit latency, ``disk_beta`` the
    per-byte streaming cost.  Cursor-only distributed checkpoints are a
    few hundred bytes (latency-dominated); the supervised engine's
    block-spill checkpoints stream the collection itself
    (bandwidth-dominated) — one formula prices both regimes.
    """
    if nbytes < 0:
        raise ValueError("payload size must be non-negative")
    return machine.disk_alpha + machine.disk_beta * nbytes


def comm_seconds_by_label(
    machine: MachineSpec, num_ranks: int, per_call: Iterable["CommCall"]
) -> dict[str, float]:
    """Price a :class:`~repro.mpi.comm.CommStats` ledger per label.

    Labels separate phase traffic (``"EstimateTheta"``, …) from the
    recovery traffic the resilient runtime marks ``"retry"`` /
    ``"replay"`` — so the cost of fault handling is visible instead of
    smeared across the phases it interrupted.
    """
    totals: dict[str, float] = {}
    for call in per_call:
        totals[call.label] = totals.get(call.label, 0.0) + collective_seconds(
            machine, num_ranks, call.nbytes
        )
    return totals
