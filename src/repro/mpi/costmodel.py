"""α–β (latency–bandwidth) pricing of the collectives.

The standard LogP-family model for a tree-structured collective over
``p`` ranks moving ``nbytes`` per rank:

    T = ceil(log2 p) · (α + β · nbytes)

This is the model underlying the paper's ``O(k · n · lg p)``
communication complexity for the distributed seed selection (one
All-Reduce of the ``n`` counters per greedy iteration), so pricing the
recorded traffic with it reproduces the communication component of
Figures 7–8 by construction.
"""

from __future__ import annotations

import math

from ..parallel.machine import MachineSpec

__all__ = ["allreduce_seconds", "collective_seconds"]


def allreduce_seconds(machine: MachineSpec, num_ranks: int, nbytes: int) -> float:
    """Modeled seconds for one allreduce of ``nbytes`` per rank."""
    return collective_seconds(machine, num_ranks, nbytes)


def collective_seconds(machine: MachineSpec, num_ranks: int, nbytes: int) -> float:
    """Tree-collective time: ``ceil(lg p) * (alpha + beta * nbytes)``.

    ``num_ranks == 1`` costs nothing (the single-rank code path skips
    communication entirely, as MPI implementations do).
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if nbytes < 0:
        raise ValueError("payload size must be non-negative")
    if num_ranks == 1:
        return 0.0
    hops = math.ceil(math.log2(num_ranks))
    return hops * (machine.alpha + machine.beta * nbytes)
