"""Distributed-memory IMM (the paper's MPI+OpenMP implementation).

No MPI launcher exists in this environment, so — per DESIGN.md — the
distributed variant runs as an in-process **SPMD simulation**: every
rank's program is a Python generator that ``yield``\\ s collective
operations; the :func:`run_spmd` runtime advances all ranks in lockstep,
*actually combines* their buffers (so an ``allreduce`` sum is
bit-identical to real MPI), and records the communication volume that
the α–β cost model prices into simulated seconds.

Fidelity to Section 3.2 of the paper:

* every rank holds a full replica of the input graph;
* the θ samples are evenly partitioned across ranks;
* RNG streams are split across ranks — either with the paper's
  leap-frog LCG (``rng_scheme="leapfrog"``) or with per-sample
  counter-based streams (``rng_scheme="per-sample"``, the default,
  which additionally makes the seed set independent of the rank count);
* seed selection keeps an ``n``-counter array per rank, aggregated with
  an All-Reduce per greedy iteration (communication ``O(k n lg p)``);
* a per-rank memory model (graph replica + local RRR partition) feeds a
  simulated OOM killer, reproducing the missing points of Figure 7.

Beyond the paper, the runtime models the *unhappy* path too: declarative
fault injection (:mod:`repro.mpi.faults`), recovery policies — retry /
respawn / shrink — (:mod:`repro.mpi.resilient`), and cursor-only
checkpoint/restart (:mod:`repro.mpi.checkpoint`), all built on the same
determinism contract that makes the happy path bit-exact.
"""

from .comm import (
    Allgather,
    Allreduce,
    Barrier,
    Bcast,
    CollectiveMismatchError,
    CommCall,
    CommStats,
    run_spmd,
)
from .costmodel import (
    allreduce_seconds,
    checkpoint_seconds,
    collective_seconds,
    comm_seconds_by_label,
)
from .checkpoint import (
    DistCheckpoint,
    initial_deals,
    live_count,
    owned_indices,
    rebuild_partition,
    shrink_deals,
)
from .faults import (
    CorruptReduce,
    FaultInjector,
    FaultPlan,
    OOMKill,
    RankCrash,
    RankFailedError,
    SimulatedOOMError,
    Straggler,
    SwitchOutage,
    TransientCommError,
    TransientFault,
)
from .resilient import POLICIES, RecoveryLog, run_spmd_resilient
from .distributed import imm_dist
from .partitioned import PartitionedBatch, partitioned_rr_batch

__all__ = [
    "run_spmd",
    "run_spmd_resilient",
    "Allreduce",
    "Allgather",
    "Bcast",
    "Barrier",
    "CommCall",
    "CommStats",
    "CollectiveMismatchError",
    "allreduce_seconds",
    "checkpoint_seconds",
    "collective_seconds",
    "comm_seconds_by_label",
    "imm_dist",
    "SimulatedOOMError",
    "partitioned_rr_batch",
    "PartitionedBatch",
    "FaultPlan",
    "FaultInjector",
    "RankCrash",
    "Straggler",
    "SwitchOutage",
    "TransientFault",
    "CorruptReduce",
    "OOMKill",
    "RankFailedError",
    "TransientCommError",
    "RecoveryLog",
    "POLICIES",
    "DistCheckpoint",
    "initial_deals",
    "owned_indices",
    "live_count",
    "shrink_deals",
    "rebuild_partition",
]
