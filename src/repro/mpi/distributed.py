"""``imm_dist``: the hybrid MPI+OpenMP IMM of Section 3.2.

Every rank executes the full Algorithm 1 control flow on its own slice
of the sample space:

* **Sampling** — the θ samples are partitioned across ranks (strided
  ownership: rank ``r`` generates global sample indices ``r, r+p, ...``,
  a balanced partition that stays stable as θ grows across estimation
  rounds).  Each rank holds a full graph replica and draws its own
  random numbers — either from the per-sample counter streams (default;
  makes the seed set independent of ``p``) or from the paper's
  leap-frog LCG substreams (``rng_scheme="leapfrog"``).

* **Seed selection** — each rank counts vertex memberships over its
  local partition ``R_r``; one All-Reduce produces the global counters;
  every iteration picks the argmax locally (identical on all ranks),
  purges the local partition, and All-Reduces the decrements —
  ``O(k · n · lg p)`` communication, exactly the paper's scheme.

* **Memory model** — a rank whose modeled resident set (graph replica +
  local RRR partition + counter arrays) exceeds the node's DRAM raises
  :class:`SimulatedOOMError`, reproducing the Linux-OOM-killed runs
  that appear as missing points in Figure 7.

The collectives are executed for real (bit-exact sums) by
:func:`repro.mpi.comm.run_spmd`; the phase times are modeled from
per-rank work meters, intra-node OpenMP speedup, and the α–β collective
costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..imm.result import IMMResult
from ..imm.theta import _inflated_l, lambda_prime, lambda_star, validate_eps
from ..perf.counters import WorkCounters
from ..perf.memory import MemoryModel
from ..perf.timers import PhaseTimer
from ..rng import Lcg64, spawn_streams
from ..sampling import BatchedRRRSampler, RRRSampler, SortedRRRCollection
from ..parallel.machine import PUMA, MachineSpec
from .comm import Allreduce, run_spmd
from .costmodel import collective_seconds

__all__ = ["imm_dist", "SimulatedOOMError"]


class SimulatedOOMError(MemoryError):
    """A rank's modeled resident set exceeded the node memory.

    Mirrors the paper's observation that "points missing in Figures 7c
    and 7d are experiments that were killed by the Linux Out of Memory
    killer" — the experiment harness records these as absent points.
    """

    def __init__(self, rank: int, needed: int, limit: int) -> None:
        super().__init__(
            f"rank {rank}: modeled footprint {_fmt_bytes(needed)} exceeds "
            f"node memory {_fmt_bytes(limit)}"
        )
        self.rank = rank
        self.needed = needed
        self.limit = limit


def _fmt_bytes(value: int) -> str:
    """Human-readable byte count (stand-ins are MiB-scale, clusters GiB)."""
    for unit, factor in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if value >= factor:
            return f"{value / factor:.2f} {unit}"
    return f"{value} B"


@dataclass
class _RankRecord:
    """Work meters one rank reports back to the pricing driver."""

    seeds: np.ndarray | None = None
    covered: int = 0
    theta: int = 0
    lb: float = 1.0
    local_samples: int = 0
    collection_bytes: int = 0
    edges_total: int = 0
    #: per estimation round: (local sampling edges, local selection entries)
    round_meters: list[tuple[int, int]] = field(default_factory=list)
    #: per estimation round: (theta_x, covered fraction) — the same
    #: diagnostic the serial driver exposes as ``coverage_history``, so
    #: Figure-2-style sweeps can run distributed.
    coverage_history: list[tuple[int, float]] = field(default_factory=list)
    final_sample_edges: int = 0
    final_select_entries: int = 0
    rounds: int = 0


def _dist_select(
    collection: SortedRRRCollection, n: int, k: int
) -> Generator:
    """Distributed greedy selection (generator; use ``yield from``).

    Returns ``(seeds, covered_total, local_entries_scanned)``.
    """
    flat, indptr, sample_of = collection.flattened()
    num_local = len(collection)
    local_counts = np.bincount(flat, minlength=n).astype(np.int64)
    entries = int(collection.total_entries)
    global_counts = yield Allreduce(local_counts)
    global_counts = np.asarray(global_counts, dtype=np.int64).copy()

    vert_order = np.argsort(flat, kind="stable")
    vert_counts = np.bincount(flat, minlength=n)
    vert_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(vert_counts, out=vert_indptr[1:])
    sample_alive = np.ones(num_local, dtype=bool)

    seeds = np.empty(k, dtype=np.int64)
    covered_local = 0
    for i in range(k):
        v = int(np.argmax(global_counts))
        seeds[i] = v
        positions = vert_order[vert_indptr[v] : vert_indptr[v + 1]]
        hit = sample_of[positions]
        killed = hit[sample_alive[hit]]
        decrement = np.zeros(n, dtype=np.int64)
        if len(killed):
            sample_alive[killed] = False
            covered_local += len(killed)
            starts = indptr[killed]
            stops = indptr[killed + 1]
            counts = stops - starts
            total = int(counts.sum())
            entry_idx = np.repeat(stops - np.cumsum(counts), counts) + np.arange(total)
            decrement = np.bincount(flat[entry_idx], minlength=n).astype(np.int64)
            entries += total
        delta = yield Allreduce(decrement)
        global_counts -= np.asarray(delta, dtype=np.int64)
        global_counts[v] = -1
    covered_total = yield Allreduce(covered_local)
    return seeds, int(covered_total), entries


def _make_rank_program(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel,
    seed: int,
    l: float,
    rng_scheme: str,
    theta_cap: int | None,
    mem_limit: int | None,
    records: list[_RankRecord],
):
    """Build the SPMD rank program closure for :func:`run_spmd`."""
    n = graph.n
    l_eff = _inflated_l(n, l)
    eps_p = math.sqrt(2.0) * eps
    lam_p = lambda_prime(n, k, eps, l_eff)
    lam_s = lambda_star(n, k, eps, l_eff)
    max_x = max(1, int(math.ceil(math.log2(n))) - 1)

    def program(rank: int, size: int) -> Generator:
        rec = records[rank]
        collection = SortedRRRCollection(n)
        lcg: Lcg64 | None = None
        sampler: RRRSampler | None = None
        batched: BatchedRRRSampler | None = None
        if rng_scheme == "leapfrog":
            # The leap-frog LCG substream is inherently sequential: each
            # sample's randomness depends on how much the previous ones
            # consumed, so only the serial engine can replay it.
            lcg = spawn_streams(seed, size)[rank]
            sampler = RRRSampler(graph, model)
        else:
            # Per-sample counter streams are index-addressable, so the
            # rank's strided share can go through the cohort engine.
            batched = BatchedRRRSampler(graph, model)
        next_global = 0  # first global sample index not yet considered

        def extend_to(theta_target: int) -> int:
            """Generate this rank's share of samples in [next_global, θ)."""
            nonlocal next_global
            edges = 0
            if lcg is not None:
                for j in range(next_global, theta_target):
                    if j % size != rank:
                        continue
                    root = lcg.randint(0, n)
                    verts, e = sampler.generate(root, lcg)
                    collection.append(verts)
                    edges += e
            else:
                js = np.arange(next_global, max(next_global, theta_target))
                js = js[js % size == rank]
                if len(js):
                    per = batched.sample_into(collection, js, seed)
                    edges = int(per.sum())
            next_global = max(next_global, theta_target)
            if mem_limit is not None:
                footprint = MemoryModel.for_rank(graph, collection).total
                if footprint > mem_limit:
                    raise SimulatedOOMError(rank, footprint, mem_limit)
            return edges

        # --- EstimateTheta (Algorithm 2, replicated control flow) --------
        lb = 1.0
        for x in range(1, max_x + 1):
            rec.rounds += 1
            y = n / (2.0**x)
            theta_x = int(math.ceil(lam_p / y))
            if theta_cap is not None:
                theta_x = min(theta_x, theta_cap)
            round_edges = extend_to(theta_x)
            seeds, covered_total, entries = yield from _dist_select(collection, n, k)
            rec.round_meters.append((round_edges, entries))
            rec.edges_total += round_edges
            frac = covered_total / max(theta_x, 1)
            rec.coverage_history.append((theta_x, frac))
            if n * frac >= (1.0 + eps_p) * y:
                lb = n * frac / (1.0 + eps_p)
                break
            if theta_cap is not None and theta_x >= theta_cap:
                break
        theta = int(math.ceil(lam_s / lb))
        if theta_cap is not None:
            theta = min(theta, theta_cap)
        rec.theta, rec.lb = theta, lb

        # --- Sample (top-up to θ) -----------------------------------------
        rec.final_sample_edges = extend_to(theta)
        rec.edges_total += rec.final_sample_edges

        # --- SelectSeeds ----------------------------------------------------
        seeds, covered_total, entries = yield from _dist_select(collection, n, k)
        rec.final_select_entries = entries
        rec.seeds = seeds
        rec.covered = covered_total
        rec.local_samples = len(collection)
        rec.collection_bytes = collection.nbytes_model()
        return rank

    return program


def imm_dist(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    num_nodes: int = 2,
    machine: MachineSpec = PUMA,
    threads_per_node: int | None = None,
    seed: int = 0,
    l: float = 1.0,
    *,
    rng_scheme: str = "per-sample",
    theta_cap: int | None = None,
    mem_per_node: int | None = None,
) -> IMMResult:
    """Run the distributed IMM and return modeled-time results.

    Parameters
    ----------
    graph, k, eps, model, seed, l, theta_cap:
        As in :func:`repro.imm.imm`.
    num_nodes:
        Cluster nodes = MPI ranks (one rank per node, OpenMP inside, the
        paper's hybrid configuration).
    machine:
        Hardware model; :data:`~repro.parallel.machine.PUMA` or
        :data:`~repro.parallel.machine.EDISON`.
    threads_per_node:
        OpenMP threads per rank (default: all the node offers — with
        SMT on Edison, matching the paper's hyper-threaded runs).
    rng_scheme:
        ``"per-sample"`` (default, rank-count-invariant output) or
        ``"leapfrog"`` (the paper's TRNG-style LCG splitting).
    mem_per_node:
        Override of the node DRAM for the simulated OOM killer (the
        experiment harness uses it to scale limits to stand-in graphs).

    Raises
    ------
    SimulatedOOMError
        If any rank's modeled footprint exceeds the node memory.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if rng_scheme not in ("per-sample", "leapfrog"):
        raise ValueError(f"unknown rng_scheme {rng_scheme!r}")
    validate_eps(eps)
    model = DiffusionModel.parse(model)
    if threads_per_node is None:
        threads_per_node = machine.threads_per_node
    if not 1 <= threads_per_node <= machine.threads_per_node:
        raise ValueError(
            f"threads_per_node must be in [1, {machine.threads_per_node}]"
        )
    mem_limit = machine.mem_per_node if mem_per_node is None else mem_per_node

    records = [_RankRecord() for _ in range(num_nodes)]
    program = _make_rank_program(
        graph, k, eps, model, seed, l, rng_scheme, theta_cap, mem_limit, records
    )
    wall = PhaseTimer()
    with wall.phase("Other"):
        _, comm_stats = run_spmd(num_nodes, program)

    # ---- price the phases ----------------------------------------------
    n = graph.n
    eff = machine.effective_threads(threads_per_node)
    t_sel_comm = (k + 1) * collective_seconds(
        machine, num_nodes, 8 * n
    ) + collective_seconds(machine, num_nodes, 8)

    def sample_seconds(edges_per_rank: list[int]) -> float:
        makespan = max(edges_per_rank) * machine.t_edge / eff
        return makespan + threads_per_node * machine.thread_overhead

    def select_seconds(entries_per_rank: list[int]) -> float:
        local = max(entries_per_rank) * machine.t_update / eff
        argmax = k * (n / eff) * machine.t_update
        return local + argmax + t_sel_comm

    sim = PhaseTimer()
    rounds = max(rec.rounds for rec in records)
    for i in range(rounds):
        round_edges = [
            rec.round_meters[i][0] if i < len(rec.round_meters) else 0
            for rec in records
        ]
        round_entries = [
            rec.round_meters[i][1] if i < len(rec.round_meters) else 0
            for rec in records
        ]
        sim.charge("EstimateTheta", sample_seconds(round_edges))
        sim.charge("EstimateTheta", select_seconds(round_entries))
    sim.charge("Sample", sample_seconds([rec.final_sample_edges for rec in records]))
    sim.charge(
        "SelectSeeds", select_seconds([rec.final_select_entries for rec in records])
    )
    sim.charge("Other", graph.n * machine.t_update + 2 * machine.alpha)

    rec0 = records[0]
    counters = WorkCounters(
        edges_examined=sum(rec.edges_total for rec in records),
        samples_generated=sum(rec.local_samples for rec in records),
        entries_scanned=sum(
            rec.final_select_entries + sum(m[1] for m in rec.round_meters)
            for rec in records
        ),
        counter_updates=sum(
            rec.final_select_entries + sum(m[1] for m in rec.round_meters)
            for rec in records
        ),
        allreduce_calls=comm_stats.calls,
        allreduce_elements=comm_stats.payload_bytes // 8,
    )
    assert rec0.seeds is not None
    return IMMResult(
        seeds=rec0.seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        layout="sorted",
        theta=rec0.theta,
        num_samples=sum(rec.local_samples for rec in records),
        coverage=rec0.covered / max(rec0.theta, 1),
        lb=rec0.lb,
        breakdown=sim.breakdown(),
        counters=counters,
        memory_bytes=max(rec.collection_bytes for rec in records),
        simulated=True,
        ranks=num_nodes * threads_per_node,
        extra={
            "machine": machine.name,
            "num_nodes": num_nodes,
            "threads_per_node": threads_per_node,
            "rng_scheme": rng_scheme,
            "comm_calls": comm_stats.calls,
            "comm_bytes": comm_stats.payload_bytes,
            "measured_breakdown": wall.breakdown(),
            "per_rank_samples": [rec.local_samples for rec in records],
            "estimation_rounds": rec0.rounds,
            "coverage_history": rec0.coverage_history,
            "theta_capped": theta_cap is not None and rec0.theta >= theta_cap,
        },
    )
