"""``imm_dist``: the hybrid MPI+OpenMP IMM of Section 3.2.

Every rank executes the full Algorithm 1 control flow on its own slice
of the sample space:

* **Sampling** — the θ samples are partitioned across ranks by the
  **deal-epoch ownership map** (:mod:`repro.mpi.checkpoint`): a
  fault-free job has one epoch — the strided partition where rank ``r``
  generates global sample indices ``r, r+p, ...`` — and a shrink
  recovery appends an epoch re-dealing the tail to survivors.  Each
  rank holds a full graph replica and draws its own random numbers —
  either from the per-sample counter streams (default; makes the seed
  set independent of ``p``) or from the paper's leap-frog LCG
  substreams (``rng_scheme="leapfrog"``).

* **Seed selection** — each rank counts vertex memberships over its
  local partition ``R_r``; one All-Reduce produces the global counters;
  every iteration picks the argmax locally (identical on all ranks),
  purges the local partition, and All-Reduces the decrements —
  ``O(k · n · lg p)`` communication, exactly the paper's scheme.

* **Memory model** — a rank whose modeled resident set (graph replica +
  local RRR partition + counter arrays) exceeds the node's DRAM raises
  :class:`SimulatedOOMError`, reproducing the Linux-OOM-killed runs
  that appear as missing points in Figure 7.

* **Fault tolerance** — ``fault_plan`` injects crashes, stragglers,
  transient collective failures, reduce corruption, and OOM kills
  (:mod:`repro.mpi.faults`); ``policy`` selects abort (default) or one
  of the :mod:`repro.mpi.resilient` recovery policies.  The driver
  writes per-estimation-round checkpoints (cursor-only — RRR sets are
  re-derivable from the counter-addressable streams) which power both
  ``resume_from=`` restarts and the shrink policy's re-dealing; a
  shrunk run is flagged ``degraded=True`` in ``extra`` with the
  effective θ and the ε its surviving sample budget still certifies.

The collectives are executed for real (bit-exact sums) by
:func:`repro.mpi.comm.run_spmd` /
:func:`repro.mpi.resilient.run_spmd_resilient`; the phase times are
modeled from per-rank work meters, intra-node OpenMP speedup, and the
α–β collective costs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..imm.result import IMMResult
from ..imm.theta import _inflated_l, lambda_prime, lambda_star, validate_eps
from ..perf.counters import WorkCounters
from ..perf.memory import MemoryModel
from ..perf.timers import PhaseTimer
from ..rng import Lcg64, spawn_streams
from ..sampling import BatchedRRRSampler, RRRSampler, SortedRRRCollection
from ..parallel.machine import PUMA, MachineSpec
from .checkpoint import (
    DistCheckpoint,
    initial_deals,
    live_count,
    owned_indices,
    shrink_deals,
)
from .comm import Allreduce, CommStats, run_spmd
from .costmodel import checkpoint_seconds, collective_seconds
from .faults import FaultInjector, FaultPlan, SimulatedOOMError, _fmt_bytes
from .resilient import POLICIES, RecoveryLog, run_spmd_resilient

__all__ = ["imm_dist", "SimulatedOOMError"]


@dataclass
class _RankRecord:
    """Work meters one rank reports back to the pricing driver."""

    seeds: np.ndarray | None = None
    covered: int = 0
    theta: int = 0
    lb: float = 1.0
    local_samples: int = 0
    collection_bytes: int = 0
    edges_total: int = 0
    #: edges spent re-deriving the partition on a resume/shrink restart
    rebuild_edges: int = 0
    #: final RNG cursor (first global sample index never considered)
    cursor: int = 0
    #: per estimation round: (local sampling edges, local selection entries)
    round_meters: list[tuple[int, int]] = field(default_factory=list)
    #: per estimation round: (theta_x, covered fraction) — the same
    #: diagnostic the serial driver exposes as ``coverage_history``, so
    #: Figure-2-style sweeps can run distributed.
    coverage_history: list[tuple[int, float]] = field(default_factory=list)
    final_sample_edges: int = 0
    final_select_entries: int = 0
    rounds: int = 0


@dataclass
class _JobState:
    """Driver-side state shared across rank incarnations of one job.

    This models the durable side of a real deployment (the checkpoint
    store): it is only ever read at generator (re)start and written at
    checkpoint boundaries, both of which happen at deterministic,
    replicated points of the lockstep schedule.
    """

    deals: tuple
    alive: tuple[int, ...]
    resume: DistCheckpoint | None = None
    sink: list | None = None
    #: most recent checkpoint — the shrink policy's restart point
    holder: DistCheckpoint | None = None
    #: dedup of checkpoint writes (recovery replays re-execute them)
    written: set = field(default_factory=set)
    #: samples owned by dead ranks that were already generated at their
    #: last checkpoint — unrecoverable under shrink
    lost: int = 0

    def write_checkpoint(self, rank: int, ck: DistCheckpoint) -> None:
        if rank != self.alive[0]:
            return
        key = ck.key()
        if key in self.written:
            return
        self.written.add(key)
        self.holder = ck
        if self.sink is not None:
            self.sink.append(ck.to_dict())


def _dist_select(
    collection: SortedRRRCollection, n: int, k: int
) -> Generator:
    """Distributed greedy selection (generator; use ``yield from``).

    Returns ``(seeds, covered_total, local_entries_scanned)``.
    """
    flat, indptr, sample_of = collection.flattened()
    num_local = len(collection)
    local_counts = np.bincount(flat, minlength=n).astype(np.int64)
    entries = int(collection.total_entries)
    global_counts = yield Allreduce(local_counts)
    global_counts = np.asarray(global_counts, dtype=np.int64).copy()

    vert_order = np.argsort(flat, kind="stable")
    vert_counts = np.bincount(flat, minlength=n)
    vert_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(vert_counts, out=vert_indptr[1:])
    sample_alive = np.ones(num_local, dtype=bool)

    seeds = np.empty(k, dtype=np.int64)
    covered_local = 0
    for i in range(k):
        v = int(np.argmax(global_counts))
        seeds[i] = v
        positions = vert_order[vert_indptr[v] : vert_indptr[v + 1]]
        hit = sample_of[positions]
        killed = hit[sample_alive[hit]]
        decrement = np.zeros(n, dtype=np.int64)
        if len(killed):
            sample_alive[killed] = False
            covered_local += len(killed)
            starts = indptr[killed]
            stops = indptr[killed + 1]
            counts = stops - starts
            total = int(counts.sum())
            entry_idx = np.repeat(stops - np.cumsum(counts), counts) + np.arange(total)
            decrement = np.bincount(flat[entry_idx], minlength=n).astype(np.int64)
            entries += total
        delta = yield Allreduce(decrement)
        global_counts -= np.asarray(delta, dtype=np.int64)
        global_counts[v] = -1
    covered_total = yield Allreduce(covered_local)
    return seeds, int(covered_total), entries


def _make_rank_program(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel,
    seed: int,
    l: float,
    rng_scheme: str,
    theta_cap: int | None,
    mem_limit: int | None,
    records: list[_RankRecord],
    state: _JobState,
    stats: CommStats,
):
    """Build the SPMD rank program closure for the SPMD runtimes."""
    n = graph.n
    l_eff = _inflated_l(n, l)
    eps_p = math.sqrt(2.0) * eps
    lam_p = lambda_prime(n, k, eps, l_eff)
    lam_s = lambda_star(n, k, eps, l_eff)
    max_x = max(1, int(math.ceil(math.log2(n))) - 1)

    def program(rank: int, size: int) -> Generator:
        # A (re)started incarnation reports fresh meters: respawn replays
        # and shrink restarts must not double-count the dead attempt.
        records[rank] = _RankRecord()
        rec = records[rank]
        collection = SortedRRRCollection(n)
        lcg: Lcg64 | None = None
        sampler: RRRSampler | None = None
        batched: BatchedRRRSampler | None = None
        if rng_scheme == "leapfrog":
            # The leap-frog LCG substream is inherently sequential: each
            # sample's randomness depends on how much the previous ones
            # consumed, so only the serial engine can replay it.
            lcg = spawn_streams(seed, size)[rank]
            sampler = RRRSampler(graph, model)
        else:
            # Per-sample counter streams are index-addressable, so the
            # rank's strided share can go through the cohort engine.
            batched = BatchedRRRSampler(graph, model)
        next_global = 0  # first global sample index not yet considered

        def extend_to(theta_target: int) -> int:
            """Generate this rank's share of samples in [next_global, θ)."""
            nonlocal next_global
            target = max(next_global, theta_target)
            edges = 0
            if lcg is not None:
                for j in range(next_global, target):
                    if j % size != rank:
                        continue
                    root = lcg.randint(0, n)
                    verts, e = sampler.generate(root, lcg)
                    collection.append(verts)
                    edges += e
            else:
                js = owned_indices(state.deals, rank, next_global, target)
                if len(js):
                    per = batched.sample_into(collection, js, seed)
                    edges = int(per.sum())
            next_global = target
            rec.cursor = next_global
            if mem_limit is not None:
                footprint = MemoryModel.for_rank(graph, collection).total
                if footprint > mem_limit:
                    raise SimulatedOOMError(rank, footprint, mem_limit)
            return edges

        def snapshot(stage: str, round_: int, lb: float, theta: int | None) -> DistCheckpoint:
            return DistCheckpoint(
                stage=stage,
                round=round_,
                next_global=next_global,
                lb=lb,
                theta=theta,
                rounds_done=rec.rounds,
                coverage_history=tuple(rec.coverage_history),
                deals=tuple(state.deals),
                alive=tuple(state.alive),
                lost_samples=state.lost,
                num_nodes=size,
                seed=seed,
                k=k,
                eps=eps,
                model=model.value,
                n=n,
                rng_scheme=rng_scheme,
            )

        # --- resume: re-derive the local partition from the cursor alone -
        ck = state.resume
        lb = 1.0
        theta: int | None = None
        start_x = 1
        if ck is not None:
            rec.rebuild_edges = extend_to(ck.next_global)
            rec.edges_total += rec.rebuild_edges
            lb = ck.lb
            theta = ck.theta
            rec.coverage_history = [tuple(h) for h in ck.coverage_history]
            rec.rounds = ck.rounds_done
            start_x = ck.round

        # --- EstimateTheta (Algorithm 2, replicated control flow) --------
        if ck is None or ck.stage == "estimate":
            stats.set_phase("EstimateTheta")
            for x in range(start_x, max_x + 1):
                state.write_checkpoint(rank, snapshot("estimate", x, lb, None))
                rec.rounds += 1
                y = n / (2.0**x)
                theta_x = int(math.ceil(lam_p / y))
                if theta_cap is not None:
                    theta_x = min(theta_x, theta_cap)
                round_edges = extend_to(theta_x)
                seeds, covered_total, entries = yield from _dist_select(collection, n, k)
                rec.round_meters.append((round_edges, entries))
                rec.edges_total += round_edges
                # Fractions are over the *live* sample count: after a
                # shrink, dead ranks' lost samples are not in anyone's
                # partition, so θ_x overstates the population.  Fault-free,
                # live_x == theta_x and histories match the serial driver.
                live_x = live_count(state.deals, state.alive, theta_x)
                frac = covered_total / max(live_x, 1)
                rec.coverage_history.append((theta_x, frac))
                if n * frac >= (1.0 + eps_p) * y:
                    lb = n * frac / (1.0 + eps_p)
                    break
                if theta_cap is not None and theta_x >= theta_cap:
                    break
            theta = int(math.ceil(lam_s / lb))
            if theta_cap is not None:
                theta = min(theta, theta_cap)
        assert theta is not None
        rec.theta, rec.lb = theta, lb
        state.write_checkpoint(rank, snapshot("final", max_x + 1, lb, theta))

        # --- Sample (top-up to θ) -----------------------------------------
        stats.set_phase("Sample")
        rec.final_sample_edges = extend_to(theta)
        rec.edges_total += rec.final_sample_edges

        # --- SelectSeeds ----------------------------------------------------
        stats.set_phase("SelectSeeds")
        seeds, covered_total, entries = yield from _dist_select(collection, n, k)
        rec.final_select_entries = entries
        rec.seeds = seeds
        rec.covered = covered_total
        rec.local_samples = len(collection)
        rec.collection_bytes = collection.nbytes_model()
        return rank

    return program


def imm_dist(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    num_nodes: int = 2,
    machine: MachineSpec = PUMA,
    threads_per_node: int | None = None,
    seed: int = 0,
    l: float = 1.0,
    *,
    rng_scheme: str = "per-sample",
    theta_cap: int | None = None,
    mem_per_node: int | None = None,
    fault_plan: FaultPlan | str | None = None,
    policy: str = "abort",
    max_retries: int = 3,
    resume_from: DistCheckpoint | dict | None = None,
    checkpoint_sink: list | None = None,
) -> IMMResult:
    """Run the distributed IMM and return modeled-time results.

    Parameters
    ----------
    graph, k, eps, model, seed, l, theta_cap:
        As in :func:`repro.imm.imm`.
    num_nodes:
        Cluster nodes = MPI ranks (one rank per node, OpenMP inside, the
        paper's hybrid configuration).
    machine:
        Hardware model; :data:`~repro.parallel.machine.PUMA` or
        :data:`~repro.parallel.machine.EDISON`.
    threads_per_node:
        OpenMP threads per rank (default: all the node offers — with
        SMT on Edison, matching the paper's hyper-threaded runs).
    rng_scheme:
        ``"per-sample"`` (default, rank-count-invariant output) or
        ``"leapfrog"`` (the paper's TRNG-style LCG splitting).
    mem_per_node:
        Override of the node DRAM for the simulated OOM killer (the
        experiment harness uses it to scale limits to stand-in graphs).
    fault_plan:
        A :class:`~repro.mpi.faults.FaultPlan` (or its CLI spec string)
        injected into the SPMD run.
    policy:
        ``"abort"`` (default: typed errors propagate, as before) or a
        :data:`~repro.mpi.resilient.POLICIES` recovery policy.
    max_retries:
        Transient-failure retry budget per collective (recovery
        policies only).
    resume_from:
        A :class:`~repro.mpi.checkpoint.DistCheckpoint` (or its
        ``to_dict`` form) to restart from instead of a cold start.
    checkpoint_sink:
        A list that receives every checkpoint written (``to_dict``
        form, in write order) — the in-process stand-in for a
        checkpoint store.

    Raises
    ------
    SimulatedOOMError
        If any rank's modeled footprint exceeds the node memory (and no
        policy absorbs it).
    RankFailedError, TransientCommError
        Injected faults that the selected policy does not recover.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if rng_scheme not in ("per-sample", "leapfrog"):
        raise ValueError(f"unknown rng_scheme {rng_scheme!r}")
    if policy not in ("abort",) + POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected abort or one of {POLICIES}")
    if policy == "shrink" and rng_scheme == "leapfrog":
        raise ValueError(
            "shrink recovery requires the per-sample rng_scheme: leap-frog "
            "substreams are bound to ranks and cannot be re-dealt"
        )
    validate_eps(eps)
    model = DiffusionModel.parse(model)
    if isinstance(fault_plan, str):
        fault_plan = FaultPlan.parse(fault_plan)
    if threads_per_node is None:
        threads_per_node = machine.threads_per_node
    if not 1 <= threads_per_node <= machine.threads_per_node:
        raise ValueError(
            f"threads_per_node must be in [1, {machine.threads_per_node}]"
        )
    mem_limit = machine.mem_per_node if mem_per_node is None else mem_per_node

    if isinstance(resume_from, dict):
        resume_from = DistCheckpoint.from_dict(resume_from)
    if resume_from is not None:
        _check_resume_compat(resume_from, graph, k, eps, model, seed, rng_scheme, num_nodes)
        state = _JobState(
            deals=tuple(resume_from.deals),
            alive=tuple(resume_from.alive),
            resume=resume_from,
            sink=checkpoint_sink,
            holder=resume_from,
            lost=resume_from.lost_samples,
        )
        state.written.add(resume_from.key())
    else:
        state = _JobState(
            deals=initial_deals(num_nodes),
            alive=tuple(range(num_nodes)),
            sink=checkpoint_sink,
        )

    sink_start = len(checkpoint_sink) if checkpoint_sink is not None else 0
    records = [_RankRecord() for _ in range(num_nodes)]
    comm_stats = CommStats()
    injector = fault_plan.injector() if fault_plan is not None else None
    program = _make_rank_program(
        graph, k, eps, model, seed, l, rng_scheme, theta_cap, mem_limit,
        records, state, comm_stats,
    )

    def on_shrink(dead: tuple[int, ...], alive_now: tuple[int, ...]) -> None:
        ck = state.holder
        cursor = ck.next_global if ck is not None else 0
        for d in dead:
            if d not in state.alive:
                continue  # already accounted in a previous shrink
            state.lost += len(owned_indices(state.deals, d, 0, cursor))
            records[d] = _RankRecord()
        state.alive = tuple(alive_now)
        state.deals = shrink_deals(state.deals, cursor, alive_now)
        state.resume = ck

    wall = PhaseTimer()
    rlog: RecoveryLog | None = None
    with wall.phase("Other"):
        if policy == "abort":
            run_spmd(num_nodes, program, stats=comm_stats, faults=injector)
        else:
            _, _, rlog = run_spmd_resilient(
                num_nodes,
                program,
                policy=policy,
                faults=injector,
                max_retries=max_retries,
                stats=comm_stats,
                on_shrink=on_shrink,
            )

    # ---- price the phases ----------------------------------------------
    n = graph.n
    eff = machine.effective_threads(threads_per_node)
    slow = [
        injector.slowdown(r) if injector is not None else 1.0
        for r in range(num_nodes)
    ]
    t_sel_comm = (k + 1) * collective_seconds(
        machine, num_nodes, 8 * n
    ) + collective_seconds(machine, num_nodes, 8)

    def sample_seconds(edges_per_rank: list[int]) -> float:
        makespan = max(
            e * s for e, s in zip(edges_per_rank, slow)
        ) * machine.t_edge / eff
        return makespan + threads_per_node * machine.thread_overhead

    def select_seconds(entries_per_rank: list[int]) -> float:
        local = max(
            e * s for e, s in zip(entries_per_rank, slow)
        ) * machine.t_update / eff
        argmax = k * (n / eff) * machine.t_update * max(slow)
        return local + argmax + t_sel_comm

    sim = PhaseTimer()
    rounds = max(rec.rounds for rec in records)
    for i in range(rounds):
        round_edges = [
            rec.round_meters[i][0] if i < len(rec.round_meters) else 0
            for rec in records
        ]
        round_entries = [
            rec.round_meters[i][1] if i < len(rec.round_meters) else 0
            for rec in records
        ]
        sim.charge("EstimateTheta", sample_seconds(round_edges))
        sim.charge("EstimateTheta", select_seconds(round_entries))
    sim.charge("Sample", sample_seconds([rec.final_sample_edges for rec in records]))
    sim.charge(
        "SelectSeeds", select_seconds([rec.final_select_entries for rec in records])
    )
    sim.charge("Other", graph.n * machine.t_update + 2 * machine.alpha)

    # Recovery surcharge: modeled backoff waits, the α cost of replayed
    # collectives, and the re-derivation sampling work (rebuilds after a
    # shrink restart; a respawned rank's full regenerated partition).
    recovery_seconds = 0.0
    if rlog is not None and (rlog.retries or rlog.respawns or rlog.shrinks):
        rebuild_edges = sum(rec.rebuild_edges for rec in records)
        respawn_edges = sum(
            records[r].edges_total for r in set(rlog.respawned_ranks)
        )
        recovery_seconds = (
            rlog.backoff_seconds
            + rlog.replayed_calls * machine.alpha
            + (rebuild_edges + respawn_edges) * machine.t_edge / eff
        )
        sim.charge("Other", recovery_seconds)

    # Checkpoint-to-disk surcharge (ROADMAP: price the durable write,
    # not just the in-process sink append).  Each checkpoint this run
    # produced is modeled as one fsync'd write of its serialized size.
    checkpoint_write_seconds = 0.0
    if checkpoint_sink is not None:
        for ck_dict in checkpoint_sink[sink_start:]:
            nbytes = len(json.dumps(ck_dict, default=str).encode())
            checkpoint_write_seconds += checkpoint_seconds(machine, nbytes)
        if checkpoint_write_seconds:
            sim.charge("Other", checkpoint_write_seconds)

    first_alive = state.alive[0]
    rec0 = records[first_alive]
    theta_eff = live_count(state.deals, state.alive, rec0.theta)
    degraded = theta_eff < rec0.theta
    if degraded:
        # λ* scales as 1/ε² at fixed (n, k, l), so the ε the surviving
        # θ_eff·LB sample budget still certifies inverts in closed form.
        eps_eff = math.sqrt(
            lambda_star(n, k, 1.0, _inflated_l(n, l)) / max(theta_eff * rec0.lb, 1.0)
        )
    else:
        eps_eff = eps

    counters = WorkCounters(
        edges_examined=sum(rec.edges_total for rec in records),
        samples_generated=sum(rec.local_samples for rec in records),
        entries_scanned=sum(
            rec.final_select_entries + sum(m[1] for m in rec.round_meters)
            for rec in records
        ),
        counter_updates=sum(
            rec.final_select_entries + sum(m[1] for m in rec.round_meters)
            for rec in records
        ),
        allreduce_calls=comm_stats.calls,
        allreduce_elements=comm_stats.payload_bytes // 8,
    )
    assert rec0.seeds is not None
    return IMMResult(
        seeds=rec0.seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        layout="sorted",
        theta=rec0.theta,
        num_samples=sum(rec.local_samples for rec in records),
        coverage=rec0.covered / max(theta_eff, 1),
        lb=rec0.lb,
        breakdown=sim.breakdown(),
        counters=counters,
        memory_bytes=max(rec.collection_bytes for rec in records),
        simulated=True,
        ranks=num_nodes * threads_per_node,
        extra={
            "machine": machine.name,
            "num_nodes": num_nodes,
            "threads_per_node": threads_per_node,
            "rng_scheme": rng_scheme,
            "comm_calls": comm_stats.calls,
            "comm_bytes": comm_stats.payload_bytes,
            "comm_by_label": comm_stats.label_totals(),
            "measured_breakdown": wall.breakdown(),
            "per_rank_samples": [rec.local_samples for rec in records],
            "estimation_rounds": rec0.rounds,
            "coverage_history": rec0.coverage_history,
            "theta_capped": theta_cap is not None and rec0.theta >= theta_cap,
            "policy": policy,
            "degraded": degraded,
            "theta_effective": theta_eff,
            "lost_samples": rec0.theta - theta_eff,
            "epsilon_effective": eps_eff,
            "alive_ranks": list(state.alive),
            "rng_cursor": rec0.cursor,
            "recovery": rlog.as_dict() if rlog is not None else None,
            "recovery_seconds": recovery_seconds,
            "checkpoint_write_seconds": checkpoint_write_seconds,
            "fault_plan": fault_plan.describe() if fault_plan is not None else None,
        },
    )


def _check_resume_compat(
    ck: DistCheckpoint,
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel,
    seed: int,
    rng_scheme: str,
    num_nodes: int,
) -> None:
    """A checkpoint is only valid against the job that wrote it."""
    expected = {
        "n": (ck.n, graph.n),
        "k": (ck.k, k),
        "eps": (ck.eps, eps),
        "model": (ck.model, model.value),
        "seed": (ck.seed, seed),
        "rng_scheme": (ck.rng_scheme, rng_scheme),
        "num_nodes": (ck.num_nodes, num_nodes),
    }
    mismatched = {
        name: pair for name, pair in expected.items() if pair[0] != pair[1]
    }
    if mismatched:
        detail = ", ".join(
            f"{name}: checkpoint={a!r} vs job={b!r}"
            for name, (a, b) in sorted(mismatched.items())
        )
        raise ValueError(f"checkpoint incompatible with this job ({detail})")
