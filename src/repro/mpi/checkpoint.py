"""Checkpoint/restart state for ``imm_dist`` and sample-ownership algebra.

The whole reason checkpoints are *cheap* here is the determinism
contract: with counter-addressable per-sample streams, sample ``j`` is
a pure function of ``(graph, model, seed, j)``, so a rank's entire RRR
partition is re-derivable from its **sample indices alone**.  A
checkpoint therefore never stores RRR sets — only the control-flow
cursor ``(round, rng cursor, lower bound, selection history)`` plus the
ownership map, a few hundred bytes regardless of θ.

Ownership is expressed as **deal epochs**: ``deals`` is a sorted list
of ``(start_index, ranks)`` pairs, where epoch ``i`` governs global
sample indices ``start_i <= j < start_{i+1}`` and assigns ``j`` to
``ranks[j % len(ranks)]``.  A fault-free job has the single epoch
``(0, (0..p-1))`` — exactly the strided partition the distributed
driver always used.  A *shrink* recovery appends a new epoch at the
checkpoint cursor with the surviving ranks: indices before the cursor
that belonged to a dead rank are lost (θ_eff shrinks), indices after it
are re-dealt to survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "DistCheckpoint",
    "initial_deals",
    "owned_indices",
    "live_count",
    "shrink_deals",
    "rebuild_partition",
]

Deals = tuple[tuple[int, tuple[int, ...]], ...]


def initial_deals(num_ranks: int) -> Deals:
    """The fault-free ownership map: one epoch, strided over all ranks."""
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    return ((0, tuple(range(num_ranks))),)


def _epochs(deals: Deals, lo: int, hi: int):
    """Yield ``(start, stop, ranks)`` segments of ``[lo, hi)`` per epoch."""
    deals = tuple(deals)
    for i, (start, ranks) in enumerate(deals):
        stop = deals[i + 1][0] if i + 1 < len(deals) else hi
        seg_lo, seg_hi = max(lo, start), min(hi, stop)
        if seg_lo < seg_hi:
            yield seg_lo, seg_hi, tuple(ranks)


def owned_indices(deals: Deals, rank: int, lo: int, hi: int) -> np.ndarray:
    """Global sample indices in ``[lo, hi)`` owned by ``rank``."""
    parts = []
    for seg_lo, seg_hi, ranks in _epochs(deals, lo, hi):
        js = np.arange(seg_lo, seg_hi, dtype=np.int64)
        owners = np.asarray(ranks, dtype=np.int64)[js % len(ranks)]
        parts.append(js[owners == rank])
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def live_count(deals: Deals, alive: Iterable[int], upto: int) -> int:
    """How many of the global indices ``[0, upto)`` are owned by a rank
    in ``alive`` — the effective sample count θ_eff after losses."""
    alive_set = set(int(r) for r in alive)
    if all(set(ranks) <= alive_set for _, ranks in deals):
        return max(0, int(upto))  # nothing lost: every owner is alive
    alive_arr = np.asarray(sorted(alive_set), dtype=np.int64)
    total = 0
    for seg_lo, seg_hi, ranks in _epochs(deals, 0, upto):
        js = np.arange(seg_lo, seg_hi, dtype=np.int64)
        owners = np.asarray(ranks, dtype=np.int64)[js % len(ranks)]
        total += int(np.isin(owners, alive_arr).sum())
    return total


def shrink_deals(deals: Deals, cursor: int, alive: Sequence[int]) -> Deals:
    """Ownership map after re-dealing indices ``>= cursor`` to ``alive``.

    Epochs at or beyond the cursor are superseded (those indices were
    never checkpointed as generated, so survivors regenerate them);
    epochs before it are frozen history — their dead-owned indices are
    the lost samples.
    """
    if not alive:
        raise ValueError("cannot shrink to zero ranks")
    kept = [(start, tuple(ranks)) for start, ranks in deals if start < cursor]
    return tuple(kept) + ((cursor, tuple(alive)),)


@dataclass(frozen=True)
class DistCheckpoint:
    """Restartable ``imm_dist`` state at an estimation-round boundary.

    ``stage`` is ``"estimate"`` (about to run estimation round
    ``round``) or ``"final"`` (estimation done; θ and the lower bound
    are fixed, the final top-up sampling and selection remain).
    ``next_global`` is the RNG cursor: every global sample index below
    it has been generated, everything at or above it has not.  RRR sets
    themselves are **not** stored — they are re-derived from
    ``(seed, deals, next_global)`` on resume.
    """

    stage: str
    round: int
    next_global: int
    lb: float
    theta: int | None
    rounds_done: int
    coverage_history: tuple[tuple[int, float], ...]
    deals: Deals
    alive: tuple[int, ...]
    lost_samples: int
    num_nodes: int
    seed: int
    k: int
    eps: float
    model: str
    n: int
    rng_scheme: str

    def __post_init__(self) -> None:
        if self.stage not in ("estimate", "final"):
            raise ValueError(f"unknown checkpoint stage {self.stage!r}")

    def key(self) -> tuple:
        """Identity for write deduplication (recovery replays re-execute
        checkpoint writes; identical state must not be re-emitted)."""
        return (self.stage, self.round, self.next_global, self.alive, self.theta)

    def to_dict(self) -> dict:
        """JSON-serializable form (lists instead of tuples/arrays)."""
        return {
            "stage": self.stage,
            "round": self.round,
            "next_global": self.next_global,
            "lb": self.lb,
            "theta": self.theta,
            "rounds_done": self.rounds_done,
            "coverage_history": [[int(t), float(f)] for t, f in self.coverage_history],
            "deals": [[int(start), list(map(int, ranks))] for start, ranks in self.deals],
            "alive": list(map(int, self.alive)),
            "lost_samples": self.lost_samples,
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "k": self.k,
            "eps": self.eps,
            "model": self.model,
            "n": self.n,
            "rng_scheme": self.rng_scheme,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DistCheckpoint":
        return cls(
            stage=data["stage"],
            round=int(data["round"]),
            next_global=int(data["next_global"]),
            lb=float(data["lb"]),
            theta=None if data["theta"] is None else int(data["theta"]),
            rounds_done=int(data["rounds_done"]),
            coverage_history=tuple(
                (int(t), float(f)) for t, f in data["coverage_history"]
            ),
            deals=tuple(
                (int(start), tuple(int(r) for r in ranks))
                for start, ranks in data["deals"]
            ),
            alive=tuple(int(r) for r in data["alive"]),
            lost_samples=int(data["lost_samples"]),
            num_nodes=int(data["num_nodes"]),
            seed=int(data["seed"]),
            k=int(data["k"]),
            eps=float(data["eps"]),
            model=str(data["model"]),
            n=int(data["n"]),
            rng_scheme=str(data["rng_scheme"]),
        )


def rebuild_partition(graph, model, deals: Deals, rank: int, upto: int, seed: int):
    """Re-derive ``rank``'s RRR partition for indices ``[0, upto)``.

    This is the respawn primitive: the partition a recovered rank must
    hold is a pure function of ``(graph, model, seed, deals, rank,
    upto)`` — no survivor state is consulted.  Returns
    ``(collection, indices, per_sample_edges)``.
    """
    from ..diffusion import DiffusionModel
    from ..sampling import BatchedRRRSampler, SortedRRRCollection

    model = DiffusionModel.parse(model)
    js = owned_indices(deals, rank, 0, upto)
    collection = SortedRRRCollection(graph.n)
    if len(js):
        per = BatchedRRRSampler(graph, model).sample_into(collection, js, seed)
    else:
        per = np.empty(0, dtype=np.int64)
    return collection, js, per
