"""Declarative fault injection for the SPMD runtime.

Real IMMdist runs die in exactly a handful of ways: a rank crashes
(node failure, the Linux OOM killer behind Figure 7's missing points),
a rank straggles (NUMA imbalance, a busy neighbor), a collective fails
transiently (link flap), or a reduce buffer is silently corrupted.
:class:`FaultPlan` declares any mix of those against an otherwise
deterministic run; :class:`FaultInjector` is the live cursor the SPMD
runtimes (:func:`repro.mpi.comm.run_spmd`,
:func:`repro.mpi.resilient.run_spmd_resilient`) consult at every
collective step.

Faults are addressed by **collective step** — the global, lockstep
counter of completed collectives — or by **phase label** (the value of
``CommStats.phase`` when the collective is issued).  Because ranks only
interact at collectives, a "crash at step N" is the precise in-process
analog of a node dying between two MPI calls.  One-shot events (crash,
OOM, corruption) are consumed when they fire, so a recovered job does
not re-die on the same event; replayed collectives during recovery do
not advance the step counter and therefore cannot re-trigger anything.

Typed errors (:class:`RankFailedError`, :class:`TransientCommError`)
surface instead of raw exceptions so recovery policies and experiment
harnesses can dispatch on failure kind.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Union

import numpy as np

__all__ = [
    "RankFailedError",
    "TransientCommError",
    "SimulatedOOMError",
    "FaultPlanParseError",
    "RankCrash",
    "Straggler",
    "TransientFault",
    "CorruptReduce",
    "OOMKill",
    "SwitchOutage",
    "SlowQuery",
    "StaleRepublish",
    "ExtendFail",
    "ReplicaCrash",
    "ReplicaSlow",
    "Partition",
    "FaultPlan",
    "FaultInjector",
]


class FaultPlanParseError(ValueError):
    """A fault spec token the grammar cannot parse.

    A ``ValueError`` subtype so existing ``except ValueError`` callers
    keep working, but typed — CLI layers and tests can dispatch on the
    parse failure specifically and show the caller exactly which token
    (``.token``) was malformed.
    """

    def __init__(self, token: str, detail: str) -> None:
        super().__init__(f"bad fault token {token!r}: {detail}")
        self.token = token
        self.detail = detail


class RankFailedError(RuntimeError):
    """A rank died — the typed surface of mpirun's job abort."""

    def __init__(self, rank: int, step: int, phase: str = "") -> None:
        where = f" in phase {phase!r}" if phase else ""
        super().__init__(f"rank {rank} failed at collective step {step}{where}")
        self.rank = rank
        self.step = step
        self.phase = phase


class TransientCommError(RuntimeError):
    """A collective failed transiently and retries were exhausted."""

    def __init__(self, step: int, attempts: int) -> None:
        super().__init__(
            f"collective step {step} still failing after {attempts} attempt(s)"
        )
        self.step = step
        self.attempts = attempts


class SimulatedOOMError(MemoryError):
    """A rank's modeled resident set exceeded the node memory.

    Mirrors the paper's observation that "points missing in Figures 7c
    and 7d are experiments that were killed by the Linux Out of Memory
    killer" — the experiment harness records these as absent points.
    """

    def __init__(self, rank: int, needed: int, limit: int) -> None:
        super().__init__(
            f"rank {rank}: modeled footprint {_fmt_bytes(needed)} exceeds "
            f"node memory {_fmt_bytes(limit)}"
        )
        self.rank = rank
        self.needed = needed
        self.limit = limit


def _fmt_bytes(value: int) -> str:
    """Human-readable byte count (stand-ins are MiB-scale, clusters GiB)."""
    for unit, factor in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if value >= factor:
            return f"{value / factor:.2f} {unit}"
    return f"{value} B"


@dataclass(frozen=True)
class RankCrash:
    """Kill ``rank`` at collective step ``at_call`` or at the first
    collective it issues while the runtime is in phase ``at_phase``."""

    rank: int
    at_call: int | None = None
    at_phase: str | None = None

    def __post_init__(self) -> None:
        if (self.at_call is None) == (self.at_phase is None):
            raise ValueError("RankCrash needs exactly one of at_call / at_phase")
        if self.at_call is not None and self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")


@dataclass(frozen=True)
class Straggler:
    """Multiply ``rank``'s modeled compute time by ``factor`` (>= 1)."""

    rank: int
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class TransientFault:
    """The collective at step ``at_call`` fails ``failures`` consecutive
    times before succeeding (a link flap, not a dead rank)."""

    at_call: int
    failures: int = 1

    def __post_init__(self) -> None:
        if self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")
        if self.failures < 1:
            raise ValueError(f"failures must be >= 1, got {self.failures}")


@dataclass(frozen=True)
class CorruptReduce:
    """Perturb the last element of ``rank``'s reduce buffer at step
    ``at_call`` by ``delta`` (silent data corruption; must target an
    ``Allreduce`` step to have any effect)."""

    rank: int
    at_call: int
    delta: int = 1 << 20


@dataclass(frozen=True)
class OOMKill:
    """Raise :class:`SimulatedOOMError` on ``rank`` at step ``at_call``
    (an injected OOM kill, as opposed to the modeled one the memory
    model raises when the partition genuinely outgrows the node)."""

    rank: int
    at_call: int
    needed: int = 2 << 30
    limit: int = 1 << 30


@dataclass(frozen=True)
class SwitchOutage:
    """Crash the contiguous rank group ``[lo, hi]`` at collective step
    ``at_call`` — a correlated failure (top-of-rack switch dies, taking
    every node behind it down at the same instant).

    Unlike independent :class:`RankCrash` events, the whole group fails
    at *one* step; recovery policies must survive losing several ranks
    between two collectives, not one at a time.
    """

    lo: int
    hi: int
    at_call: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")
        if self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(range(self.lo, self.hi + 1))


@dataclass(frozen=True)
class SlowQuery:
    """Serving fault: query ``at_query`` straggles for ``seconds`` before
    executing (a slow client, a cold page, a noisy neighbor).  Addressed
    by the front end's admission sequence number, not the collective
    step — serving queries never issue collectives."""

    at_query: int
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.at_query < 0:
            raise ValueError(f"at_query must be >= 0, got {self.at_query}")
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")


@dataclass(frozen=True)
class StaleRepublish:
    """Serving fault: query ``at_query`` observes a mid-flight graph
    republish — its engine raises
    :class:`~repro.serving.frozen.StaleIndexError` as if the index
    directory had been re-frozen under it.  One-shot per event, so the
    front end's at-most-once re-dispatch succeeds against the reopened
    index."""

    at_query: int

    def __post_init__(self) -> None:
        if self.at_query < 0:
            raise ValueError(f"at_query must be >= 0, got {self.at_query}")


@dataclass(frozen=True)
class ExtendFail:
    """Serving fault: index-extension attempts ``at_call .. at_call +
    failures - 1`` crash (the SIGKILL analog for the serving layer's
    sampling re-entry).  Addressed by the front end's extension-attempt
    counter; consecutive failures are what trips the circuit breaker."""

    at_call: int
    failures: int = 1

    def __post_init__(self) -> None:
        if self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")
        if self.failures < 1:
            raise ValueError(f"failures must be >= 1, got {self.failures}")


@dataclass(frozen=True)
class ReplicaCrash:
    """Cluster fault: serving replica ``replica`` dies once the router
    admits query ``at_query`` and stays dead (the node is gone; only a
    redeploy brings it back).  Addressed by the *router's* admission
    sequence number — replicas never issue collectives."""

    replica: int
    at_query: int

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.at_query < 0:
            raise ValueError(f"at_query must be >= 0, got {self.at_query}")


@dataclass(frozen=True)
class ReplicaSlow:
    """Cluster fault: every dispatch to replica ``replica`` straggles
    for ``seconds`` (a NUMA-starved or GC-pausing node).  Recurring, not
    one-shot — this is the tail the router's hedging exists to cut."""

    replica: int
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")


@dataclass(frozen=True)
class Partition:
    """Cluster fault: replica ``replica`` is unreachable for the
    ``queries`` router queries starting at ``at_query``, then healed —
    a network partition, not a death.  The router must fail over while
    the window is open and route back once it closes."""

    replica: int
    at_query: int
    queries: int = 1

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.at_query < 0:
            raise ValueError(f"at_query must be >= 0, got {self.at_query}")
        if self.queries < 1:
            raise ValueError(f"queries must be >= 1, got {self.queries}")


FaultEvent = Union[
    RankCrash, Straggler, TransientFault, CorruptReduce, OOMKill, SwitchOutage,
    SlowQuery, StaleRepublish, ExtendFail, ReplicaCrash, ReplicaSlow, Partition,
]
_EVENT_TYPES = (
    RankCrash, Straggler, TransientFault, CorruptReduce, OOMKill, SwitchOutage,
    SlowQuery, StaleRepublish, ExtendFail, ReplicaCrash, ReplicaSlow, Partition,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault events against one SPMD job."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, _EVENT_TYPES):
                raise TypeError(f"not a fault event: {event!r}")

    def injector(self) -> "FaultInjector":
        """A fresh live cursor over this plan (one per job execution)."""
        return FaultInjector(self)

    def describe(self) -> str:
        if not self.events:
            return "no faults"
        return "; ".join(_describe(e) for e in self.events)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the CLI grammar into a plan.

        Events are separated by ``;`` or ``,``::

            crash:1@3              rank 1 dies at collective step 3
            crash:1@phase=Sample   rank 1 dies at its first collective in phase
            oom:2@4                rank 2 is OOM-killed at step 4
            straggler:2x4.0        rank 2's compute runs 4x slower
            transient:@5           the step-5 collective fails once
            transient:@5x2         ... fails twice before healing
            corrupt:0@1            rank 0's reduce buffer corrupted at step 1
            switch:1-3@2           ranks 1..3 all die at step 2 (switch outage)

        Serving-layer faults (addressed by the front end's query sequence
        number / extension-attempt counter, not the collective step)::

            slowquery:2x0.1        query 2 straggles for 0.1s
            stale:@1               query 1 sees a mid-flight graph republish
            extendfail:@0          the first index extension crashes
            extendfail:@0x3        ... the first three extensions crash

        Cluster faults (addressed by the router's query sequence number
        and a replica index)::

            replicacrash:1@3       replica 1 dies at query 3 (and stays dead)
            replicaslow:0x0.2      every dispatch to replica 0 straggles 0.2s
            partition:2@5          replica 2 unreachable for query 5, then healed
            partition:2@5x4        ... unreachable for queries 5..8, then healed

        Malformed specs raise :class:`FaultPlanParseError` naming the
        offending token.
        """
        events: list[FaultEvent] = []
        for token in re.split(r"[;,]", spec):
            token = token.strip()
            if not token:
                continue
            kind, sep, rest = token.partition(":")
            if not sep:
                raise FaultPlanParseError(token, "expected kind:spec")
            events.append(_parse_event(kind.strip().lower(), rest.strip(), token))
        return cls(tuple(events))


def _parse_event(kind: str, rest: str, token: str) -> FaultEvent:
    try:
        if kind in ("crash", "oom"):
            target, sep, at = rest.partition("@")
            if not sep:
                raise ValueError("missing '@step'")
            rank = int(target)
            if at.startswith("phase="):
                if kind == "oom":
                    raise ValueError("oom events are step-addressed only")
                return RankCrash(rank=rank, at_phase=at[len("phase="):])
            if kind == "oom":
                return OOMKill(rank=rank, at_call=int(at))
            return RankCrash(rank=rank, at_call=int(at))
        if kind == "straggler":
            target, sep, factor = rest.partition("x")
            return Straggler(int(target), float(factor) if sep else 2.0)
        if kind == "transient":
            at = rest.lstrip("@")
            call, sep, failures = at.partition("x")
            return TransientFault(int(call), int(failures) if sep else 1)
        if kind == "corrupt":
            target, sep, at = rest.partition("@")
            if not sep:
                raise ValueError("missing '@step'")
            return CorruptReduce(int(target), int(at))
        if kind == "switch":
            group, sep, at = rest.partition("@")
            if not sep:
                raise ValueError("missing '@step'")
            lo, sep, hi = group.partition("-")
            if not sep:
                raise ValueError("expected '<lo>-<hi>@<step>'")
            return SwitchOutage(int(lo), int(hi), int(at))
        if kind == "slowquery":
            target, sep, seconds = rest.partition("x")
            return SlowQuery(int(target), float(seconds) if sep else 0.05)
        if kind == "stale":
            return StaleRepublish(int(rest.lstrip("@")))
        if kind == "extendfail":
            at = rest.lstrip("@")
            call, sep, failures = at.partition("x")
            return ExtendFail(int(call), int(failures) if sep else 1)
        if kind == "replicacrash":
            target, sep, at = rest.partition("@")
            if not sep:
                raise ValueError("missing '@query'")
            return ReplicaCrash(int(target), int(at))
        if kind == "replicaslow":
            target, sep, seconds = rest.partition("x")
            return ReplicaSlow(int(target), float(seconds) if sep else 0.05)
        if kind == "partition":
            target, sep, at = rest.partition("@")
            if not sep:
                raise ValueError("missing '@query'")
            q, sep, span = at.partition("x")
            return Partition(int(target), int(q), int(span) if sep else 1)
    except FaultPlanParseError:
        raise
    except ValueError as exc:
        raise FaultPlanParseError(token, str(exc)) from None
    raise FaultPlanParseError(token, f"unknown fault kind {kind!r}")


def _describe(event: FaultEvent) -> str:
    if isinstance(event, RankCrash):
        where = (
            f"step {event.at_call}"
            if event.at_call is not None
            else f"phase {event.at_phase!r}"
        )
        return f"crash rank {event.rank} at {where}"
    if isinstance(event, OOMKill):
        return f"oom-kill rank {event.rank} at step {event.at_call}"
    if isinstance(event, Straggler):
        return f"straggler rank {event.rank} x{event.factor:g}"
    if isinstance(event, TransientFault):
        return f"transient failure at step {event.at_call} x{event.failures}"
    if isinstance(event, SwitchOutage):
        return f"switch outage: ranks {event.lo}-{event.hi} die at step {event.at_call}"
    if isinstance(event, SlowQuery):
        return f"query {event.at_query} straggles {event.seconds:g}s"
    if isinstance(event, StaleRepublish):
        return f"graph republish observed by query {event.at_query}"
    if isinstance(event, ExtendFail):
        return (
            f"extension attempts {event.at_call}.."
            f"{event.at_call + event.failures - 1} crash"
        )
    if isinstance(event, ReplicaCrash):
        return f"replica {event.replica} dies at query {event.at_query}"
    if isinstance(event, ReplicaSlow):
        return f"replica {event.replica} straggles {event.seconds:g}s per dispatch"
    if isinstance(event, Partition):
        return (
            f"replica {event.replica} partitioned for queries "
            f"{event.at_query}..{event.at_query + event.queries - 1}"
        )
    return f"corrupt rank {event.rank} reduce buffer at step {event.at_call}"


class FaultInjector:
    """Live cursor over a :class:`FaultPlan` for one job execution.

    Holds the monotonic collective-step counter.  The counter advances
    only when a collective *completes for the first time* — retried
    attempts and recovery replays do not move it, so fault addresses
    stay stable across recoveries (and one-shot events, being consumed
    on firing, never re-fire after a restart re-executes the step).
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"expected FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self.step = 0
        self._fired: set[int] = set()
        # Switch outages fire once per *rank* in the group, not once per
        # event — every member dies, each surfacing its own failure to
        # whichever recovery loop is driving.
        self._fired_group: set[tuple[int, int]] = set()
        self._transient_left = {
            i: e.failures
            for i, e in enumerate(plan.events)
            if isinstance(e, TransientFault)
        }
        #: extension attempts issued so far (serving bulkhead counter).
        self.extension_attempts = 0

    def check_rank(self, rank: int, phase: str = "") -> None:
        """Raise if ``rank`` dies while issuing the current collective."""
        for i, event in enumerate(self.plan.events):
            if i in self._fired:
                continue
            if isinstance(event, RankCrash) and event.rank == rank:
                if self._due(event, phase):
                    self._fired.add(i)
                    raise RankFailedError(rank, self.step, phase)
            elif isinstance(event, OOMKill) and event.rank == rank:
                if self.step >= event.at_call:
                    self._fired.add(i)
                    raise SimulatedOOMError(rank, event.needed, event.limit)
            elif isinstance(event, SwitchOutage) and event.lo <= rank <= event.hi:
                if self.step >= event.at_call and (i, rank) not in self._fired_group:
                    self._fired_group.add((i, rank))
                    raise RankFailedError(rank, self.step, phase)

    def _due(self, event: RankCrash, phase: str) -> bool:
        if event.at_call is not None:
            return self.step >= event.at_call
        return bool(phase) and event.at_phase == phase

    def transient_failure(self) -> bool:
        """One attempt of the current step; ``True`` means it failed."""
        for i, event in enumerate(self.plan.events):
            if isinstance(event, TransientFault) and event.at_call == self.step:
                remaining = self._transient_left.get(i, 0)
                if remaining > 0:
                    self._transient_left[i] = remaining - 1
                    return True
        return False

    def corrupt_buffer(self, rank: int, data: Any) -> Any:
        """Apply any due reduce-buffer corruption for ``rank``."""
        for i, event in enumerate(self.plan.events):
            if i in self._fired:
                continue
            if (
                isinstance(event, CorruptReduce)
                and event.rank == rank
                and event.at_call == self.step
            ):
                self._fired.add(i)
                if isinstance(data, np.ndarray):
                    bad = data.copy()
                    bad.reshape(-1)[-1] += bad.dtype.type(event.delta)
                    return bad
                return data + event.delta
        return data

    def slowdown(self, rank: int) -> float:
        """Compound straggler factor for ``rank`` (1.0 = nominal)."""
        factor = 1.0
        for event in self.plan.events:
            if isinstance(event, Straggler) and event.rank == rank:
                factor *= event.factor
        return factor

    def advance_step(self) -> None:
        self.step += 1

    # -- serving-layer faults (query-addressed, not step-addressed) --------

    def query_delay(self, qid: int) -> float:
        """Injected straggle (seconds) for query ``qid``; one-shot per
        event, so a re-dispatched query does not straggle twice."""
        total = 0.0
        for i, event in enumerate(self.plan.events):
            if i in self._fired:
                continue
            if isinstance(event, SlowQuery) and event.at_query == qid:
                self._fired.add(i)
                total += event.seconds
        return total

    def stale_due(self, qid: int) -> bool:
        """``True`` once if query ``qid`` should observe a mid-flight
        graph republish (consumed on firing, so the front end's
        at-most-once re-dispatch completes against the reopened index)."""
        for i, event in enumerate(self.plan.events):
            if i in self._fired:
                continue
            if isinstance(event, StaleRepublish) and event.at_query == qid:
                self._fired.add(i)
                return True
        return False

    # -- cluster faults (replica + router-query addressed) -----------------

    def replica_crashed(self, replica: int, qid: int) -> bool:
        """``True`` once any :class:`ReplicaCrash` for ``replica`` has
        reached its query address — crashes are permanent, so this is a
        monotone predicate of ``qid``, not a one-shot event."""
        return any(
            isinstance(e, ReplicaCrash)
            and e.replica == replica
            and qid >= e.at_query
            for e in self.plan.events
        )

    def replica_partitioned(self, replica: int, qid: int) -> bool:
        """``True`` while ``qid`` falls inside a :class:`Partition`
        window for ``replica``; the window closing *is* the heal."""
        return any(
            isinstance(e, Partition)
            and e.replica == replica
            and e.at_query <= qid < e.at_query + e.queries
            for e in self.plan.events
        )

    def replica_delay(self, replica: int) -> float:
        """Compound injected straggle (seconds) for one dispatch to
        ``replica``.  Recurring — every dispatch pays it, which is what
        makes the router's hedge measurable."""
        return sum(
            e.seconds
            for e in self.plan.events
            if isinstance(e, ReplicaSlow) and e.replica == replica
        )

    def extend_failure(self) -> bool:
        """One index-extension attempt; ``True`` means it crashes.

        Advances the extension-attempt counter either way, mirroring how
        :meth:`transient_failure` burns an attempt per call.
        """
        attempt = self.extension_attempts
        self.extension_attempts += 1
        for event in self.plan.events:
            if isinstance(event, ExtendFail):
                if event.at_call <= attempt < event.at_call + event.failures:
                    return True
        return False
