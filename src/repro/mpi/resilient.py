"""Recovery-enabled SPMD runtime: retry, respawn, and shrink policies.

:func:`run_spmd_resilient` executes the same lockstep generator
programs as :func:`repro.mpi.comm.run_spmd` but survives injected
faults instead of aborting:

* **retry** — a transiently failing collective is re-attempted in place
  with capped exponential backoff (the failed attempts are metered in
  ``CommStats`` under the ``"retry"`` label and the modeled backoff
  accumulates in :class:`RecoveryLog`); exhaustion surfaces the typed
  :class:`~repro.mpi.faults.TransientCommError`.

* **respawn** — a crashed rank is reconstructed *mid-job*.  The runtime
  keeps the combined value of every completed collective (identical on
  all ranks by definition); a fresh generator for the dead rank is fed
  that history, which — because every rank program is deterministic
  given its collective inputs — replays it to exactly the crash point,
  local state and all.  For ``imm_dist`` this is where the
  counter-addressable RNG pays off: the replayed rank regenerates
  precisely its own sample slice, bit-exact, without touching
  survivors.  Replayed collectives are metered under ``"replay"`` and
  do not advance the fault injector's step counter.

* **shrink** — an irrecoverable rank (crash under the shrink policy, or
  an OOM kill) is dropped: every surviving generator is closed and
  restarted against the caller's shrunken world via the ``on_shrink``
  callback (``imm_dist`` uses it to re-deal the dead rank's sample
  block and resume from its last checkpoint).  All transient failures
  are retried under every recovery policy.

Policy × fault dispatch (anything unlisted propagates):

========== ==================== ==================== ==========
policy     TransientCommError   RankFailedError      OOM kill
========== ==================== ==================== ==========
retry      retried w/ backoff   propagates           propagates
respawn    retried w/ backoff   replayed             propagates
shrink     retried w/ backoff   world shrinks        world shrinks
========== ==================== ==================== ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from .comm import (
    Allreduce,
    Barrier,
    Bcast,
    CollectiveMismatchError,
    CommStats,
    _as_injector,
    _close_quietly,
    _combine,
    _nbytes,
    _validate_step,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    RankFailedError,
    SimulatedOOMError,
    TransientCommError,
)

__all__ = ["run_spmd_resilient", "RecoveryLog", "POLICIES"]

POLICIES = ("retry", "respawn", "shrink")


@dataclass
class RecoveryLog:
    """What the resilient runtime did to keep the job alive."""

    policy: str
    retries: int = 0
    backoff_seconds: float = 0.0
    respawns: int = 0
    respawned_ranks: list[int] = field(default_factory=list)
    replayed_calls: int = 0
    shrinks: int = 0
    dead_ranks: list[int] = field(default_factory=list)
    events: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "respawns": self.respawns,
            "respawned_ranks": list(self.respawned_ranks),
            "replayed_calls": self.replayed_calls,
            "shrinks": self.shrinks,
            "dead_ranks": list(self.dead_ranks),
            "events": list(self.events),
        }


def _op_nbytes(op: Any) -> int:
    return 0 if isinstance(op, Barrier) else _nbytes(op.data)


def run_spmd_resilient(
    num_ranks: int,
    program: Callable[[int, int], Generator],
    *,
    policy: str = "respawn",
    faults: FaultPlan | FaultInjector | None = None,
    max_retries: int = 3,
    backoff_base: float = 1e-3,
    backoff_cap: float = 0.05,
    stats: CommStats | None = None,
    on_shrink: Callable[[tuple[int, ...], tuple[int, ...]], None] | None = None,
) -> tuple[list[Any], CommStats, RecoveryLog]:
    """Execute ``program(rank, num_ranks)`` on every rank, recovering
    from injected faults according to ``policy``.

    Returns ``(results, stats, recovery_log)``; ``results[r]`` is rank
    ``r``'s return value, or ``None`` for a rank dropped by shrink.
    ``on_shrink(dead, alive)`` is invoked — with the cumulative dead
    tuple and the surviving ranks — after generators are torn down and
    before survivors restart, so the caller can re-deal work and arm a
    resume checkpoint.  ``backoff_base``/``backoff_cap`` shape the
    modeled retry backoff ``min(cap, base * 2^(attempt-1))`` in seconds.
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if stats is None:
        stats = CommStats()
    injector = _as_injector(faults)
    rlog = RecoveryLog(policy=policy)

    alive: list[int] = list(range(num_ranks))
    results: list[Any] = [None] * num_ranks
    gens: dict[int, Generator] = {}
    started: dict[int, bool] = {}
    inbox: dict[int, Any] = {}
    done: dict[int, bool] = {}
    #: combined value of every completed collective in this incarnation —
    #: the replay tape for respawn (reset on shrink: survivors restart).
    history: list[Any] = []

    def _boot_world() -> None:
        for r in alive:
            gens[r] = program(r, num_ranks)
            started[r] = False
            inbox[r] = None
            done[r] = False

    def _advance(r: int) -> Any:
        """Advance rank ``r`` to its next collective; ``None`` = finished."""
        value = inbox[r] if started[r] else None
        started[r] = True
        try:
            return gens[r].send(value)
        except StopIteration as stop:
            results[r] = stop.value
            done[r] = True
            return None

    def _respawn(r: int) -> Any:
        """Rebuild rank ``r`` by replaying the collective history.

        Returns the op the respawned rank yields at the current step —
        which lockstep determinism guarantees exists: the rank crashed
        *while issuing* a collective here, so its replay must reach one.
        """
        _close_quietly(gens[r])
        gen = program(r, num_ranks)
        try:
            op = gen.send(None)
            for past in history:
                stats.record(type(op).__name__.lower(), _op_nbytes(op), label="replay")
                rlog.replayed_calls += 1
                op = gen.send(past)
        except StopIteration:
            raise CollectiveMismatchError(
                f"respawned rank {r} finished during replay — the rank program "
                "is not a deterministic function of its collective inputs"
            ) from None
        gens[r] = gen
        started[r] = True
        rlog.respawns += 1
        rlog.respawned_ranks.append(r)
        rlog.events.append(
            f"respawned rank {r} at step {len(history)} "
            f"(replayed {len(history)} collective(s))"
        )
        return op

    def _shrink(r: int, exc: BaseException) -> None:
        """Drop rank ``r`` and restart the survivors' world."""
        for g in gens.values():
            _close_quietly(g)
        gens.clear()
        alive.remove(r)
        results[r] = None
        rlog.shrinks += 1
        rlog.dead_ranks.append(r)
        rlog.events.append(
            f"rank {r} lost ({type(exc).__name__}); "
            f"shrinking to {len(alive)} rank(s)"
        )
        if not alive:
            raise exc
        if on_shrink is not None:
            on_shrink(tuple(rlog.dead_ranks), tuple(alive))
        history.clear()
        _boot_world()

    _boot_world()
    try:
        while True:
            if all(done[r] for r in alive):
                break
            ops: dict[int, Any] = {}
            restarted = False
            for r in list(alive):
                if done[r]:
                    continue
                try:
                    op = _advance(r)
                    if op is not None and injector is not None:
                        injector.check_rank(r, phase=stats.phase)
                except (RankFailedError, SimulatedOOMError) as exc:
                    if policy == "respawn" and isinstance(exc, RankFailedError):
                        op = _respawn(r)
                    elif policy == "shrink":
                        _shrink(r, exc)
                        restarted = True
                        break
                    else:
                        raise
                if op is not None:
                    ops[r] = op
            if restarted:
                continue
            if not ops:
                break  # every surviving rank finished this round
            if any(done[r] for r in alive):
                finished = [r for r in alive if done[r]]
                raise CollectiveMismatchError(
                    f"ranks {finished} returned while ranks {sorted(ops)} wait "
                    "in a collective — a real MPI job would hang here"
                )
            participants = sorted(ops)
            proto = _validate_step([(r, ops[r]) for r in participants], num_ranks)
            step = injector.step if injector is not None else len(history)
            attempt = 0
            while injector is not None and injector.transient_failure():
                attempt += 1
                rlog.retries += 1
                rlog.backoff_seconds += min(
                    backoff_cap, backoff_base * 2 ** (attempt - 1)
                )
                stats.record(
                    type(proto).__name__.lower(), _op_nbytes(proto), label="retry"
                )
                rlog.events.append(
                    f"transient failure at step {step} (attempt {attempt})"
                )
                if attempt > max_retries:
                    raise TransientCommError(step, attempt)
            if isinstance(proto, Bcast):
                combined = ops[proto.root].data
                stats.record("bcast", _nbytes(combined))
            elif isinstance(proto, Barrier):
                combined = None
                stats.record("barrier", 0)
            else:
                buffers = [ops[r].data for r in participants]
                if injector is not None and isinstance(proto, Allreduce):
                    buffers = [
                        injector.corrupt_buffer(r, b)
                        for r, b in zip(participants, buffers)
                    ]
                combined = _combine(proto, buffers)
                stats.record(type(proto).__name__.lower(), _nbytes(buffers[0]))
            history.append(combined)
            for r in participants:
                inbox[r] = combined
            if injector is not None:
                injector.advance_step()
    finally:
        for g in gens.values():
            _close_quietly(g)
    return results, stats, rlog
