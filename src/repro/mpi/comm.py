"""In-process SPMD runtime with real (bit-exact) collectives.

Rank programs are generators.  When a rank needs a collective it yields
an operation object and receives the combined result::

    def program(rank: int, size: int):
        local = np.bincount(...)
        global_counts = yield Allreduce(local)          # sum by default
        ...
        return my_result

    results, stats = run_spmd(4, program)

The runtime advances all ranks to their next collective, checks that
they agree on the operation (mismatch → the deadlock/abort a real MPI
job would suffer, surfaced as :class:`CollectiveMismatchError`), then
combines the buffers exactly as MPI would — so numerical results are
identical to a genuine distributed execution — and resumes every rank
with the combined value.  :class:`CommStats` tallies call counts and
payload bytes for the communication cost model.

This mirrors the semantics of ``MPI_Allreduce`` et al. while staying a
single deterministic process; it is the substitution DESIGN.md records
for the paper's OpenMPI / Cray MPICH runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

import numpy as np

__all__ = [
    "Allreduce",
    "Allgather",
    "Bcast",
    "Barrier",
    "CommStats",
    "CollectiveMismatchError",
    "run_spmd",
]


class CollectiveMismatchError(RuntimeError):
    """Raised when ranks disagree on the next collective (a hang in real MPI)."""


@dataclass
class Allreduce:
    """Combine every rank's ``data`` elementwise; all ranks receive the result.

    ``op`` is one of ``"sum"``, ``"max"``, ``"min"``.  ``data`` may be a
    scalar or ndarray; shapes must match across ranks.
    """

    data: Any
    op: str = "sum"


@dataclass
class Allgather:
    """All ranks receive the list ``[data_0, ..., data_{p-1}]``."""

    data: Any


@dataclass
class Bcast:
    """All ranks receive rank ``root``'s ``data``."""

    data: Any
    root: int = 0


@dataclass
class Barrier:
    """Synchronization only; resumes with ``None``."""


@dataclass
class CommStats:
    """Ledger of collective traffic for the cost model.

    ``payload_bytes`` counts the per-rank buffer size of each call (the
    quantity the α–β model multiplies by the tree depth), summed over
    calls; ``per_call`` retains ``(kind, nbytes)`` tuples in issue order
    so phases can be priced separately.
    """

    calls: int = 0
    payload_bytes: int = 0
    per_call: list[tuple[str, int]] = field(default_factory=list)

    def record(self, kind: str, nbytes: int) -> None:
        self.calls += 1
        self.payload_bytes += nbytes
        self.per_call.append((kind, nbytes))


def _nbytes(data: Any) -> int:
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    return 8  # scalar payload


def _combine(kind_op: Allreduce | Allgather | Bcast | Barrier, buffers: list[Any]) -> Any:
    if isinstance(kind_op, Allreduce):
        op = kind_op.op
        arrays = [np.asarray(b) for b in buffers]
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise CollectiveMismatchError(f"allreduce shape mismatch: {shapes}")
        stacked = np.stack(arrays)
        if op == "sum":
            out = stacked.sum(axis=0)
        elif op == "max":
            out = stacked.max(axis=0)
        elif op == "min":
            out = stacked.min(axis=0)
        else:
            raise ValueError(f"unknown allreduce op {op!r}")
        if np.ndim(buffers[0]) == 0 and not isinstance(buffers[0], np.ndarray):
            return out.item()
        return out
    if isinstance(kind_op, Allgather):
        return list(buffers)
    if isinstance(kind_op, Bcast):
        return buffers  # handled specially (root's buffer)
    return None  # Barrier


def run_spmd(
    num_ranks: int,
    program: Callable[[int, int], Generator],
    *,
    stats: CommStats | None = None,
) -> tuple[list[Any], CommStats]:
    """Execute ``program(rank, num_ranks)`` on every rank to completion.

    Returns ``(results, stats)`` where ``results[r]`` is rank ``r``'s
    generator return value.

    Raises
    ------
    CollectiveMismatchError
        If ranks diverge: some finish while others still wait in a
        collective, or concurrent operations have mismatched types,
        reduce ops, or broadcast roots.
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if stats is None:
        stats = CommStats()
    gens = [program(rank, num_ranks) for rank in range(num_ranks)]
    results: list[Any] = [None] * num_ranks
    done = [False] * num_ranks
    send_values: list[Any] = [None] * num_ranks
    first = True
    while not all(done):
        ops: list[Any] = [None] * num_ranks
        for r, gen in enumerate(gens):
            if done[r]:
                continue
            try:
                ops[r] = gen.send(None if first else send_values[r])
            except StopIteration as stop:
                results[r] = stop.value
                done[r] = True
        first = False
        active = [r for r in range(num_ranks) if not done[r]]
        if not active:
            break
        if len(active) != num_ranks and any(done):
            finished = [r for r in range(num_ranks) if done[r]]
            raise CollectiveMismatchError(
                f"ranks {finished} returned while ranks {active} wait in a "
                "collective — a real MPI job would hang here"
            )
        kinds = {type(ops[r]) for r in active}
        if len(kinds) != 1:
            raise CollectiveMismatchError(
                f"mixed collectives in one step: {[k.__name__ for k in kinds]}"
            )
        proto = ops[active[0]]
        if isinstance(proto, Allreduce):
            reduce_ops = {ops[r].op for r in active}
            if len(reduce_ops) != 1:
                raise CollectiveMismatchError(f"mixed allreduce ops: {reduce_ops}")
        if isinstance(proto, Bcast):
            roots = {ops[r].root for r in active}
            if len(roots) != 1:
                raise CollectiveMismatchError(f"mixed bcast roots: {roots}")
            root = proto.root
            if not 0 <= root < num_ranks:
                raise ValueError(f"bcast root {root} out of range")
            value = ops[root].data
            stats.record("bcast", _nbytes(value))
            for r in active:
                send_values[r] = value
            continue
        if isinstance(proto, Barrier):
            stats.record("barrier", 0)
            for r in active:
                send_values[r] = None
            continue
        buffers = [ops[r].data for r in active]
        combined = _combine(proto, buffers)
        stats.record(type(proto).__name__.lower(), _nbytes(buffers[0]))
        for r in active:
            send_values[r] = combined
    return results, stats
