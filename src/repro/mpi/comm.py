"""In-process SPMD runtime with real (bit-exact) collectives.

Rank programs are generators.  When a rank needs a collective it yields
an operation object and receives the combined result::

    def program(rank: int, size: int):
        local = np.bincount(...)
        global_counts = yield Allreduce(local)          # sum by default
        ...
        return my_result

    results, stats = run_spmd(4, program)

The runtime advances all ranks to their next collective, checks that
they agree on the operation (mismatch → the deadlock/abort a real MPI
job would suffer, surfaced as :class:`CollectiveMismatchError`), then
combines the buffers exactly as MPI would — so numerical results are
identical to a genuine distributed execution — and resumes every rank
with the combined value.  :class:`CommStats` tallies call counts and
payload bytes for the communication cost model.

``run_spmd(..., faults=...)`` consults a
:class:`repro.mpi.faults.FaultInjector` at every collective: injected
crashes/OOM kills surface as typed errors
(:class:`~repro.mpi.faults.RankFailedError`,
:class:`~repro.mpi.faults.SimulatedOOMError`), transient collective
failures as :class:`~repro.mpi.faults.TransientCommError`.  This
runtime *aborts* on all of them — recovery policies live in
:func:`repro.mpi.resilient.run_spmd_resilient`.

This mirrors the semantics of ``MPI_Allreduce`` et al. while staying a
single deterministic process; it is the substitution DESIGN.md records
for the paper's OpenMPI / Cray MPICH runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, NamedTuple

import numpy as np

from .faults import FaultInjector, FaultPlan, TransientCommError

__all__ = [
    "Allreduce",
    "Allgather",
    "Bcast",
    "Barrier",
    "CommCall",
    "CommStats",
    "CollectiveMismatchError",
    "run_spmd",
]


class CollectiveMismatchError(RuntimeError):
    """Raised when ranks disagree on the next collective (a hang in real MPI)."""


@dataclass
class Allreduce:
    """Combine every rank's ``data`` elementwise; all ranks receive the result.

    ``op`` is one of ``"sum"``, ``"max"``, ``"min"``.  ``data`` may be a
    scalar or ndarray; shapes must match across ranks.
    """

    data: Any
    op: str = "sum"


@dataclass
class Allgather:
    """All ranks receive the list ``[data_0, ..., data_{p-1}]``.

    Like ``MPI_Allgather``, array contributions must agree in shape and
    dtype across ranks (mismatched counts hang a real job).
    """

    data: Any


@dataclass
class Bcast:
    """All ranks receive rank ``root``'s ``data``."""

    data: Any
    root: int = 0


@dataclass
class Barrier:
    """Synchronization only; resumes with ``None``."""


class CommCall(NamedTuple):
    """One ledger entry: collective kind, per-rank payload bytes, and the
    phase/recovery label active when it was issued (``""`` = unlabeled
    first-attempt traffic; ``"retry"``/``"replay"`` mark recovery traffic)."""

    kind: str
    nbytes: int
    label: str = ""


@dataclass
class CommStats:
    """Ledger of collective traffic for the cost model.

    ``payload_bytes`` counts the per-rank buffer size of each call (the
    quantity the α–β model multiplies by the tree depth), summed over
    calls; ``per_call`` retains :class:`CommCall` entries in issue order
    so phases — and retried/replayed recovery traffic — can be priced
    separately.  Rank programs set ``phase`` via :meth:`set_phase`;
    recovery runtimes pass explicit ``label`` overrides.
    """

    calls: int = 0
    payload_bytes: int = 0
    per_call: list[CommCall] = field(default_factory=list)
    phase: str = ""

    def record(self, kind: str, nbytes: int, label: str | None = None) -> None:
        self.calls += 1
        self.payload_bytes += nbytes
        self.per_call.append(CommCall(kind, nbytes, self.phase if label is None else label))

    def set_phase(self, phase: str) -> None:
        """Label subsequent calls with ``phase`` (idempotent, rank-safe:
        lockstep ranks setting the same phase is a no-op)."""
        self.phase = phase

    def label_totals(self) -> dict[str, tuple[int, int]]:
        """``label -> (calls, payload_bytes)`` aggregation of the ledger."""
        totals: dict[str, tuple[int, int]] = {}
        for call in self.per_call:
            calls, nbytes = totals.get(call.label, (0, 0))
            totals[call.label] = (calls + 1, nbytes + call.nbytes)
        return totals


def _nbytes(data: Any) -> int:
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    return 8  # scalar payload


def _combine(kind_op: Allreduce | Allgather, buffers: list[Any]) -> Any:
    """Combine ``buffers`` (one per rank, rank order) for a data collective.

    ``Bcast``/``Barrier`` never reach this function: broadcast resolves to
    the root's buffer alone and a barrier carries no data.
    """
    if isinstance(kind_op, Allreduce):
        op = kind_op.op
        arrays = [np.asarray(b) for b in buffers]
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise CollectiveMismatchError(f"allreduce shape mismatch: {shapes}")
        stacked = np.stack(arrays)
        if op == "sum":
            out = stacked.sum(axis=0)
        elif op == "max":
            out = stacked.max(axis=0)
        elif op == "min":
            out = stacked.min(axis=0)
        else:
            raise ValueError(f"unknown allreduce op {op!r}")
        if np.ndim(buffers[0]) == 0 and not isinstance(buffers[0], np.ndarray):
            return out.item()
        return out
    if isinstance(kind_op, Allgather):
        is_array = [isinstance(b, np.ndarray) for b in buffers]
        if any(is_array):
            if not all(is_array):
                raise CollectiveMismatchError(
                    "allgather mixes array and scalar contributions"
                )
            shapes = {b.shape for b in buffers}
            if len(shapes) != 1:
                raise CollectiveMismatchError(f"allgather shape mismatch: {shapes}")
            dtypes = {b.dtype for b in buffers}
            if len(dtypes) != 1:
                raise CollectiveMismatchError(f"allgather dtype mismatch: {dtypes}")
        return list(buffers)
    raise TypeError(f"not a data collective: {type(kind_op).__name__}")


def _validate_step(ops: list[tuple[int, Any]], num_ranks: int) -> Any:
    """Check concurrently-issued ops agree; return the prototype op.

    ``ops`` is ``[(rank, op), ...]`` for the ranks participating in this
    step.  Shared by :func:`run_spmd` and the resilient runtime.
    """
    kinds = {type(op) for _, op in ops}
    if len(kinds) != 1:
        raise CollectiveMismatchError(
            f"mixed collectives in one step: {sorted(k.__name__ for k in kinds)}"
        )
    proto = ops[0][1]
    if isinstance(proto, Allreduce):
        reduce_ops = {op.op for _, op in ops}
        if len(reduce_ops) != 1:
            raise CollectiveMismatchError(f"mixed allreduce ops: {reduce_ops}")
    if isinstance(proto, Bcast):
        roots = {op.root for _, op in ops}
        if len(roots) != 1:
            raise CollectiveMismatchError(f"mixed bcast roots: {roots}")
        if not 0 <= proto.root < num_ranks:
            raise ValueError(f"bcast root {proto.root} out of range")
        if proto.root not in {rank for rank, _ in ops}:
            raise CollectiveMismatchError(
                f"bcast root {proto.root} is not participating in this step"
            )
    return proto


def _as_injector(faults: FaultPlan | FaultInjector | None) -> FaultInjector | None:
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults.injector()
    if isinstance(faults, FaultInjector):
        return faults
    raise TypeError(f"faults must be a FaultPlan or FaultInjector, got {type(faults).__name__}")


def _close_quietly(gen: Generator) -> None:
    try:
        gen.close()
    except Exception:
        pass  # a rank swallowing GeneratorExit must not mask the real error


def run_spmd(
    num_ranks: int,
    program: Callable[[int, int], Generator],
    *,
    stats: CommStats | None = None,
    faults: FaultPlan | FaultInjector | None = None,
) -> tuple[list[Any], CommStats]:
    """Execute ``program(rank, num_ranks)`` on every rank to completion.

    Returns ``(results, stats)`` where ``results[r]`` is rank ``r``'s
    generator return value.  All rank generators are closed on exit,
    normal or not — an aborted job leaves no suspended rank frames.

    Raises
    ------
    CollectiveMismatchError
        If ranks diverge: some finish while others still wait in a
        collective, or concurrent operations have mismatched types,
        reduce ops, or broadcast roots.
    RankFailedError, SimulatedOOMError, TransientCommError
        If ``faults`` injects a failure; this runtime aborts on the
        first one (recovery lives in ``run_spmd_resilient``).
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if stats is None:
        stats = CommStats()
    injector = _as_injector(faults)
    gens = [program(rank, num_ranks) for rank in range(num_ranks)]
    results: list[Any] = [None] * num_ranks
    done = [False] * num_ranks
    send_values: list[Any] = [None] * num_ranks
    first = True
    try:
        while not all(done):
            ops: list[Any] = [None] * num_ranks
            for r, gen in enumerate(gens):
                if done[r]:
                    continue
                try:
                    ops[r] = gen.send(None if first else send_values[r])
                except StopIteration as stop:
                    results[r] = stop.value
                    done[r] = True
                    continue
                if injector is not None:
                    injector.check_rank(r, phase=stats.phase)
            first = False
            active = [r for r in range(num_ranks) if not done[r]]
            if not active:
                break
            if len(active) != num_ranks and any(done):
                finished = [r for r in range(num_ranks) if done[r]]
                raise CollectiveMismatchError(
                    f"ranks {finished} returned while ranks {active} wait in a "
                    "collective — a real MPI job would hang here"
                )
            proto = _validate_step([(r, ops[r]) for r in active], num_ranks)
            if injector is not None and injector.transient_failure():
                raise TransientCommError(injector.step, 1)
            if isinstance(proto, Bcast):
                value = ops[proto.root].data
                stats.record("bcast", _nbytes(value))
                for r in active:
                    send_values[r] = value
            elif isinstance(proto, Barrier):
                stats.record("barrier", 0)
                for r in active:
                    send_values[r] = None
            else:
                buffers = [ops[r].data for r in active]
                if injector is not None and isinstance(proto, Allreduce):
                    buffers = [
                        injector.corrupt_buffer(r, b) for r, b in zip(active, buffers)
                    ]
                combined = _combine(proto, buffers)
                stats.record(type(proto).__name__.lower(), _nbytes(buffers[0]))
                for r in active:
                    send_values[r] = combined
            if injector is not None:
                injector.advance_step()
    finally:
        for gen in gens:
            _close_quietly(gen)
    return results, stats
