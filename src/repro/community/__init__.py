"""Community-based influence maximization (the paper's future-work §ii).

The paper's related work surveys approaches that exploit community
structure (Wang et al., Chen et al., Halappanavar et al.) and lists
"exploitation of ... input properties such as communities" as future
work, while noting the known weakness: *"A major shortcoming of these
methods is the inability to include the effects of inter-community
edges since the subgraphs are disjoint."*

This subpackage implements the approach so the trade-off is measurable:

* :func:`label_propagation` — the standard near-linear-time community
  detector used as preprocessing by those methods;
* :func:`community_imm` — Halappanavar-et-al.-style decomposition:
  detect communities, allocate the seed budget proportionally to
  community size, run IMM independently inside each community, and
  merge the per-community seed sets.

The ablation benchmark (``benchmarks/bench_ablations.py``) compares
spread quality and sampling work against whole-graph IMM: the
decomposition cuts sampling cost but loses the inter-community spread —
exactly the paper's argument for parallelizing exact IMM instead.
"""

from .communityimm import CommunityIMMResult, community_imm
from .labelprop import label_propagation

__all__ = ["label_propagation", "community_imm", "CommunityIMMResult"]
