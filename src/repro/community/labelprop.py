"""Label-propagation community detection (Raghavan et al. 2007).

Near-linear-time and parameter-free — the standard preprocessing choice
of the community-based influence maximization methods the paper
surveys.  The implementation is semi-synchronous: vertices are updated
in a random order per round, each adopting the most frequent label
among its (undirected) neighbors, with ties broken uniformly at random
from the tied labels; the process stops when no label changes or after
``max_rounds``.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..rng import SplitMix64

__all__ = ["label_propagation"]


def label_propagation(
    graph: CSRGraph,
    seed: int = 0,
    max_rounds: int = 50,
) -> np.ndarray:
    """Detect communities; returns a dense label array of length ``n``.

    Labels are renumbered to ``0..num_communities-1`` ordered by first
    appearance.  Deterministic in ``seed``.

    Raises
    ------
    ValueError
        If ``max_rounds`` is not positive.
    """
    if max_rounds < 1:
        raise ValueError("need at least one round")
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(SplitMix64(seed).split(0x1AB).next_u64())
    labels = np.arange(n, dtype=np.int64)
    for _ in range(max_rounds):
        changed = False
        order = rng.permutation(n)
        for v in order:
            nbrs = np.concatenate([graph.out_neighbors(v), graph.in_neighbors(v)])
            if len(nbrs) == 0:
                continue
            nbr_labels = labels[nbrs]
            values, counts = np.unique(nbr_labels, return_counts=True)
            best = values[counts == counts.max()]
            if labels[v] in best:
                continue  # already holds a majority label: stable
            new = best[rng.integers(len(best))] if len(best) > 1 else best[0]
            labels[v] = new
            changed = True
        if not changed:
            break
    # Renumber to dense ids by first appearance.
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
