"""Community-decomposed IMM with proportional seed allocation.

The Halappanavar et al. (2016) recipe the paper cites: partition the
graph into communities, give each community a share of the seed budget
proportional to its size, and mine seeds inside each community
independently.  Embarrassingly parallel across communities and much
cheaper than whole-graph IMM — at the cost of ignoring inter-community
influence (the shortcoming the paper calls out and this module lets
benchmarks quantify).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..graph.subgraph import induced_subgraph
from ..imm import imm
from .labelprop import label_propagation

__all__ = ["community_imm", "CommunityIMMResult"]


@dataclass
class CommunityIMMResult:
    """Output of :func:`community_imm`.

    ``seeds`` holds original-graph vertex ids; ``allocation`` maps each
    used community label to its seed share; ``edges_examined`` sums the
    per-community sampling work (the cost advantage over whole-graph
    IMM that the quality comparison must be weighed against).
    """

    seeds: np.ndarray
    labels: np.ndarray
    allocation: dict[int, int] = field(default_factory=dict)
    num_communities: int = 0
    edges_examined: int = 0


def _allocate_budget(sizes: np.ndarray, k: int) -> np.ndarray:
    """Largest-remainder proportional allocation, capped by community
    size, guaranteed to sum to ``k`` when ``k <= sizes.sum()``."""
    n = int(sizes.sum())
    quotas = sizes * (k / n)
    alloc = np.floor(quotas).astype(np.int64)
    alloc = np.minimum(alloc, sizes)
    remainder = k - int(alloc.sum())
    if remainder > 0:
        # hand out leftovers by largest fractional part, capacity allowing
        frac_order = np.argsort(-(quotas - np.floor(quotas)))
        for idx in list(frac_order) + list(np.argsort(-sizes)):
            if remainder == 0:
                break
            if alloc[idx] < sizes[idx]:
                alloc[idx] += 1
                remainder -= 1
    return alloc


def community_imm(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    *,
    labels: np.ndarray | None = None,
    min_community: int = 3,
    theta_cap: int | None = None,
) -> CommunityIMMResult:
    """Run IMM independently per community and merge the seed sets.

    Parameters
    ----------
    graph, k, eps, model, seed, theta_cap:
        As in :func:`repro.imm.imm`.
    labels:
        Precomputed community labels (default: label propagation with
        the same ``seed``).
    min_community:
        Communities smaller than this are pooled into a single
        rest-bucket (tiny fragments cannot usefully run IMM).

    Raises
    ------
    ValueError
        If ``k`` exceeds the number of vertices.
    """
    model = DiffusionModel.parse(model)
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    if labels is None:
        labels = label_propagation(graph, seed=seed)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n,):
        raise ValueError("labels must assign one community per vertex")

    # Pool tiny communities into one bucket.
    values, counts = np.unique(labels, return_counts=True)
    pooled = labels.copy()
    bucket = int(values.max()) + 1
    for value, count in zip(values, counts):
        if count < min_community:
            pooled[labels == value] = bucket
    values, counts = np.unique(pooled, return_counts=True)

    alloc = _allocate_budget(counts.astype(np.int64), k)
    seeds_parts: list[np.ndarray] = []
    allocation: dict[int, int] = {}
    edges = 0
    for value, size, share in zip(values, counts, alloc):
        if share == 0:
            continue
        members = np.flatnonzero(pooled == value)
        allocation[int(value)] = int(share)
        if share >= size or size < min_community:
            # Degenerate: take the highest-degree members directly.
            sub, mapping = induced_subgraph(graph, members)
            deg = np.diff(sub.out_indptr)
            order = np.argsort(-deg, kind="stable")[:share]
            seeds_parts.append(mapping[order])
            continue
        sub, mapping = induced_subgraph(graph, members)
        result = imm(
            sub, k=int(share), eps=eps, model=model, seed=seed, theta_cap=theta_cap
        )
        edges += result.counters.edges_examined
        seeds_parts.append(mapping[result.seeds])
    seeds = np.concatenate(seeds_parts)[:k]
    return CommunityIMMResult(
        seeds=seeds,
        labels=pooled,
        allocation=allocation,
        num_communities=len(values),
        edges_examined=edges,
    )
