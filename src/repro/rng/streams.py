"""Stream-partitioning helpers shared by the parallel samplers.

Two idioms are supported, mirroring the two parallel implementations in
the paper:

* :func:`spawn_streams` — TRNG-style **leap-frog** decomposition of one
  LCG master stream into ``p`` rank streams (Section 3.2 of the paper).
* :func:`sample_stream` — per-sample counter-based streams keyed by the
  global sample index.  This is the stronger reproducibility discipline
  used by the rest of this library: the RRR set with global index ``j``
  is identical no matter which rank computes it, so seed sets do not
  change with the processor count (verified by the test suite).
"""

from __future__ import annotations

from .lcg import Lcg64
from .splitmix import SplitMix64

__all__ = ["spawn_streams", "sample_stream"]


def spawn_streams(seed: int, size: int) -> list[Lcg64]:
    """Split one LCG sequence into ``size`` leap-frog substreams.

    Rank ``i``'s stream produces elements ``i, i+size, i+2*size, ...`` of
    the master sequence seeded with ``seed``; together the substreams are
    a disjoint cover of the serial stream, preserving the approximation
    guarantees of the randomized algorithm under parallel execution.
    """
    if size <= 0:
        raise ValueError(f"need at least one stream, got {size}")
    master = Lcg64(seed)
    return [master.leapfrog(rank, size) for rank in range(size)]


def sample_stream(seed: int, sample_index: int) -> SplitMix64:
    """Return the dedicated stream for the RRR sample ``sample_index``.

    A pure function of ``(seed, sample_index)``: parallel schedule,
    batching and rank count cannot change which random numbers a given
    sample consumes.
    """
    if sample_index < 0:
        raise ValueError(f"sample index must be non-negative, got {sample_index}")
    return SplitMix64(seed).split(sample_index)
