"""Stream-partitioning helpers shared by the parallel samplers.

Two idioms are supported, mirroring the two parallel implementations in
the paper:

* :func:`spawn_streams` — TRNG-style **leap-frog** decomposition of one
  LCG master stream into ``p`` rank streams (Section 3.2 of the paper).
* :func:`sample_stream` — per-sample counter-based streams keyed by the
  global sample index.  This is the stronger reproducibility discipline
  used by the rest of this library: the RRR set with global index ``j``
  is identical no matter which rank computes it, so seed sets do not
  change with the processor count (verified by the test suite).

Spawn-safety helpers
--------------------
Counter-addressed streams are what make *process*-level parallelism safe:
a worker spawned in a fresh interpreter reconstructs sample ``j``'s
stream from ``(seed, j)`` alone — no RNG state crosses the process
boundary, so ``fork`` and ``spawn`` start methods are bit-equivalent.
:func:`stream_seeds_array` is the vectorized form of that identity and
:func:`stream_checksum` folds a block of it into one integer: the
process-pool sampling engine has each worker return the checksum of the
global indices it actually sampled, and the parent rejects the block if
it disagrees with the checksum of the indices it sent — catching
off-by-block stream-addressing bugs (a worker silently sampling local
``[0, hi-lo)`` instead of global ``[lo, hi)``) at the protocol layer.
"""

from __future__ import annotations

import numpy as np

from .lcg import Lcg64
from .splitmix import SplitMix64, mix64_array

__all__ = [
    "spawn_streams",
    "sample_stream",
    "stream_seeds_array",
    "stream_checksum",
    "fold_stream_seeds",
]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M64 = (1 << 64) - 1


def spawn_streams(seed: int, size: int) -> list[Lcg64]:
    """Split one LCG sequence into ``size`` leap-frog substreams.

    Rank ``i``'s stream produces elements ``i, i+size, i+2*size, ...`` of
    the master sequence seeded with ``seed``; together the substreams are
    a disjoint cover of the serial stream, preserving the approximation
    guarantees of the randomized algorithm under parallel execution.
    """
    if size <= 0:
        raise ValueError(f"need at least one stream, got {size}")
    master = Lcg64(seed)
    return [master.leapfrog(rank, size) for rank in range(size)]


def sample_stream(seed: int, sample_index: int) -> SplitMix64:
    """Return the dedicated stream for the RRR sample ``sample_index``.

    A pure function of ``(seed, sample_index)``: parallel schedule,
    batching and rank count cannot change which random numbers a given
    sample consumes.
    """
    if sample_index < 0:
        raise ValueError(f"sample index must be non-negative, got {sample_index}")
    return SplitMix64(seed).split(sample_index)


def stream_seeds_array(seed: int, sample_indices: np.ndarray) -> np.ndarray:
    """Vectorized ``sample_stream(seed, j).seed`` for an index array.

    Reproduces ``SplitMix64(seed).split(j)`` — the per-sample stream
    identity — as one ufunc expression, bit-equal to the scalar path.
    Pure function of its arguments, so any process (however started)
    computes the same values.
    """
    j = np.asarray(sample_indices, dtype=np.uint64)
    return mix64_array(np.uint64(seed & _M64) ^ mix64_array((j + np.uint64(1)) * _GAMMA))


def fold_stream_seeds(seeds: np.ndarray) -> int:
    """Fold precomputed per-sample stream seeds into one checksum.

    The batched half of the engine's checksum handshake: the parent
    derives *all* of a run's stream seeds with one
    :func:`stream_seeds_array` pass and folds each block's slice here —
    bit-equal to :func:`stream_checksum` over that block's indices, with
    no per-block remixing.
    """
    folded = int(np.bitwise_xor.reduce(seeds)) if len(seeds) else 0
    return folded ^ ((len(seeds) * 0x9E3779B97F4A7C15) & _M64)


def stream_checksum(seed: int, sample_indices: np.ndarray) -> int:
    """Order-free fingerprint of a block's stream identities.

    XOR-fold of the block's per-sample stream seeds, mixed with the
    block length.  Two processes agree on the checksum iff they agree on
    the *set* of global sample indices (and the master seed) — the
    cross-process handshake the parallel sampling engine uses to verify
    a worker sampled the indices it was sent.
    """
    return fold_stream_seeds(stream_seeds_array(seed, sample_indices))
