"""64-bit linear congruential generator with leap-frog stream splitting.

The recurrence is ``s[j+1] = (a * s[j] + c) mod 2**64``.  Composing the
affine map ``x -> a*x + c`` with itself ``t`` times yields another affine
map ``x -> A*x + C`` with

    A = a**t  (mod 2**64)
    C = c * (a**(t-1) + ... + a + 1)  (mod 2**64)

which is the basis both for O(log t) jump-ahead and for the leap-frog
decomposition used by the paper's distributed sampler: rank *i* of *p*
starts from the state advanced ``i`` steps and then iterates the
``t = p``-fold composed map, so it produces exactly the elements
``i, i+p, i+2p, ...`` of the master sequence (Bauke & Mertens 2006).

Batch generation is vectorized with NumPy: from the closed form

    s[j] = A_j * s0 + C_j,   A_j = a**j,  C_j = c * sum_{i<j} a**i

the per-element constants ``A_j`` are a cumulative product and ``C_j`` a
cumulative affine sum, both computed with wrap-around ``uint64``
arithmetic, so drawing a block of N variates costs O(N) NumPy work with
no Python-level loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Lcg64", "LCG64_DEFAULT_A", "LCG64_DEFAULT_C", "lcg_affine_power"]

#: Knuth's MMIX multiplier / increment, a full-period choice mod 2**64.
LCG64_DEFAULT_A = 6364136223846793005
LCG64_DEFAULT_C = 1442695040888963407

_M64 = (1 << 64) - 1
_INV_2_53 = 1.0 / float(1 << 53)


def lcg_affine_power(a: int, c: int, t: int) -> tuple[int, int]:
    """Return ``(A, C)`` such that t applications of ``x -> a x + c`` equal
    one application of ``x -> A x + C`` (mod 2**64).

    Runs in O(log t) using the standard square-and-multiply recurrence on
    affine maps.  ``t = 0`` yields the identity ``(1, 0)``.
    """
    if t < 0:
        raise ValueError(f"affine power requires t >= 0, got {t}")
    A, C = 1, 0
    base_a, base_c = a & _M64, c & _M64
    while t > 0:
        if t & 1:
            # (A, C) := (base_a, base_c) ∘ (A, C)
            A, C = (base_a * A) & _M64, (base_a * C + base_c) & _M64
        # (base) := (base) ∘ (base)
        base_c = (base_a * base_c + base_c) & _M64
        base_a = (base_a * base_a) & _M64
        t >>= 1
    return A, C


class Lcg64:
    """A 64-bit LCG stream with jump-ahead and leap-frog substreams.

    Parameters
    ----------
    seed:
        Initial state.  Any Python int; reduced mod 2**64.
    a, c:
        Multiplier and increment of the *stride-1 master sequence*.  The
        defaults are Knuth's MMIX constants (full period mod 2**64).

    Notes
    -----
    Instances created through :meth:`leapfrog` keep a reference to the
    master ``(a, c)`` pair, so further splitting always refers back to the
    master sequence stride (matching TRNG semantics, where ``split`` is
    applied once per rank on identical generator objects).
    """

    __slots__ = ("_a", "_c", "_state", "_master_a", "_master_c", "_stride", "_offset")

    def __init__(
        self,
        seed: int = 0x853C49E6748FEA9B,
        a: int = LCG64_DEFAULT_A,
        c: int = LCG64_DEFAULT_C,
    ) -> None:
        self._master_a = a & _M64
        self._master_c = c & _M64
        self._a = self._master_a
        self._c = self._master_c
        self._state = seed & _M64
        self._stride = 1
        self._offset = 0

    # -- construction ---------------------------------------------------

    def leapfrog(self, rank: int, size: int) -> "Lcg64":
        """Return the substream producing elements ``rank, rank+size, ...``
        of this generator's *current* sequence.

        This is the Leap Frog method of TRNG used by the paper's
        distributed sampler: all ``size`` substreams partition the serial
        sequence exactly, which preserves the algorithm's probabilistic
        guarantees under any degree of parallelism.
        """
        if size <= 0:
            raise ValueError(f"leapfrog size must be positive, got {size}")
        if not 0 <= rank < size:
            raise ValueError(f"leapfrog rank must be in [0, {size}), got {rank}")
        child = Lcg64(0, self._master_a, self._master_c)
        child._a, child._c = lcg_affine_power(self._a, self._c, size)
        # The generator outputs *after* advancing, so the child's state
        # must be the pre-image of its first output under the size-fold
        # map: state = inv_size(affine^(rank+1)(parent_state)).  The
        # multiplier of a full-period LCG is odd, hence invertible
        # modulo 2**64.
        skip_a, skip_c = lcg_affine_power(self._a, self._c, rank + 1)
        first_output_state = (skip_a * self._state + skip_c) & _M64
        a_inv = pow(child._a, -1, 1 << 64)
        child._state = (a_inv * (first_output_state - child._c)) & _M64
        child._stride = self._stride * size
        child._offset = self._offset + rank * self._stride
        return child

    def clone(self) -> "Lcg64":
        """Return an independent copy at the same position."""
        child = Lcg64(self._state, self._master_a, self._master_c)
        child._a, child._c = self._a, self._c
        child._stride = self._stride
        child._offset = self._offset
        return child

    # -- state inspection ------------------------------------------------

    @property
    def state(self) -> int:
        """The state that will produce the next output."""
        return self._state

    @property
    def stride(self) -> int:
        """Distance between consecutive outputs in the master sequence."""
        return self._stride

    @property
    def offset(self) -> int:
        """Master-sequence index of the next output."""
        return self._offset

    # -- scalar generation ------------------------------------------------

    def next_u64(self) -> int:
        """Advance one step and return the new 64-bit state as the output."""
        self._state = (self._a * self._state + self._c) & _M64
        self._offset += self._stride
        return self._state

    def random(self) -> float:
        """One uniform float in ``[0, 1)`` from the top 53 state bits."""
        return (self.next_u64() >> 11) * _INV_2_53

    def randint(self, lo: int, hi: int) -> int:
        """One integer uniform over ``[lo, hi)`` (bias ~2**-64, standard
        for Monte-Carlo use; the paper's sampler draws source vertices the
        same way)."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        return lo + self.next_u64() % (hi - lo)

    def jump(self, t: int) -> None:
        """Skip ``t`` outputs in O(log t)."""
        if t < 0:
            raise ValueError("cannot jump backwards")
        A, C = lcg_affine_power(self._a, self._c, t)
        self._state = (A * self._state + C) & _M64
        self._offset += t * self._stride

    # -- vectorized generation --------------------------------------------

    def next_u64_block(self, n: int) -> np.ndarray:
        """Return the next ``n`` raw outputs as a ``uint64`` array.

        Uses the closed-form affine expansion so the whole block is
        produced by cumulative ``uint64`` products/sums (wrap-around
        arithmetic), avoiding a Python-level loop.
        """
        if n < 0:
            raise ValueError("block size must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        a = np.uint64(self._a)
        c = np.uint64(self._c)
        # NumPy unsigned arithmetic wraps mod 2**64 silently, which is
        # exactly the ring the recurrence lives in.
        # powers[j] = a**(j+1); geometric[j] = sum_{i<=j} a**i
        powers = np.multiply.accumulate(np.full(n, a, dtype=np.uint64))
        geom = np.empty(n, dtype=np.uint64)
        geom[0] = np.uint64(1)
        if n > 1:
            geom[1:] = powers[:-1]
        geom = np.add.accumulate(geom)
        out = powers * np.uint64(self._state) + geom * c
        self._state = int(out[-1])
        self._offset += n * self._stride
        return out

    def random_block(self, n: int) -> np.ndarray:
        """Return ``n`` uniforms in ``[0, 1)`` as a ``float64`` array."""
        raw = self.next_u64_block(n)
        return (raw >> np.uint64(11)).astype(np.float64) * _INV_2_53

    def randint_block(self, lo: int, hi: int, n: int) -> np.ndarray:
        """Return ``n`` integers uniform over ``[lo, hi)`` as ``int64``."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        raw = self.next_u64_block(n)
        span = np.uint64(hi - lo)
        return (raw % span).astype(np.int64) + lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lcg64(state={self._state:#x}, stride={self._stride}, "
            f"offset={self._offset})"
        )
