"""Pseudo-random number generation substrate.

The distributed IMM implementation in the paper (Section 3.2) relies on
splitting a single linear congruential generator (LCG) sequence across MPI
ranks with the *leap-frog* method, following Bauke & Mertens (TRNG).  This
subpackage provides:

``Lcg64``
    A 64-bit LCG with O(log n) jump-ahead and exact leap-frog substreams.
    Substream *i* of *p* produces elements ``i, i+p, i+2p, ...`` of the
    parent sequence, so the union of all substreams is exactly the serial
    sequence (a property the test suite verifies).

``SplitMix64``
    A counter-based splittable generator used for seeding and for
    per-sample streams: sample *j* of a run always sees the same stream no
    matter which rank or thread generates it, which makes parallel runs
    bit-reproducible and independent of the degree of parallelism.

``sample_stream`` / ``spawn_streams``
    Convenience helpers that derive independent child streams from a
    master seed.
"""

from .lcg import LCG64_DEFAULT_A, LCG64_DEFAULT_C, Lcg64, lcg_affine_power
from .splitmix import SplitMix64, mix64
from .streams import sample_stream, spawn_streams, stream_checksum, stream_seeds_array

__all__ = [
    "Lcg64",
    "LCG64_DEFAULT_A",
    "LCG64_DEFAULT_C",
    "lcg_affine_power",
    "SplitMix64",
    "mix64",
    "sample_stream",
    "spawn_streams",
    "stream_checksum",
    "stream_seeds_array",
]
