"""SplitMix64: a counter-based, splittable pseudo-random stream.

Unlike the LCG (whose state must be iterated), SplitMix64 output ``j`` is a
pure function ``mix64(seed + (j+1) * GAMMA)`` of the counter ``j``.  Two
properties make it the right tool for parallel sampling substrates:

* **Random access** — any output can be computed directly, so a block of
  N variates is one vectorized NumPy expression.
* **Splittability** — deriving a child seed from ``(seed, key)`` gives an
  (empirically) independent stream per key.  We use this to give every
  RRR-set sample its own stream keyed by the *global sample index*, which
  makes the output of the multithreaded and distributed IMM
  implementations bit-identical to the sequential one regardless of how
  samples are assigned to ranks.

Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
generators" (OOPSLA 2014).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SplitMix64", "mix64", "mix64_array"]

_M64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15  # 2**64 / golden ratio
_INV_2_53 = 1.0 / float(1 << 53)


def mix64(z: int) -> int:
    """Finalization mix of SplitMix64 (variant of MurmurHash3 fmix64)."""
    z &= _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & _M64


def mix64_array(z: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix64` over a ``uint64`` array.

    NumPy integer arithmetic wraps silently (no errstate needed — the
    overflow machinery only concerns floats), so this is pure ufunc
    work; it sits on the sampler's hot path.
    """
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class SplitMix64:
    """Counter-based uniform stream with O(1) skip and cheap splitting.

    Parameters
    ----------
    seed:
        Stream identity.  Streams with different seeds are independent for
        Monte-Carlo purposes.

    The instance keeps only a counter, so :meth:`clone`, :meth:`jump` and
    pickling are trivial.
    """

    __slots__ = ("_seed", "_counter")

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed & _M64
        self._counter = 0

    # -- splitting ---------------------------------------------------------

    def split(self, key: int) -> "SplitMix64":
        """Derive an independent child stream for ``key``.

        The child seed is a mix of the parent seed and the key, so
        ``split`` is deterministic and order-independent — exactly what a
        work-stealing or block-partitioned sampler needs.
        """
        return SplitMix64(mix64(self._seed ^ mix64((key + 1) * _GAMMA)))

    def clone(self) -> "SplitMix64":
        child = SplitMix64(0)
        child._seed = self._seed
        child._counter = self._counter
        return child

    @property
    def counter(self) -> int:
        return self._counter

    @property
    def seed(self) -> int:
        return self._seed

    def jump(self, t: int) -> None:
        """Skip ``t`` outputs (O(1): just moves the counter)."""
        if t < 0:
            raise ValueError("cannot jump backwards")
        self._counter += t

    # -- generation --------------------------------------------------------

    def next_u64(self) -> int:
        self._counter += 1
        return mix64((self._seed + self._counter * _GAMMA) & _M64)

    def random(self) -> float:
        return (self.next_u64() >> 11) * _INV_2_53

    def randint(self, lo: int, hi: int) -> int:
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        return lo + self.next_u64() % (hi - lo)

    def next_u64_block(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("block size must be non-negative")
        idx = np.arange(self._counter + 1, self._counter + n + 1, dtype=np.uint64)
        self._counter += n
        z = np.uint64(self._seed) + idx * np.uint64(_GAMMA)
        return mix64_array(z)

    def random_block(self, n: int) -> np.ndarray:
        raw = self.next_u64_block(n)
        return (raw >> np.uint64(11)).astype(np.float64) * _INV_2_53

    def randint_block(self, lo: int, hi: int, n: int) -> np.ndarray:
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        raw = self.next_u64_block(n)
        return (raw % np.uint64(hi - lo)).astype(np.int64) + lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplitMix64(seed={self._seed:#x}, counter={self._counter})"
