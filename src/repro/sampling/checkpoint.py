"""Disk-backed block checkpointing for the supervised sampling engine.

The determinism contract makes sampling checkpoints almost free to
*describe* — sample ``j`` is a pure function of ``(graph, model, seed,
j)`` — but re-deriving a million landed samples after a process kill
still costs the full sampling time.  This sink therefore spills the
landed prefix itself, so a restarted run reloads bytes instead of
re-traversing the graph:

``run_dir/``
    ``MANIFEST.json``
        Format version plus the run identity ``(n, model, seed)``; a
        checkpoint is only valid against the job that wrote it.
    ``cursor.json``
        The landed-block cursor: how many samples (and flat entries)
        are durably on disk, plus the XOR-folded stream checksum of the
        landed index range (the same fingerprint the engine's worker
        handshake uses).  Written atomically (tmp + fsync + rename) so
        a kill mid-write leaves the previous cursor intact.
    ``flat.i32.bin`` / ``sizes.i64.bin`` / ``edges.i64.bin``
        The spilled collection: append-only raw buffers holding the
        flattened vertex lists, per-sample sizes, and per-sample
        examined-edge meters.  Appends are fsync'd *before* the cursor
        moves, so the cursor never points past durable data; a torn
        tail beyond the cursor is simply ignored on resume.

Every write follows write-ahead discipline (data, fsync, cursor,
fsync), which is what makes ``resume_from=`` safe against SIGKILL at
any instant: the reloaded prefix is exactly the samples the cursor
certifies, bit-identical to what a fault-free run would have produced
for the same indices.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from ..rng.streams import stream_seeds_array

__all__ = ["BlockCheckpointSink", "CheckpointError", "FORMAT_VERSION"]

FORMAT_VERSION = 1
_MANIFEST = "MANIFEST.json"
_CURSOR = "cursor.json"
_FLAT = "flat.i32.bin"
_SIZES = "sizes.i64.bin"
_EDGES = "edges.i64.bin"
_GAMMA = 0x9E3779B97F4A7C15
_M64 = (1 << 64) - 1


class CheckpointError(RuntimeError):
    """A checkpoint directory is unreadable, torn beyond repair, or
    belongs to a different job."""


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fold(seed: int, indices: np.ndarray) -> int:
    """XOR-fold of the per-sample stream seeds (no length mixing).

    The associative/commutative core of
    :func:`repro.rng.streams.stream_checksum`, kept incremental here so
    the cursor update is O(block) instead of O(landed).
    """
    seeds = stream_seeds_array(seed, indices)
    return int(np.bitwise_xor.reduce(seeds)) if len(seeds) else 0


class BlockCheckpointSink:
    """Append-only spill of landed sample blocks under one run directory.

    Opening a directory that already holds a valid manifest *continues*
    it (the resume path); an empty or missing directory is initialized
    fresh.  The identity triple ``(n, model, seed)`` must match on
    continuation — everything the spilled bytes mean depends on it.
    """

    def __init__(
        self,
        run_dir: str | Path,
        *,
        n: int,
        model: str,
        seed: int,
        readonly: bool = False,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.n = int(n)
        self.model = str(model)
        self.seed = int(seed)
        self.readonly = readonly
        self._closed = False
        self._files: dict[str, object] = {}
        self.landed = 0
        self.entries = 0
        self._folded = 0
        #: wall seconds spent inside durable writes (fsync included).
        self.write_seconds = 0.0
        self.bytes_written = 0

        manifest_path = self.run_dir / _MANIFEST
        if manifest_path.exists():
            self._load_existing(manifest_path)
        elif readonly:
            raise CheckpointError(f"no checkpoint manifest under {self.run_dir}")
        else:
            self._init_fresh()
        if not readonly:
            self._open_appenders()

    # -- construction ------------------------------------------------------

    def _init_fresh(self) -> None:
        self.run_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": "repro-block-checkpoint",
            "version": FORMAT_VERSION,
            "n": self.n,
            "model": self.model,
            "seed": self.seed,
            "created_unix": time.time(),
        }
        self._write_atomic(_MANIFEST, json.dumps(manifest, indent=2))
        for name in (_FLAT, _SIZES, _EDGES):
            (self.run_dir / name).touch()
        self._write_cursor()

    def _load_existing(self, manifest_path: Path) -> None:
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable manifest {manifest_path}: {exc}") from exc
        if manifest.get("format") != "repro-block-checkpoint":
            raise CheckpointError(f"{manifest_path} is not a block checkpoint")
        if manifest.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{manifest.get('version')} != "
                f"supported v{FORMAT_VERSION}"
            )
        identity = {
            "n": (manifest.get("n"), self.n),
            "model": (manifest.get("model"), self.model),
            "seed": (manifest.get("seed"), self.seed),
        }
        mismatched = {k: v for k, v in identity.items() if v[0] != v[1]}
        if mismatched:
            detail = ", ".join(
                f"{k}: checkpoint={a!r} vs job={b!r}"
                for k, (a, b) in sorted(mismatched.items())
            )
            raise CheckpointError(f"checkpoint belongs to a different job ({detail})")
        cursor_path = self.run_dir / _CURSOR
        if not cursor_path.exists():
            raise CheckpointError(f"checkpoint has no cursor file: {cursor_path}")
        try:
            cursor = json.loads(cursor_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable cursor {cursor_path}: {exc}") from exc
        self.landed = int(cursor["landed"])
        self.entries = int(cursor["entries"])
        expected = _fold(self.seed, np.arange(self.landed, dtype=np.int64))
        if int(cursor["stream_fold"]) != expected:
            raise CheckpointError(
                "cursor stream fingerprint disagrees with the landed range — "
                "the checkpoint was written with a different seed or indices"
            )
        self._folded = expected
        # Durable byte floors the data files must reach (torn tails beyond
        # them are fine — the cursor never certified those bytes).
        for name, need in ((_FLAT, self.entries * 4), (_SIZES, self.landed * 8),
                           (_EDGES, self.landed * 8)):
            have = (self.run_dir / name).stat().st_size if (self.run_dir / name).exists() else -1
            if have < need:
                raise CheckpointError(
                    f"{name} holds {have} bytes, cursor certifies {need} — "
                    "checkpoint is torn below its own cursor"
                )

    def _open_appenders(self) -> None:
        for name in (_FLAT, _SIZES, _EDGES):
            path = self.run_dir / name
            fh = open(path, "r+b")
            # Truncate any torn tail so appends continue from certified bytes.
            need = {
                _FLAT: self.entries * 4,
                _SIZES: self.landed * 8,
                _EDGES: self.landed * 8,
            }[name]
            fh.truncate(need)
            fh.seek(need)
            self._files[name] = fh

    # -- durable writes ----------------------------------------------------

    def _write_atomic(self, name: str, text: str) -> None:
        tmp = self.run_dir / (name + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.run_dir / name)
        _fsync_dir(self.run_dir)

    def _write_cursor(self) -> None:
        self._write_atomic(
            _CURSOR,
            json.dumps(
                {
                    "landed": self.landed,
                    "entries": self.entries,
                    "stream_fold": self._folded,
                }
            ),
        )

    def append_block(
        self,
        indices: np.ndarray,
        flat: np.ndarray,
        sizes: np.ndarray,
        edges: np.ndarray,
    ) -> None:
        """Durably spill one landed block and advance the cursor.

        ``indices`` are the global sample indices the block covers; they
        must extend the landed prefix contiguously (the supervisor lands
        blocks in index order, so this is the natural call pattern).
        """
        if self.readonly or self._closed:
            raise CheckpointError("sink is closed or read-only")
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return
        if int(indices[0]) != self.landed:
            raise CheckpointError(
                f"non-contiguous spill: block starts at {int(indices[0])}, "
                f"cursor is at {self.landed}"
            )
        t0 = time.perf_counter()
        payloads = (
            (_FLAT, np.ascontiguousarray(flat, dtype=np.int32)),
            (_SIZES, np.ascontiguousarray(sizes, dtype=np.int64)),
            (_EDGES, np.ascontiguousarray(edges, dtype=np.int64)),
        )
        for name, arr in payloads:
            fh = self._files[name]
            fh.write(arr.tobytes())
            fh.flush()
            os.fsync(fh.fileno())
            self.bytes_written += arr.nbytes
        self.landed += len(indices)
        self.entries += int(len(flat))
        self._folded ^= _fold(self.seed, indices)
        self._write_cursor()
        self.write_seconds += time.perf_counter() - t0

    # -- resume reads ------------------------------------------------------

    def load_range(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reload the spilled samples with global indices ``[lo, hi)``.

        Returns ``(flat, sizes, edges)`` exactly as the workers produced
        them; ``hi`` must not exceed the certified cursor.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.landed:
            raise CheckpointError(
                f"requested [{lo}, {hi}) outside the certified prefix "
                f"[0, {self.landed})"
            )
        sizes_all = np.fromfile(
            self.run_dir / _SIZES, dtype=np.int64, count=self.landed
        )
        if len(sizes_all) != self.landed:
            raise CheckpointError(
                f"{_SIZES} short read: got {len(sizes_all)} of "
                f"{self.landed} certified sample sizes"
            )
        offsets = np.zeros(self.landed + 1, dtype=np.int64)
        np.cumsum(sizes_all, out=offsets[1:])
        # A bare fh.read(n) may legally return fewer than n bytes, and
        # np.frombuffer would then silently hand back a truncated array
        # that corrupts the resumed prefix; np.fromfile with count= plus
        # an explicit element-count check turns the same condition into a
        # hard CheckpointError.
        want_flat = int(offsets[hi] - offsets[lo])
        with open(self.run_dir / _FLAT, "rb") as fh:
            fh.seek(int(offsets[lo]) * 4)
            flat = np.fromfile(fh, dtype=np.int32, count=want_flat)
        if len(flat) != want_flat:
            raise CheckpointError(
                f"{_FLAT} short read: got {len(flat)} of {want_flat} "
                f"entries for samples [{lo}, {hi}) — the spill is torn "
                "below its own cursor"
            )
        with open(self.run_dir / _EDGES, "rb") as fh:
            fh.seek(lo * 8)
            edges = np.fromfile(fh, dtype=np.int64, count=hi - lo)
        if len(edges) != hi - lo:
            raise CheckpointError(
                f"{_EDGES} short read: got {len(edges)} of {hi - lo} "
                f"edge meters for samples [{lo}, {hi})"
            )
        return flat, sizes_all[lo:hi].copy(), edges

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync, and drop temporaries (idempotent).

        The run directory itself survives — it is the resume vehicle;
        only in-flight temporaries are cleaned away.
        """
        if self._closed:
            return
        self._closed = True
        for fh in self._files.values():
            try:
                fh.flush()
                os.fsync(fh.fileno())
                fh.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._files = {}
        removed = False
        for name in (_MANIFEST, _CURSOR):
            tmp = self.run_dir / (name + ".tmp")
            if tmp.exists():
                tmp.unlink()
                removed = True
        if removed:
            # The unlink itself is a directory mutation: without a
            # directory fsync a crash right after close() can resurrect
            # the stale .tmp next to the real file on some filesystems.
            try:
                _fsync_dir(self.run_dir)
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "BlockCheckpointSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
