"""Batched cohort RRR sampling: many reverse traversals fused into one.

The serial :class:`~repro.sampling.rrr.RRRSampler` pays full NumPy
dispatch overhead per BFS level of *one* sample, on frontiers that are
often 1–10 vertices — the interpreter, not the hardware, sets the pace.
This module generates a whole **cohort** of ``B`` RRR sets
simultaneously:

* **IC** — a multi-source level-synchronous reverse BFS over
  ``(sample, vertex)`` pair arrays.  All samples of the cohort advance
  one level per iteration, so every NumPy kernel operates on the union
  of all frontiers and per-level overhead is amortized across the
  cohort (the gIM-style fused-traversal idea, here on a NumPy
  substrate).
* **LT** — all ``B`` reverse random walks step in lockstep, with the
  per-vertex pick done by a vectorized first-above-threshold search
  over precomputed local cumulative weights.

Determinism contract
--------------------
The RRR set with global index ``j`` is a pure function of
``(graph, model, seed, j, edge_flip)`` — independent of cohort size,
cohort composition, and traversal interleaving — and **bit-identical**
to what the serial sampler produces for the same sample:

* ``edge_flip="hash"`` (IC only): coins come from
  :func:`~repro.sampling.rrr.hash_edge_flips`, keyed on
  ``(sample key, edge slot)``; they are order-free by construction.
* ``edge_flip="stream"`` (the default): the serial sampler draws sample
  ``j``'s coins *sequentially* from ``sample_stream(seed, j)``.  Because
  SplitMix64 is counter-based, output ``c`` of that stream is the pure
  function ``mix64(seed_j + c·γ)`` — so the cohort sampler reproduces
  the serial consumption by *bookkeeping* instead of iteration: it
  tracks each sample's stream counter and computes every coin at its
  exact serial position.  The only requirement is reproducing the
  serial coin **order**, which is fixed by two invariants the fused
  traversal maintains: each sample's frontier is sorted by vertex id at
  every level (the serial ``np.unique``), and a frontier vertex's
  in-edges are examined in CSR slot order.
* **LT**: each step consumes one variate from the sample's stream; the
  batched walker computes it at the same counter position.  Both
  samplers pick the live edge against the *same* precomputed per-vertex
  cumulative weights (:func:`~repro.sampling.rrr.in_edge_cumweights`,
  bit-equal to the per-visit ``np.cumsum`` it replaces), so the float
  comparisons agree exactly.

Work metering is preserved: the fused traversal still attributes every
examined in-edge to its owning sample (``per-sample edge counts``), so
the parallel cost models see the identical work distribution the serial
loop reported.

Visited tracking uses one flat epoch-stamped array over ``(sample,
vertex)`` keys (``key = sample·n + vertex``), allocated once per
sampler and reused across cohorts — the same O(traversal) scratch
discipline as the serial sampler, extended to the cohort dimension.
"""

from __future__ import annotations

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..rng.splitmix import mix64_array
from ..rng.streams import stream_seeds_array
from .collection import RRRCollection
from .rrr import in_edge_cumweights

__all__ = ["BatchedRRRSampler", "stream_seeds", "stream_coins"]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_INV_2_53 = 1.0 / float(1 << 53)
_M64 = (1 << 64) - 1

#: Soft cap on visited-scratch entries (``cohort × n``).  The default
#: cohort size keeps the int32 epoch array around 2 MiB: the visited
#: probes are random accesses into it, and cohort sweeps across the
#: dataset registry put the throughput knee right where the scratch
#: falls out of L2-sized cache (larger cohorts amortize dispatch a bit
#: more but lose more to mark-probe misses and bigger key sorts).
_SCRATCH_ENTRY_BUDGET = 1 << 19


def _mix64_into(z: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """:func:`~repro.rng.splitmix.mix64_array` computed in place.

    ``z`` is overwritten with its mix, ``tmp`` is same-shaped scratch;
    no temporaries are allocated — the allocation-free variant the IC
    hot loop uses on edge-sized buffers.
    """
    np.right_shift(z, np.uint64(30), out=tmp)
    np.bitwise_xor(z, tmp, out=z)
    np.multiply(z, np.uint64(0xBF58476D1CE4E5B9), out=z)
    np.right_shift(z, np.uint64(27), out=tmp)
    np.bitwise_xor(z, tmp, out=z)
    np.multiply(z, np.uint64(0x94D049BB133111EB), out=z)
    np.right_shift(z, np.uint64(31), out=tmp)
    np.bitwise_xor(z, tmp, out=z)
    return z


def _key_dtype(B: int, n: int) -> type:
    """Dtype for ``(sample, vertex)`` keys: ``sample·n + vertex < B·n``.

    The key arrays carry the cohort's sort, dedup and visited-probe
    traffic, so packing them into int32 whenever ``B·n`` fits (always,
    at the default cohort size) roughly halves that bandwidth.
    """
    return np.int32 if B * max(n, 1) <= np.iinfo(np.int32).max else np.int64


def stream_seeds(seed: int, sample_indices: np.ndarray) -> np.ndarray:
    """Vectorized ``sample_stream(seed, j).seed`` for an index array.

    Alias of :func:`repro.rng.streams.stream_seeds_array`, kept here for
    the cohort kernel's callers; the identity itself lives with the RNG
    substrate so process-pool workers share one definition.
    """
    return stream_seeds_array(seed, sample_indices)


def stream_coins(seeds: np.ndarray, counters: np.ndarray) -> np.ndarray:
    """Output ``counters`` (1-based) of the streams with the given seeds.

    ``SplitMix64.next_u64`` output ``c`` is ``mix64(seed + c·γ)``; this
    computes it for (seed, counter) pairs without touching any stream
    object — the random-access property the cohort sampler exploits.
    """
    return mix64_array(seeds + counters.astype(np.uint64) * _GAMMA)


class BatchedRRRSampler:
    """Cohort ``GenerateRR`` kernel: ``B`` samples per fused traversal.

    Drop-in alternative to :class:`~repro.sampling.rrr.RRRSampler` for
    the batch drivers (``sample_batch`` and everything above it); the
    output is bit-identical under the module's determinism contract.
    Instances hold reusable scratch and are *not* safe for concurrent
    use, mirroring the serial sampler's ownership discipline.

    Parameters
    ----------
    graph, model:
        The input graph and diffusion model.
    max_cohort:
        Largest number of samples fused into one traversal.  Defaults
        to a size that keeps the ``cohort × n`` visited scratch within
        a fixed budget.  Results never depend on it.
    """

    __slots__ = (
        "graph",
        "model",
        "max_cohort",
        "_in_thresh",
        "_thresh_shifted",
        "_lt_cum",
        "_mark",
        "_epoch",
        "_iota",
        "_gamma_ramp",
        "_mix_tmp",
    )

    def __init__(
        self,
        graph: CSRGraph,
        model: DiffusionModel | str,
        *,
        max_cohort: int | None = None,
    ) -> None:
        self.graph = graph
        self.model = DiffusionModel.parse(model)
        if max_cohort is None:
            max_cohort = max(1, min(4096, _SCRATCH_ENTRY_BUDGET // max(graph.n, 1)))
        if max_cohort < 1:
            raise ValueError("max_cohort must be positive")
        self.max_cohort = max_cohort
        # Same integer acceptance thresholds as the serial sampler (see
        # RRRSampler.__init__): exact equivalent of the float compare.
        self._in_thresh = np.ceil(graph.in_probs * float(1 << 53)).astype(np.uint64)
        # Pre-shifted variant: ``(raw >> 11) < t`` equals ``raw < (t << 11)``
        # exactly (write raw = q·2^11 + r, r < 2^11: q < t iff q·2^11 + r
        # < t·2^11), saving the per-edge shift pass — unless t = 2^53
        # (p = 1.0), where the shift overflows; such graphs use the
        # unshifted compare.
        if bool((self._in_thresh < np.uint64(1 << 53)).all()):
            self._thresh_shifted = self._in_thresh << np.uint64(11)
        else:
            self._thresh_shifted = None
        self._lt_cum: np.ndarray | None = None
        self._mark: np.ndarray | None = None
        self._epoch = -1
        self._iota = np.empty(0, dtype=np.int64)
        self._gamma_ramp = np.empty(0, dtype=np.uint64)
        self._mix_tmp = np.empty(0, dtype=np.uint64)

    # -- public API ----------------------------------------------------------

    def sample_into(
        self,
        collection: RRRCollection,
        sample_indices: np.ndarray,
        seed: int,
        *,
        edge_flip: str = "stream",
    ) -> np.ndarray:
        """Generate the given global sample indices into ``collection``.

        Splits the indices into cohorts of at most ``max_cohort``,
        appends each cohort with one :meth:`RRRCollection.append_batch`
        call, and returns the per-sample edge counts (aligned with
        ``sample_indices``).
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        per_sample = np.empty(len(sample_indices), dtype=np.int64)
        for lo in range(0, len(sample_indices), self.max_cohort):
            chunk = sample_indices[lo : lo + self.max_cohort]
            verts, sizes, edges = self.sample_cohort(chunk, seed, edge_flip=edge_flip)
            collection.append_batch(verts, sizes)
            per_sample[lo : lo + len(chunk)] = edges
        return per_sample

    def sample_cohort(
        self,
        sample_indices: np.ndarray,
        seed: int,
        *,
        edge_flip: str = "stream",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate one cohort and return ``(verts, sizes, edges)``.

        ``verts`` is the concatenation of the cohort's sorted ``int32``
        vertex lists, ``sizes[i]`` the length of sample ``i``'s list and
        ``edges[i]`` its examined-edge count — both aligned with
        ``sample_indices``.
        """
        if edge_flip not in ("stream", "hash"):
            raise ValueError(f"unknown edge_flip mode {edge_flip!r}")
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if len(sample_indices) and int(sample_indices.min()) < 0:
            raise ValueError("sample indices must be non-negative")
        if len(sample_indices) == 0:
            empty64 = np.empty(0, dtype=np.int64)
            return np.empty(0, dtype=np.int32), empty64, empty64.copy()
        if self.model is DiffusionModel.IC:
            return self._cohort_ic(sample_indices, seed, edge_flip == "hash")
        if edge_flip == "hash":
            raise ValueError("hash edge flips are only defined for the IC model")
        return self._cohort_lt(sample_indices, seed)

    # -- scratch -------------------------------------------------------------

    def _fresh_epoch(self, cohort: int) -> tuple[np.ndarray, int]:
        """The epoch-stamped visited scratch, grown to ``cohort × n``.

        int32 stamps halve the random-access traffic of the visited
        probes; the IC traversal consumes one stamp per BFS *level* (its
        frontiers are recovered by scanning for the level's stamp), so
        the wrap refill triggers with a wide safety margin left before
        the int32 ceiling.  Either way stale marks can never alias.
        """
        need = cohort * max(self.graph.n, 1)
        if (
            self._mark is None
            or len(self._mark) < need
            or self._epoch >= np.iinfo(np.int32).max - (1 << 22)
        ):
            size = need if self._mark is None else max(need, len(self._mark))
            self._mark = np.full(size, -1, dtype=np.int32)
            self._epoch = -1
        self._epoch += 1
        return self._mark, self._epoch

    def _level_ramps(self, total: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``arange(total)`` and ``arange(total) * γ`` prefixes.

        Every BFS level needs both ramps; reusing one growable pair of
        buffers removes two O(edges) allocations-and-fills per level.
        """
        if len(self._iota) < total:
            size = max(total, 2 * len(self._iota), 1 << 14)
            self._iota = np.arange(size, dtype=np.int64)
            self._gamma_ramp = self._iota.astype(np.uint64) * _GAMMA
        return self._iota[:total], self._gamma_ramp[:total]

    def _mix_scratch(self, total: int) -> np.ndarray:
        """Reusable shift scratch for :func:`_mix64_into`."""
        if len(self._mix_tmp) < total:
            size = max(total, 2 * len(self._mix_tmp), 1 << 14)
            self._mix_tmp = np.empty(size, dtype=np.uint64)
        return self._mix_tmp[:total]

    # -- IC ------------------------------------------------------------------

    def _cohort_ic(
        self, sample_indices: np.ndarray, seed: int, hash_flips: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        g = self.graph
        n = g.n
        B = len(sample_indices)
        kd = _key_dtype(B, n)
        sd = stream_seeds(seed, sample_indices)
        # Root draw == SplitMix64.randint(0, n): output 1, mod n.
        roots = (mix64_array(sd + _GAMMA) % np.uint64(n)).astype(kd)
        ctr = np.ones(B, dtype=np.int64)  # the root consumed one output
        mark, cohort_floor = self._fresh_epoch(B)
        mark_live = mark[: B * n]

        root_keys = np.arange(B, dtype=kd) * kd(n) + roots
        mark_live[root_keys] = cohort_floor
        visited_keys = [root_keys]
        per_edges = np.zeros(B, dtype=np.int64)

        # Frontier as parallel (sample, vertex) arrays, kept sorted by
        # (sample, vertex) — the invariant matching the serial sampler's
        # per-level ``np.unique`` order.
        f_sample = np.arange(B, dtype=kd)
        f_vertex = roots
        indptr = g.in_indptr
        while len(f_sample):
            starts = indptr[f_vertex].astype(np.int64)
            counts = indptr[f_vertex + 1].astype(np.int64) - starts
            if int(counts.min()) == 0:
                # Prune in-degree-0 pairs: they examine no edges (and so
                # consume no coins), and pruning keeps every pair's edge
                # segment non-empty for the reduceat partitions below.
                keep = counts > 0
                f_sample = f_sample[keep]
                if len(f_sample) == 0:
                    break
                starts, counts = starts[keep], counts[keep]
            pair_end = np.cumsum(counts)
            total = int(pair_end[-1])
            pair_pos = pair_end - counts  # level-array start per pair
            arange_total, gamma_ramp = self._level_ramps(total)
            off = np.repeat(starts - pair_pos, counts)
            off += arange_total
            # Runs: the contiguous stretch of pairs owned by one sample
            # (the frontier is sample-major).  All per-sample bookkeeping
            # happens at run granularity so the per-edge hot path stays
            # as lean as the serial sampler's.
            is_run_start = np.empty(len(f_sample), dtype=bool)
            is_run_start[0] = True
            is_run_start[1:] = f_sample[1:] != f_sample[:-1]
            run_pair = np.flatnonzero(is_run_start)
            run_sample = f_sample[run_pair]
            run_edges = np.add.reduceat(counts, run_pair)
            if hash_flips:
                # hash_edge_flips with a per-edge sample key (same mix).
                sd_edge = np.repeat(sd[f_sample], counts)
                z = sd_edge ^ mix64_array(off.astype(np.uint64) + _GAMMA)
                coins = (mix64_array(z) >> np.uint64(11)).astype(np.float64) * _INV_2_53
                hit = coins < g.in_probs[off]
            else:
                # Each edge's coin sits at its serial stream position:
                # the sample's running counter + the edge's rank within
                # the sample's level block.  Folding seed and counter
                # into one per-pair base leaves repeat + add + in-place
                # mix on the per-edge path: the coin input for
                # level-edge t of pair p is mix64(sd + (ctr + rank +
                # 1)·γ) = base[p] + t·γ with base = sd + (ctr -
                # run_first + 1)·γ (uint64 wrap-around is exactly the
                # mod-2^64 arithmetic SplitMix64 wants).
                run_first = pair_pos[run_pair][np.cumsum(is_run_start) - 1]
                base = sd[f_sample] + (
                    (ctr[f_sample] - run_first + np.int64(1)).astype(np.uint64) * _GAMMA
                )
                z = np.repeat(base, counts)
                z += gamma_ramp
                raw = _mix64_into(z, self._mix_scratch(total))
                if self._thresh_shifted is not None:
                    hit = raw < self._thresh_shifted[off]
                else:
                    np.right_shift(raw, np.uint64(11), out=raw)
                    hit = raw < self._in_thresh[off]
                ctr[run_sample] += run_edges
            per_edges[run_sample] += run_edges

            # Owning sample of each hit edge, recovered by binary-searching
            # the hit's level index in the (cache-resident) pair partition
            # — cheaper than materializing a per-edge sample array for
            # all examined edges.
            hit_idx = np.flatnonzero(hit)
            if len(hit_idx) == 0:
                break
            hit_pair = np.searchsorted(pair_end, hit_idx, side="right")
            cand_keys = f_sample[hit_pair] * kd(n) + g.in_indices[
                off[hit_idx]
            ].astype(kd, copy=False)
            cand_keys = cand_keys[mark_live[cand_keys] < cohort_floor]
            if len(cand_keys) == 0:
                break
            if len(cand_keys) << 6 >= len(mark_live):
                # Sort-free frontier dedup for busy levels: stamp the
                # surviving candidates with a fresh per-level stamp,
                # then scan the (cache-sized) mark prefix for it —
                # ``flatnonzero`` hands back the keys already unique
                # and ascending, i.e. exactly the next frontier in the
                # serial ``np.unique`` order, without sorting anything.
                # Visited-this-cohort stays ``mark >= cohort_floor``
                # since stamps only grow.
                self._epoch += 1
                stamp = self._epoch
                mark_live[cand_keys] = stamp
                new_keys = np.flatnonzero(mark_live == stamp).astype(kd, copy=False)
            else:
                # Sparse tail levels: a small sort beats an O(B·n) scan.
                new_keys = np.unique(cand_keys)
                mark_live[new_keys] = cohort_floor
            visited_keys.append(new_keys)
            f_sample, f_vertex = np.divmod(new_keys, kd(n))
        return self._assemble(visited_keys, B, per_edges)

    # -- LT ------------------------------------------------------------------

    def _cohort_lt(
        self, sample_indices: np.ndarray, seed: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        g = self.graph
        n = g.n
        B = len(sample_indices)
        if self._lt_cum is None:
            self._lt_cum = in_edge_cumweights(g)
        cum = self._lt_cum
        kd = _key_dtype(B, n)
        sd = stream_seeds(seed, sample_indices)
        roots = (mix64_array(sd + _GAMMA) % np.uint64(n)).astype(kd)
        ctr = np.ones(B, dtype=np.int64)
        mark, epoch = self._fresh_epoch(B)

        root_keys = np.arange(B, dtype=kd) * kd(n) + roots
        mark[root_keys] = epoch
        visited_keys = [root_keys]
        per_edges = np.zeros(B, dtype=np.int64)

        w_sample = np.arange(B, dtype=kd)
        w_vertex = roots
        indptr = g.in_indptr
        while len(w_sample):
            lo = indptr[w_vertex].astype(np.int64)
            deg = indptr[w_vertex + 1].astype(np.int64) - lo
            alive = deg > 0  # a vertex with no in-edges ends its walk
            w_sample, lo, deg = w_sample[alive], lo[alive], deg[alive]
            if len(w_sample) == 0:
                break
            per_edges[w_sample] += deg
            ctr[w_sample] += 1
            raw = stream_coins(sd[w_sample], ctr[w_sample])
            r = (raw >> np.uint64(11)).astype(np.float64) * _INV_2_53
            go = r < cum[lo + deg - 1]  # else the no-live-edge residual fired
            w_sample, lo, deg, r = w_sample[go], lo[go], deg[go], r[go]
            if len(w_sample) == 0:
                break
            # searchsorted(cum_local, r, side="right") for all walks at
            # once: first in-slot whose cumulative weight exceeds r.
            total = int(deg.sum())
            seg_start = np.cumsum(deg) - deg
            arange_total, _ = self._level_ramps(total)
            pos = np.repeat(lo - seg_start, deg) + arange_total
            within = arange_total - np.repeat(seg_start, deg)
            above = cum[pos] > np.repeat(r, deg)
            pick = np.minimum.reduceat(np.where(above, within, total), seg_start)
            nxt = g.in_indices[lo + pick].astype(kd, copy=False)
            keys = w_sample * kd(n) + nxt
            fresh = mark[keys] != epoch  # walking into a visited vertex stops
            w_sample, keys, nxt = w_sample[fresh], keys[fresh], nxt[fresh]
            if len(w_sample) == 0:
                break
            mark[keys] = epoch
            visited_keys.append(keys)
            w_vertex = nxt
        return self._assemble(visited_keys, B, per_edges)

    # -- assembly ------------------------------------------------------------

    def _assemble(
        self, visited_keys: list[np.ndarray], B: int, per_edges: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sort the visited (sample, vertex) keys into per-sample lists."""
        n = max(self.graph.n, 1)
        all_keys = np.concatenate(visited_keys)
        all_keys.sort()  # sample-major, vertex-ascending within a sample
        samples, verts64 = np.divmod(all_keys, n)
        sizes = np.bincount(samples, minlength=B)
        verts = verts64.astype(np.int32)
        return verts, sizes.astype(np.int64), per_edges
