"""Batch RRR sampling: the ``Sample`` function of Algorithm 3.

``Sample(G, theta, R)`` extends the collection ``R`` until it holds
``theta`` samples.  Sample ``j`` (global index, counted across the whole
run) draws its source vertex and all of its traversal randomness from
the dedicated stream ``sample_stream(seed, j)``, so the content of ``R``
is a pure function of ``(graph, model, seed, theta)`` — independent of
batching, thread count, or rank assignment.  This is the discipline that
lets the parallel implementations produce bit-identical seed sets (the
paper relies on leap-frog streams for the same guarantee; we test both).

Two engines execute the same contract:

* ``"batched"`` (default) — the cohort sampler
  (:class:`~repro.sampling.batched.BatchedRRRSampler`): the new samples
  are generated as fused multi-source traversals, bit-identical to the
  serial engine at any cohort size (the determinism contract of
  :mod:`repro.sampling.batched`).
* ``"serial"`` — one :meth:`RRRSampler.generate` call per sample, kept
  as the reference implementation and for callers that thread their own
  per-sample streams.
* ``"parallel"`` — a pre-built
  :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`
  fanning blocks of the same global indices out to a process pool over a
  shared-memory CSR.  Bit-identical to the other two at any worker
  count (the engine's determinism contract).

Passing a pre-built sampler selects the engine implicitly (its type
says which loop it feeds); otherwise ``engine`` decides, defaulting to
batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..rng import sample_stream
from .batched import BatchedRRRSampler
from .collection import RRRCollection
from .parallel_engine import ParallelSamplingEngine
from .rrr import RRRSampler

__all__ = ["sample_batch", "SampleBatch"]


@dataclass
class SampleBatch:
    """Work metering for one ``Sample`` invocation.

    Attributes
    ----------
    first_index, count:
        The global sample indices generated: ``[first_index,
        first_index + count)``.
    edges_examined:
        Total in-edges examined across the batch (the sampling phase's
        work measure; the cost models convert it to simulated seconds).
    per_sample_edges:
        Edge count of each sample, used by the shared-memory simulator to
        compute per-thread makespans under block partitioning.  The
        batched engine meters these from the fused traversal, so the
        per-sample work distribution is identical to the serial loop's.
    """

    first_index: int
    count: int
    edges_examined: int = 0
    per_sample_edges: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


def sample_batch(
    graph: CSRGraph,
    model: DiffusionModel | str,
    collection: RRRCollection,
    target: int,
    seed: int,
    *,
    sampler: RRRSampler | BatchedRRRSampler | ParallelSamplingEngine | None = None,
    engine: str | None = None,
) -> SampleBatch:
    """Grow ``collection`` to ``target`` samples (Algorithm 3).

    Parameters
    ----------
    graph, model:
        The input graph and diffusion model.
    collection:
        Destination; ``len(collection)`` is the number of samples already
        generated (``theta - |R|`` new ones are produced, as in
        Algorithm 1's second ``Sample`` call).
    target:
        Desired total number of samples; no-op if already reached.
    seed:
        Master seed of the run (not of the batch).
    sampler:
        Optional pre-built :class:`~repro.sampling.batched.BatchedRRRSampler`
        or :class:`RRRSampler` to reuse scratch space across invocations;
        its type selects the engine when ``engine`` is not given.
    engine:
        ``"batched"``, ``"serial"`` or ``"parallel"``; defaults to the
        sampler's engine, or batched.  All produce bit-identical
        collections.  ``"parallel"`` requires a pre-built
        :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`
        (pool lifetime belongs to the caller, not to one batch).

    Returns
    -------
    :class:`SampleBatch` describing the work done.
    """
    if target < 0:
        raise ValueError("target sample count must be non-negative")
    if engine is None:
        if isinstance(sampler, RRRSampler):
            engine = "serial"
        elif isinstance(sampler, ParallelSamplingEngine):
            engine = "parallel"
        else:
            engine = "batched"
    if engine not in ("batched", "serial", "parallel"):
        raise ValueError(
            f"unknown engine {engine!r}; expected 'batched', 'serial' or 'parallel'"
        )
    if engine == "parallel" and not isinstance(sampler, ParallelSamplingEngine):
        raise ValueError(
            "engine='parallel' requires a pre-built ParallelSamplingEngine "
            "(its process pool outlives any single batch)"
        )
    first = len(collection)
    count = max(0, target - first)
    if count == 0:
        return SampleBatch(first_index=first, count=0)
    n = graph.n
    if engine in ("batched", "parallel"):
        if engine == "batched" and not isinstance(sampler, BatchedRRRSampler):
            sampler = BatchedRRRSampler(graph, model)
        indices = np.arange(first, first + count, dtype=np.int64)
        per_sample = sampler.sample_into(collection, indices, seed)
        total_edges = int(per_sample.sum())
    else:
        if not isinstance(sampler, RRRSampler):
            sampler = RRRSampler(graph, model)
        per_sample = np.zeros(count, dtype=np.int64)
        total_edges = 0
        for i in range(count):
            j = first + i
            rng = sample_stream(seed, j)
            root = rng.randint(0, n)
            verts, edges = sampler.generate(root, rng)
            collection.append(verts)
            per_sample[i] = edges
            total_edges += edges
    return SampleBatch(
        first_index=first,
        count=count,
        edges_examined=total_edges,
        per_sample_edges=per_sample,
    )
