"""Real multicore RRR sampling: a shared-memory process-pool engine.

Everything above this module so far *modeled* parallel time; this module
actually uses the cores.  The design follows the shared-memory scaling
recipe of Ripples/HBMax (read-only CSR + embarrassingly parallel sample
blocks + partitioned counting), adapted to a Python substrate where the
unit of parallelism must be a *process* (the GIL rules out threads for
NumPy-dispatch-bound kernels):

* The graph's reverse-CSR arrays (``in_indptr``/``in_indices``/
  ``in_probs``) — plus, for LT, the precomputed per-vertex cumulative
  weight table — are placed in :mod:`multiprocessing.shared_memory`
  **once** at engine construction.  Workers attach zero-copy NumPy views;
  no graph bytes are pickled per task.
* **Output arena** — results travel the same way.  The parent reserves a
  shared-memory *output arena* (sized from the requested θ, with a
  growable-segment escape hatch) and assigns every submitted block a
  disjoint *extent* ``(segment, offset, capacity)`` from a parent-side
  cursor — no shared allocator lock exists that a SIGKILLed worker could
  die holding.  The worker writes the block's payload
  ``[flat int32 | pad to 8 | sizes int64 | edges int64]`` directly into
  its extent and returns only a tiny descriptor
  ``(wrote_arena, flat_len, num_samples, checksum, sample_s, write_s,
  fused, inline)``; the parent lands the block by passing zero-copy
  NumPy views over the extent straight into ``append_batch``.  A block
  that outgrows its extent rides back inline (counted in
  ``stats.arena_overflows``) and bumps the parent's bytes-per-sample
  estimate so follow-on segments are sized honestly.
* **Fused counting** — each worker keeps a running per-vertex bincount
  over the blocks it produced, in its own row of a shared counters
  matrix (rows are assigned once per worker process via a shared
  slot counter; rows never alias).  When the books balance —
  every incidence of the queried flat array was produced by a fused
  block, and nothing is in flight — ``count_partitioned`` merges the
  ``w`` partial counters with one column sum instead of re-shipping the
  flat buffers.  Any event that could desynchronize rows from the
  landed collection (a crash, a speculative duplicate, a deadline
  abandonment, a worker without a row) *invalidates* the fused state
  and the call falls back to the partitioned/serial path — exact either
  way, by construction.
* **Adaptive chunking** — with no explicit ``chunk_size`` the engine
  starts with small probe blocks and grows them geometrically toward a
  target block latency (:data:`ADAPTIVE_TARGET_BLOCK_SECONDS`), driven
  by the worker-reported per-block sampling time.  Blocks are planned
  lazily behind a bounded submission window, so the policy can react
  while the run is still in flight.  Chunking affects scheduling only —
  never the bytes.

Determinism contract
--------------------
Sample ``j`` is a pure function of ``(graph, model, seed, j)`` (the
counter-addressed stream discipline of :mod:`repro.rng.streams`), and the
parent lands blocks in index order — so the produced collection is
**bit-identical** to the serial and batched engines for every worker
count, chunk policy, and start method.  ``repro-imm validate`` enforces
this, and four mutation hooks below exist so the mutation suite can prove
the oracle would catch the characteristic failure modes:

``_mutate_land_order="reversed"``
    the parent lands blocks in reverse index order (a completion-order
    landing bug's deterministic stand-in);
``_mutate_stream_offset=True``
    workers sample local ``[0, hi-lo)`` indices instead of the global
    block (the classic lost-offset bug).  The mutation deliberately
    leaves the protocol checksum computed from the *received* indices,
    modeling a bug inside the sampling call itself — the engine's own
    checksum handshake (:func:`repro.rng.streams.stream_checksum`)
    already rejects disagreements at the protocol layer.
``_mutate_arena_overlap=True``
    workers write their payload 8 bytes past the assigned extent start
    (the classic extent-stitching off-by-one): the parent's zero-copy
    views then read bytes that belong to the shifted layout, so the
    landed collection is corrupt — only the oracle's bitwise comparison
    (or the landing-time invariants it hardens) can see it.
``_mutate_fused_drop=True``
    the worker producing the block that contains global sample index 0
    skips accumulating it into its counter row but still reports the
    block as fused — the fused merge silently under-counts and only the
    oracle's ``engine.count-partitioned`` comparison can see it.

Cleanup discipline
------------------
The parent owns every shared-memory segment — CSR, counters, and all
arena segments: ``close()`` (idempotent, also invoked by ``__exit__``,
``__del__``, and every error path) shuts the pool down and unlinks all
segments.  Pool workers share the parent's ``resource_tracker`` process
(its fd rides along under both ``fork`` and ``spawn``), and the
tracker's cache is a set — so a worker's attach-time re-registration is
a no-op and the parent's single unlink-time unregistration leaves the
cache clean.  Workers must therefore *not* unregister segments
themselves (that would race the parent's cleanup); the test suite
asserts the net effect — no ``resource_tracker`` warnings or "leaked
shared_memory" messages — by scanning a subprocess's stderr.

Failure modes raise typed errors, never hang: a dead worker surfaces as
:class:`WorkerCrashError` (via the executor's broken-pool detection or
the per-block ``task_timeout``), and a stream-addressing disagreement as
:class:`EngineProtocolError`.
"""

from __future__ import annotations

import logging
import math
import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..rng.streams import fold_stream_seeds, stream_checksum, stream_seeds_array
from .batched import BatchedRRRSampler
from .collection import RRRCollection
from .rrr import in_edge_cumweights

__all__ = [
    "ParallelSamplingEngine",
    "ParallelEngineError",
    "WorkerCrashError",
    "EngineProtocolError",
    "EngineStats",
    "AdaptiveChunkPolicy",
]

_log = logging.getLogger(__name__)

#: Below this many incidences, the *partitioned* counting path stays
#: serial — the pickle+IPC round trip costs more than the bincount it
#: would save.  The fused merge has no per-element IPC at all, so it
#: applies regardless of this threshold.
PARALLEL_COUNT_THRESHOLD = 1 << 15

#: Floor for the first arena segment when no override is given.
ARENA_MIN_BYTES = 1 << 20
#: Ceiling for the first arena segment (growth covers anything larger).
ARENA_MAX_INITIAL_BYTES = 256 << 20
#: Hard cap on arena segments per engine; past it blocks ride inline.
ARENA_MAX_SEGMENTS = 64
#: Starting guess for arena sizing, refined from landed blocks.  RRR
#: payloads are heavy-tailed (soc-LiveJournal1 IC blocks run ~1.5 KiB
#: per sample), and the first submission window (2*workers+2 blocks) is
#: reserved before any landed-block feedback exists, so guess generously
#: to keep that window out of the inline-overflow path.  shm pages are
#: only committed when actually written, so an oversized extent tail
#: costs address space, not memory.
ARENA_BYTES_PER_SAMPLE_GUESS = 4096

#: Counters matrix budget: above this the fused-counting rows are not
#: allocated and ``count_partitioned`` always uses the legacy paths.
FUSED_COUNTER_MAX_BYTES = 64 << 20

#: Adaptive chunking: target per-block sampling latency (seconds) ...
ADAPTIVE_TARGET_BLOCK_SECONDS = 0.25
#: ... smallest probe block ...
ADAPTIVE_PROBE_FLOOR = 32
#: ... per-step geometric growth cap.
ADAPTIVE_GROWTH = 2.0

#: Per-landed-block IPC budget (bytes) the regression harness gates on:
#: a descriptor is a handful of scalars; payload bytes sneaking back
#: into the result pickle blow straight through this.
DESCRIPTOR_BYTE_BUDGET = 512


def _align8(nbytes: int) -> int:
    return (nbytes + 7) & ~7


def _extent_need(flat_len: int, num_samples: int) -> int:
    """Bytes one block payload occupies in its extent."""
    return _align8(flat_len * 4) + 16 * num_samples


class ParallelEngineError(RuntimeError):
    """Base class for process-pool sampling-engine failures."""


class WorkerCrashError(ParallelEngineError):
    """A worker died (or timed out) mid-block; the engine is closed."""


class EngineProtocolError(ParallelEngineError):
    """Parent and worker disagree on a block's stream identities."""


@dataclass
class EngineStats:
    """Operational counters of one engine instance.

    The supervisor (:mod:`repro.sampling.supervisor`) extends these with
    recovery counters; the plain engine tracks the work it routed, the
    counting-kernel fallbacks it took, and the per-phase cost breakdown
    the regression harness records (arena writes, landing, counting
    merges, IPC descriptor bytes).
    """

    blocks_landed: int = 0
    tasks_submitted: int = 0
    #: ``count_partitioned`` calls that degraded to a serial bincount
    #: because a worker crashed or timed out mid-count.
    count_fallbacks: int = 0
    #: Arena bookkeeping: segments allocated, bytes reserved across
    #: them, and blocks that outgrew their extent and rode back inline.
    arena_segments: int = 0
    arena_bytes: int = 0
    arena_overflows: int = 0
    #: Per-phase seconds (workers' sampling + arena writes are summed
    #: across workers; landing/merge are parent wall-clock).
    sample_seconds: float = 0.0
    arena_write_seconds: float = 0.0
    landing_seconds: float = 0.0
    count_merge_seconds: float = 0.0
    #: Fused-counting life cycle: merges served from the worker rows,
    #: and events that forced the fallback path.
    fused_count_merges: int = 0
    fused_invalidations: int = 0
    #: Total pickled bytes of every result the parent consumed — the
    #: IPC payload the arena exists to keep descriptor-sized.
    ipc_descriptor_bytes: int = 0
    #: Adaptive chunking: first probe size and last size of the most
    #: recent ``sample_into`` call (equal when a static chunk is used).
    chunk_initial: int = 0
    chunk_final: int = 0

    def as_dict(self) -> dict:
        return {
            "blocks_landed": self.blocks_landed,
            "tasks_submitted": self.tasks_submitted,
            "count_fallbacks": self.count_fallbacks,
            "arena_segments": self.arena_segments,
            "arena_bytes": self.arena_bytes,
            "arena_overflows": self.arena_overflows,
            "sample_seconds": round(self.sample_seconds, 6),
            "arena_write_seconds": round(self.arena_write_seconds, 6),
            "landing_seconds": round(self.landing_seconds, 6),
            "count_merge_seconds": round(self.count_merge_seconds, 6),
            "fused_count_merges": self.fused_count_merges,
            "fused_invalidations": self.fused_invalidations,
            "ipc_descriptor_bytes": self.ipc_descriptor_bytes,
            "chunk_initial": self.chunk_initial,
            "chunk_final": self.chunk_final,
        }


class AdaptiveChunkPolicy:
    """Probe-then-grow block sizing toward a target block latency.

    Starts with small probe blocks (fast feedback, fine-grained load
    balance while the per-sample cost is unknown), then grows the block
    size geometrically toward :data:`ADAPTIVE_TARGET_BLOCK_SECONDS`
    using the worker-reported sampling seconds of landed blocks.  Sizes
    are monotone non-decreasing (no oscillation) and capped at an even
    ``total / workers`` split so late planning still spans the pool.

    Scheduling only: the landed bytes are independent of every size this
    policy ever picks.
    """

    def __init__(
        self,
        total: int,
        workers: int,
        *,
        floor: int = ADAPTIVE_PROBE_FLOOR,
        target_seconds: float = ADAPTIVE_TARGET_BLOCK_SECONDS,
        growth: float = ADAPTIVE_GROWTH,
    ) -> None:
        if total < 0 or workers < 1:
            raise ValueError("need total >= 0 and workers >= 1")
        self.cap = max(1, math.ceil(total / workers))
        probe = max(floor, total // (16 * workers))
        self.size = max(1, min(self.cap, probe))
        self.initial = self.size
        self.target_seconds = target_seconds
        self.growth = growth

    def next_size(self) -> int:
        return self.size

    def observe(self, num_samples: int, seconds: float) -> None:
        """Feed one landed block's (size, worker sampling seconds)."""
        if num_samples <= 0 or seconds <= 0.0:
            return
        want = int(num_samples / seconds * self.target_seconds)
        grown = int(self.size * self.growth)
        self.size = min(self.cap, max(self.size, min(want, grown)))


# ---------------------------------------------------------------------------
# worker-side code (module-level so every start method can pickle it)
# ---------------------------------------------------------------------------

#: Per-worker state installed by :func:`_worker_init`.
_WORKER: dict | None = None


def _worker_init(payload: dict) -> None:
    """Pool initializer: attach the shared CSR and build the sampler.

    Attaching re-registers each segment with the resource tracker the
    worker shares with the parent — a set-insert no-op.  Ownership stays
    with the parent (create + unlink); workers only hold views.

    When the payload carries a counters matrix, the worker claims one
    row via the shared slot counter (bounded acquire: a worker that
    cannot get a slot simply produces unfused blocks — never deadlocks
    the pool).
    """
    global _WORKER
    views: dict[str, np.ndarray] = {}
    segments: list[_shm.SharedMemory] = []
    for key, (name, shape, dtype) in payload["arrays"].items():
        seg = _shm.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        arr.flags.writeable = False  # the CSR is read-only by contract
        views[key] = arr
        segments.append(seg)
    # The sampler only touches the in-direction and ``n``; aliasing the
    # out-direction to the same arrays satisfies the CSRGraph constructor
    # without shipping bytes the kernels never read.
    graph = CSRGraph(
        payload["n"],
        views["in_indptr"],
        views["in_indices"],
        views["in_probs"],
        views["in_indptr"],
        views["in_indices"],
        views["in_probs"],
    )
    sampler = BatchedRRRSampler(
        graph, payload["model"], max_cohort=payload["max_cohort"]
    )
    if "lt_cum" in views:
        sampler._lt_cum = views["lt_cum"]  # shared, bit-equal to a local build
    counter_row = None
    counters = payload.get("counters")
    slot_counter = payload.get("slot_counter")
    if counters is not None and slot_counter is not None:
        name, rows, n = counters
        slot = -1
        lock = slot_counter.get_lock()
        if lock.acquire(timeout=5.0):
            try:
                slot = slot_counter.value
                slot_counter.value = slot + 1
            finally:
                lock.release()
        if 0 <= slot < rows:
            seg = _shm.SharedMemory(name=name)
            segments.append(seg)
            matrix = np.ndarray((rows, n), dtype=np.int64, buffer=seg.buf)
            counter_row = matrix[slot]
    _WORKER = {
        "sampler": sampler,
        "segments": segments,
        "arena": {},  # arena segment name -> attached SharedMemory
        "counter_row": counter_row,
    }


def _attach_arena(name: str) -> _shm.SharedMemory:
    assert _WORKER is not None
    seg = _WORKER["arena"].get(name)
    if seg is None:
        seg = _shm.SharedMemory(name=name)
        _WORKER["arena"][name] = seg
    return seg


def _worker_block(
    indices: np.ndarray,
    seed: int,
    edge_flip: str,
    extent: tuple[str, int, int] | None,
    mutate_offset: bool,
    mutate_overlap: bool,
    mutate_fused_drop: bool,
    crash: bool,
    sleep_s: float = 0.0,
) -> tuple:
    """Sample one block of global indices into its arena extent.

    Returns the block *descriptor* ``(wrote_arena, flat_len,
    num_samples, checksum, sample_s, write_s, fused, inline)`` — a
    handful of scalars when the payload fit the extent, or the payload
    itself in ``inline`` when it did not (the parent then grows its
    sizing estimate).
    """
    if crash:  # test/mutation hook: simulate a worker dying mid-block
        os._exit(1)
    if sleep_s > 0.0:  # injected straggler: the worker stalls, then answers
        time.sleep(sleep_s)
    assert _WORKER is not None, "worker initializer did not run"
    sampler: BatchedRRRSampler = _WORKER["sampler"]
    checksum = stream_checksum(seed, indices)
    first_index = int(indices[0]) if len(indices) else -1
    if mutate_offset:
        indices = indices - indices[0]  # the injected lost-offset bug
    t0 = time.perf_counter()
    flats: list[np.ndarray] = []
    sizes: list[np.ndarray] = []
    edges: list[np.ndarray] = []
    for lo in range(0, len(indices), sampler.max_cohort):
        v, s, e = sampler.sample_cohort(
            indices[lo : lo + sampler.max_cohort], seed, edge_flip=edge_flip
        )
        flats.append(v)
        sizes.append(s)
        edges.append(e)
    flat = np.concatenate(flats) if flats else np.empty(0, dtype=np.int32)
    size_arr = np.concatenate(sizes) if sizes else np.empty(0, dtype=np.int64)
    edge_arr = np.concatenate(edges) if edges else np.empty(0, dtype=np.int64)
    sample_s = time.perf_counter() - t0
    counter_row = _WORKER.get("counter_row")
    fused = counter_row is not None
    if fused and not (mutate_fused_drop and first_index == 0):
        counter_row += np.bincount(flat, minlength=len(counter_row))
    t1 = time.perf_counter()
    flat_len, ns = len(flat), len(size_arr)
    need = _extent_need(flat_len, ns)
    wrote = False
    if extent is not None and need <= extent[2]:
        seg = _attach_arena(extent[0])
        off = extent[1] + (8 if mutate_overlap else 0)
        np.ndarray(flat_len, dtype=np.int32, buffer=seg.buf, offset=off)[:] = flat
        off_sz = off + _align8(flat_len * 4)
        np.ndarray(ns, dtype=np.int64, buffer=seg.buf, offset=off_sz)[:] = size_arr
        np.ndarray(
            ns, dtype=np.int64, buffer=seg.buf, offset=off_sz + ns * 8
        )[:] = edge_arr
        wrote = True
    write_s = time.perf_counter() - t1
    inline = None if wrote else (flat, size_arr, edge_arr)
    return (wrote, flat_len, ns, checksum, sample_s, write_s, fused, inline)


def _worker_count(block: np.ndarray, minlength: int) -> np.ndarray:
    """Private bincount of one contiguous block of the incidence array."""
    return np.bincount(block, minlength=minlength)


def _worker_ping() -> int:
    """Identify the answering worker (used to pre-spawn and enumerate)."""
    return os.getpid()


# ---------------------------------------------------------------------------
# parent-side engine
# ---------------------------------------------------------------------------


class ParallelSamplingEngine:
    """Process-pool RRR sampling over a shared-memory CSR.

    Drop-in alternative to :class:`BatchedRRRSampler` for the batch
    drivers: it exposes the same ``sample_into`` interface (and
    :func:`~repro.sampling.sampler.sample_batch` accepts it as
    ``sampler=``), plus the ``count_partitioned`` selection kernel.

    Parameters
    ----------
    graph, model:
        The input graph and diffusion model.
    workers:
        Pool size.  ``workers=1`` degenerates to the in-process batched
        sampler — no pool, no shared memory, no IPC.
    chunk_size:
        Samples per fan-out block.  ``None`` (the default) enables
        :class:`AdaptiveChunkPolicy` — probe blocks growing toward a
        target block latency.  An explicit size pins static blocks
        (tests and the oracle use this to address block ordinals).
        Results never depend on it.
    max_cohort:
        Forwarded to every worker's :class:`BatchedRRRSampler`.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"`` or ``None`` for the
        platform default.  Output is bit-identical across all of them.
    task_timeout:
        Seconds to wait for any single block before declaring the pool
        wedged (:class:`WorkerCrashError`).  ``None`` waits forever.
    arena_bytes:
        Size of the *first* output-arena segment.  ``None`` sizes it
        from the first call's sample count; tests pass tiny values to
        force the growable-segment path.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: DiffusionModel | str,
        *,
        workers: int,
        chunk_size: int | None = None,
        max_cohort: int | None = None,
        start_method: str | None = None,
        task_timeout: float | None = 300.0,
        arena_bytes: int | None = None,
        _counter_rows: int | None = None,
        _mutate_land_order: str | None = None,
        _mutate_stream_offset: bool = False,
        _mutate_arena_overlap: bool = False,
        _mutate_fused_drop: bool = False,
        _crash_block: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if arena_bytes is not None and arena_bytes < 1:
            raise ValueError("arena_bytes must be positive")
        self.graph = graph
        self.model = DiffusionModel.parse(model)
        self.workers = workers
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self._mutate_land_order = _mutate_land_order
        self._mutate_stream_offset = _mutate_stream_offset
        self._mutate_arena_overlap = _mutate_arena_overlap
        self._mutate_fused_drop = _mutate_fused_drop
        self._crash_block = _crash_block
        self._closed = False
        self._segments: list[_shm.SharedMemory] = []
        self._pool: ProcessPoolExecutor | None = None
        self._payload: dict | None = None
        self._mp_ctx = None
        self.stats = EngineStats()
        # -- output arena state (all parent-side; no shared locks) ----------
        self._arena_override = arena_bytes
        self._arena: list[dict] = []  # {"seg", "size", "cursor"} per segment
        self._arena_active = 0
        self._arena_hint = 0  # samples the current call wants room for
        self._bytes_per_sample = ARENA_BYTES_PER_SAMPLE_GUESS
        self._inflight: set[Future] = set()
        #: Pools replaced by :meth:`rebuild_pool` whose worker processes
        #: may not have exited yet.  A surviving worker of a broken pool
        #: can still be executing an abandoned block — writing to its
        #: arena extent and attach-registering segments with the
        #: resource tracker — so arena cursors must not rewind and
        #: segments must not unlink until these are reaped.
        self._retired_pools: list[ProcessPoolExecutor] = []
        # -- fused-counting state -------------------------------------------
        self._counter_matrix: np.ndarray | None = None
        self._fused_valid = False
        self._fused_incidences = 0
        self._fused_parent: np.ndarray | None = None
        # LT: one cumulative-weight table, built once and shared with
        # every worker (bit-equal to what each would build locally).
        self._lt_cum = (
            in_edge_cumweights(graph) if self.model is DiffusionModel.LT else None
        )
        self._local = BatchedRRRSampler(graph, self.model, max_cohort=max_cohort)
        if self._lt_cum is not None:
            self._local._lt_cum = self._lt_cum
        if workers == 1:
            return  # in-process degenerate mode: nothing else to set up
        arrays = {
            "in_indptr": graph.in_indptr,
            "in_indices": graph.in_indices,
            "in_probs": graph.in_probs,
        }
        if self._lt_cum is not None:
            arrays["lt_cum"] = self._lt_cum
        spec: dict[str, tuple[str, tuple, str]] = {}
        try:
            self._mp_ctx = get_context(start_method)
            for key, arr in arrays.items():
                seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
                self._segments.append(seg)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[:] = arr
                spec[key] = (seg.name, tuple(arr.shape), arr.dtype.str)
            self._payload = {
                "arrays": spec,
                "n": graph.n,
                "model": self.model.value,
                "max_cohort": self._local.max_cohort,
            }
            rows = _counter_rows if _counter_rows is not None else workers
            if rows > 0 and rows * graph.n * 8 <= FUSED_COUNTER_MAX_BYTES:
                seg = _shm.SharedMemory(create=True, size=max(1, rows * graph.n * 8))
                self._segments.append(seg)
                self._counter_matrix = np.ndarray(
                    (rows, graph.n), dtype=np.int64, buffer=seg.buf
                )
                self._counter_matrix[:] = 0
                self._payload["counters"] = (seg.name, rows, graph.n)
                # Workers claim rows through this shared cursor; it is
                # pickled only through the spawning context's initargs.
                self._payload["slot_counter"] = self._mp_ctx.Value("i", 0)
                self._fused_valid = True
            self._pool = self.spawn_pool()
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment (idempotent).

        This covers the CSR segments, the fused-counters matrix, and
        every output-arena segment — on success paths and on every
        typed-error path alike.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        # Retired (replaced) pools' survivors may still touch the arena;
        # join them before any segment goes away.
        self._reap_retired_pools(wait=True)
        self._counter_matrix = None  # view dies before its segment
        for rec in getattr(self, "_arena", ()):
            self._segments.append(rec["seg"])
        self._arena = []
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __enter__(self) -> "ParallelSamplingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ParallelEngineError("engine is closed")

    # -- pool lifecycle (the supervisor's recovery primitives) ---------------

    def spawn_pool(self, *, warm: bool = False) -> ProcessPoolExecutor:
        """A fresh worker pool attached to this engine's shared segments.

        The pool is *not* installed — it is returned for the caller to
        hold (the supervisor keeps pre-spawned spares this way) or to
        pass to :meth:`rebuild_pool`.  ``warm=True`` forces the worker
        processes to actually start (and run the shm-attach initializer)
        before returning, so a later promotion costs no fork.
        """
        if self._payload is None:
            raise ParallelEngineError("single-worker engine has no pool to spawn")
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_ctx,
            initializer=_worker_init,
            initargs=(self._payload,),
        )
        if warm:
            # One submit makes the executor fork all max_workers at once;
            # waiting on it guarantees at least one initializer finished.
            pool.submit(_worker_ping).result()
        return pool

    def rebuild_pool(self, pool: ProcessPoolExecutor | None = None) -> None:
        """Replace the current (possibly broken) pool.

        The dead pool is shut down without touching the shared segments —
        ownership of those never moves — and ``pool`` (or a freshly
        spawned one) is installed in its place.  Outstanding futures of
        the old pool are cancelled; the caller re-submits whatever it
        still needs (deterministic replay makes that safe).  A rebuild
        always invalidates the fused counters: the dead worker may have
        accumulated blocks that never landed.
        """
        self._require_open()
        if self._payload is None:
            raise ParallelEngineError("single-worker engine has no pool to rebuild")
        self._invalidate_fused("pool rebuild")
        old, self._pool = self._pool, None
        if old is not None:
            # wait=False keeps recovery responsive (a wedged straggler in
            # the dead pool must not stall the rebuild), so the old pool
            # is retired instead of forgotten: its survivors may still be
            # running abandoned blocks against the arena.
            old.shutdown(wait=False, cancel_futures=True)
            self._retired_pools.append(old)
        self._pool = pool if pool is not None else self.spawn_pool()

    # -- output arena (parent-assigned extents, no shared locks) -------------

    def _maybe_reset_arena(self, hint_samples: int) -> None:
        """Rewind the arena cursors for a fresh call, if quiescent.

        Extents are handed out monotonically within a call; between
        calls the whole arena is reusable **unless** futures are still
        in flight (a speculative loser, an abandoned post-deadline
        block) — those may still write to their extents, so the cursors
        stay put and the arena simply keeps growing forward.
        """
        self._arena_hint = max(self._arena_hint, hint_samples)
        if self._inflight or not self._reap_retired_pools(wait=False):
            return
        for rec in self._arena:
            rec["cursor"] = 0
        self._arena_active = 0

    def _reap_retired_pools(self, *, wait: bool) -> bool:
        """Drop retired pools whose workers have all exited.

        ``wait=True`` joins them (used by :meth:`close` before segments
        unlink); ``wait=False`` only polls, so callers can fall back to
        growing the arena forward instead of blocking recovery.  Returns
        ``True`` when no retired worker process remains alive.
        """
        still_live: list[ProcessPoolExecutor] = []
        for pool in self._retired_pools:
            if wait:
                pool.shutdown(wait=True, cancel_futures=True)
                continue
            procs = getattr(pool, "_processes", None) or {}
            if any(p.is_alive() for p in procs.values()):
                still_live.append(pool)
        self._retired_pools = still_live
        return not still_live

    def _new_arena_segment(self, min_bytes: int) -> dict | None:
        if len(self._arena) >= ARENA_MAX_SEGMENTS:
            return None
        if not self._arena:
            if self._arena_override is not None:
                size = max(self._arena_override, min_bytes)
            else:
                size = min(
                    ARENA_MAX_INITIAL_BYTES,
                    max(
                        ARENA_MIN_BYTES,
                        min_bytes,
                        2 * self._arena_hint * self._bytes_per_sample,
                    ),
                )
        else:
            size = max(2 * self._arena[-1]["size"], 4 * min_bytes)
        seg = _shm.SharedMemory(create=True, size=max(1, size))
        rec = {"seg": seg, "size": size, "cursor": 0}
        self._arena.append(rec)
        self.stats.arena_segments = len(self._arena)
        self.stats.arena_bytes += size
        return rec

    def _reserve_extent(self, num_samples: int):
        """Assign a disjoint arena extent for a block of ``num_samples``.

        Parent-side bump allocation only: no lock exists for a killed
        worker to die holding.  Returns ``None`` when the arena is at
        its segment cap — the block then rides back inline.
        """
        cap = _align8(self._bytes_per_sample * max(1, num_samples) + 64)
        i = self._arena_active
        while True:
            if i >= len(self._arena):
                rec = self._new_arena_segment(cap)
                if rec is None:
                    return None
                i = len(self._arena) - 1
            rec = self._arena[i]
            if rec["cursor"] + cap <= rec["size"]:
                off = rec["cursor"]
                rec["cursor"] = off + cap
                self._arena_active = i
                return (i, off, cap)
            i += 1

    def _note_block_size(self, num_samples: int, need: int) -> None:
        """Refine the bytes-per-sample estimate from a landed block."""
        if num_samples > 0:
            observed = math.ceil(1.5 * need / num_samples)
            if observed > self._bytes_per_sample:
                self._bytes_per_sample = observed

    # -- fused-counting bookkeeping ------------------------------------------

    def _invalidate_fused(self, reason: str) -> None:
        if self._fused_valid:
            self._fused_valid = False
            self.stats.fused_invalidations += 1
            _log.debug("fused counters invalidated: %s", reason)

    def _maybe_reset_fused(self, collection, sample_indices: np.ndarray) -> None:
        """Re-arm fused counting at a fresh collection epoch.

        Valid only when the books can be balanced from scratch: nothing
        in flight (so no worker can still accumulate a stale block), an
        empty target collection, and a run starting at global index 0.
        The rows are zeroed — including any stale rows of dead workers —
        and accumulation restarts in lockstep with the landings.
        """
        if (
            self._counter_matrix is None
            or self._inflight
            or len(collection) != 0
            or (len(sample_indices) > 0 and int(sample_indices[0]) != 0)
        ):
            return
        self._counter_matrix[:] = 0
        self._fused_incidences = 0
        self._fused_parent = None
        self._fused_valid = True

    def _note_parent_landing(self, flat: np.ndarray) -> None:
        """Account a block the *parent* landed (e.g. a resumed prefix):
        its incidences live in a parent-side row, not a worker row."""
        if self._counter_matrix is None:
            return
        if self._fused_parent is None:
            self._fused_parent = np.zeros(self.graph.n, dtype=np.int64)
        self._fused_parent += np.bincount(flat, minlength=self.graph.n)
        self._fused_incidences += len(flat)

    # -- block submission / materialization ----------------------------------

    def submit_block(
        self,
        block: np.ndarray,
        seed: int,
        edge_flip: str = "stream",
        *,
        sleep_s: float = 0.0,
        crash: bool = False,
    ) -> Future:
        """Fan one block of global sample indices out to the pool.

        Low-level primitive used by the landing loops (and the
        supervisor's speculative re-execution).  The block is assigned
        an output-arena extent here; the returned future resolves to the
        block *descriptor* — pass it to :meth:`_materialize` to obtain
        the zero-copy ``(flat, sizes, edges)`` views plus checksum.
        """
        self._require_open()
        if self._pool is None:
            raise ParallelEngineError("single-worker engine has no pool")
        self.stats.tasks_submitted += 1
        extent = self._reserve_extent(len(block))
        wire = (
            None
            if extent is None
            else (self._arena[extent[0]]["seg"].name, extent[1], extent[2])
        )
        fut = self._pool.submit(
            _worker_block,
            block,
            seed,
            edge_flip,
            wire,
            self._mutate_stream_offset,
            self._mutate_arena_overlap,
            self._mutate_fused_drop,
            crash,
            sleep_s,
        )
        fut._arena_extent = extent
        self._inflight.add(fut)
        fut.add_done_callback(self._inflight.discard)
        return fut

    def _materialize(self, fut: Future, timeout: float | None = None):
        """Resolve a block future into ``(flat, sizes, edges, checksum,
        sample_s)`` — zero-copy views over the block's arena extent, or
        the inline payload on overflow (which also grows the sizing
        estimate for future extents)."""
        desc = fut.result(timeout=timeout)
        wrote, flat_len, ns, checksum, sample_s, write_s, fused, inline = desc
        st = self.stats
        st.ipc_descriptor_bytes += len(pickle.dumps(desc, protocol=-1))
        st.sample_seconds += sample_s
        st.arena_write_seconds += write_s
        if not fused:
            self._invalidate_fused("worker produced an unfused block")
        elif flat_len:
            self._fused_incidences += flat_len
        self._note_block_size(ns, _extent_need(flat_len, ns))
        if wrote:
            seg_idx, off, _cap = fut._arena_extent
            buf = self._arena[seg_idx]["seg"].buf
            flat = np.ndarray(flat_len, dtype=np.int32, buffer=buf, offset=off)
            off_sz = off + _align8(flat_len * 4)
            sizes = np.ndarray(ns, dtype=np.int64, buffer=buf, offset=off_sz)
            edges = np.ndarray(
                ns, dtype=np.int64, buffer=buf, offset=off_sz + ns * 8
            )
        else:
            st.arena_overflows += 1
            flat, sizes, edges = inline
        return flat, sizes, edges, checksum, sample_s

    def worker_pids(self) -> list[int]:
        """Live worker pids of the current pool (spawning it if lazy).

        Real fault injection needs actual victims: the supervisor sends
        SIGKILL to one of these.  ``ProcessPoolExecutor`` starts all
        workers on the first submit, so after one ping the private
        ``_processes`` map is fully populated.
        """
        self._require_open()
        if self._pool is None:
            return []
        self._pool.submit(_worker_ping).result()
        return sorted(self._pool._processes.keys())

    # -- sampling ------------------------------------------------------------

    def sample_into(
        self,
        collection: RRRCollection,
        sample_indices: np.ndarray,
        seed: int,
        *,
        edge_flip: str = "stream",
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Generate the given global sample indices into ``collection``.

        Same contract as :meth:`BatchedRRRSampler.sample_into`; returns
        the per-sample examined-edge counts aligned with
        ``sample_indices``.  Blocks land in index order, so the
        collection is bit-identical to the serial engines' output.
        """
        self._require_open()
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if self._pool is None or len(sample_indices) == 0:
            return self._local.sample_into(
                collection, sample_indices, seed, edge_flip=edge_flip
            )
        total = len(sample_indices)
        self._maybe_reset_fused(collection, sample_indices)
        self._maybe_reset_arena(total)
        # Batched checksum handshake: one vectorized pass derives every
        # block's expected checksum; the worker's answer rides back in
        # the block descriptor — no separate round trip.
        seeds_arr = stream_seeds_array(seed, sample_indices)
        chunk = chunk_size or self.chunk_size
        policy = (
            None if chunk is not None else AdaptiveChunkPolicy(total, self.workers)
        )
        self.stats.chunk_initial = chunk if chunk else policy.initial
        eager = self._mutate_land_order == "reversed"
        window = total if eager else 2 * self.workers + 2
        blocks: list[tuple[int, int]] = []  # planned (start, stop) spans
        expected: list[int] = []
        futures: list[Future] = []
        pos = 0
        next_land = 0
        per_sample = np.empty(total, dtype=np.int64)

        def plan_and_submit() -> None:
            nonlocal pos
            while pos < total and len(futures) - next_land < window:
                size = chunk if chunk is not None else policy.next_size()
                stop = min(total, pos + size)
                block = sample_indices[pos:stop]
                expected.append(fold_stream_seeds(seeds_arr[pos:stop]))
                futures.append(
                    self.submit_block(
                        block, seed, edge_flip,
                        crash=len(futures) == self._crash_block,
                    )
                )
                blocks.append((pos, stop))
                pos = stop
                # the policy's settled size, not the clipped tail block
                self.stats.chunk_final = size

        # Per-submission deadline: the watchdog clock starts when the work
        # is submitted and is refreshed only by *progress* (a block landing),
        # so each wait sees the remaining budget — a hung block ``i`` can no
        # longer consume ``i x task_timeout`` wall-clock by restarting the
        # clock at every ``result()`` call.
        deadline = (
            time.monotonic() + self.task_timeout
            if self.task_timeout is not None
            else None
        )

        def land(bi: int) -> None:
            nonlocal deadline
            lo, hi = blocks[bi]
            try:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                flat, sizes, edges, checksum, sample_s = self._materialize(
                    futures[bi], timeout=remaining
                )
            except BrokenProcessPool as exc:
                self.close()
                raise WorkerCrashError(
                    f"worker died while sampling block {bi} [{lo}, {hi}); "
                    "shared memory unlinked"
                ) from exc
            except _FuturesTimeout as exc:
                self.close()
                raise WorkerCrashError(
                    f"block {bi} exhausted the remaining task_timeout budget "
                    f"(task_timeout={self.task_timeout}s since last progress); "
                    "pool shut down, shared memory unlinked"
                ) from exc
            if checksum != expected[bi]:
                self.close()
                raise EngineProtocolError(
                    f"block {bi} stream-checksum mismatch: the worker did not "
                    "sample the global indices it was sent"
                )
            t0 = time.perf_counter()
            collection.append_batch(flat, sizes, total=len(flat))
            self.stats.landing_seconds += time.perf_counter() - t0
            per_sample[lo : lo + len(edges)] = edges
            self.stats.blocks_landed += 1
            if policy is not None:
                policy.observe(hi - lo, sample_s)
            if deadline is not None:  # progress resets the watchdog
                deadline = time.monotonic() + self.task_timeout

        try:
            if eager:
                plan_and_submit()  # window == total: everything at once
                for bi in reversed(range(len(futures))):
                    land(bi)
                return per_sample
            while pos < total or next_land < len(futures):
                plan_and_submit()
                land(next_land)
                next_land += 1
        except BrokenProcessPool as exc:  # raised at submission time
            self.close()
            raise WorkerCrashError(
                "worker pool broke during block submission; "
                "shared memory unlinked"
            ) from exc
        return per_sample

    # -- selection counting kernel -------------------------------------------

    def count_partitioned(self, flat: np.ndarray, minlength: int) -> np.ndarray:
        """Partitioned replacement for ``np.bincount(flat, minlength)``.

        Three paths, exact and bit-identical by construction:

        1. **Fused merge** — when every incidence of ``flat`` was
           accumulated block-by-block in the workers' counter rows (the
           books balance: same incidence total, no crash/speculation/
           abandonment since the epoch began, nothing in flight), the
           answer is one column sum of the ``w`` partial counters —
           no flat bytes cross a process boundary at all.
        2. **Partitioned ship** — otherwise, ``flat`` is split into
           ``workers`` contiguous blocks, each bincounted in a worker,
           summed in the parent (integer addition is exact).
        3. **Serial** — no pool, small arrays, or a crash mid-count
           (logged and counted in ``stats.count_fallbacks``; the broken
           pool is left for the next sampling call — or the supervisor
           — to deal with).
        """
        self._require_open()
        flat = np.asarray(flat)
        if (
            self._pool is not None
            and self._fused_valid
            and self._counter_matrix is not None
            and minlength == self.graph.n
            and len(flat) == self._fused_incidences
            and not self._inflight
        ):
            t0 = time.perf_counter()
            total = self._counter_matrix.sum(axis=0)
            if self._fused_parent is not None:
                total = total + self._fused_parent
            self.stats.count_merge_seconds += time.perf_counter() - t0
            self.stats.fused_count_merges += 1
            return total
        if self._pool is None or len(flat) < PARALLEL_COUNT_THRESHOLD:
            return np.bincount(flat, minlength=minlength)
        bounds = np.linspace(0, len(flat), self.workers + 1, dtype=np.int64)
        try:
            futures = [
                self._pool.submit(_worker_count, flat[lo:hi], minlength)
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            self.stats.tasks_submitted += len(futures)
            total = np.zeros(minlength, dtype=np.int64)
            deadline = (
                time.monotonic() + self.task_timeout
                if self.task_timeout is not None
                else None
            )
            for fut in futures:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                total += fut.result(timeout=remaining)
                if deadline is not None:
                    deadline = time.monotonic() + self.task_timeout
        except (BrokenProcessPool, _FuturesTimeout) as exc:
            self.stats.count_fallbacks += 1
            _log.warning(
                "partitioned counting degraded to serial bincount after %s "
                "(fallback #%d); result is exact either way",
                type(exc).__name__,
                self.stats.count_fallbacks,
            )
            return np.bincount(flat, minlength=minlength)
        return total

    def count_collection(self, collection, minlength: int) -> np.ndarray:
        """Counting kernel for coded layouts: fused-histogram merge.

        The fused per-worker counter rows riding the descriptor protocol
        already *are* the global frequency histogram of every landed
        incidence, so when the books balance (same conditions as
        :meth:`count_partitioned` path 1, with the incidence total read
        off the collection instead of a flat array) the compressed
        layout's counting pass is one column sum — no decode, no flat
        bytes.  Otherwise the collection counts off its own coded
        stream; both paths are exact integer counts, bit-identical to a
        serial bincount of the original ids.
        """
        self._require_open()
        if (
            self._pool is not None
            and self._fused_valid
            and self._counter_matrix is not None
            and minlength == self.graph.n
            and collection.total_entries == self._fused_incidences
            and not self._inflight
        ):
            t0 = time.perf_counter()
            total = self._counter_matrix.sum(axis=0)
            if self._fused_parent is not None:
                total = total + self._fused_parent
            self.stats.count_merge_seconds += time.perf_counter() - t0
            self.stats.fused_count_merges += 1
            return total
        return collection.counters()
