"""Real multicore RRR sampling: a shared-memory process-pool engine.

Everything above this module so far *modeled* parallel time; this module
actually uses the cores.  The design follows the shared-memory scaling
recipe of Ripples/HBMax (read-only CSR + embarrassingly parallel sample
blocks + partitioned counting), adapted to a Python substrate where the
unit of parallelism must be a *process* (the GIL rules out threads for
NumPy-dispatch-bound kernels):

* The graph's reverse-CSR arrays (``in_indptr``/``in_indices``/
  ``in_probs``) — plus, for LT, the precomputed per-vertex cumulative
  weight table — are placed in :mod:`multiprocessing.shared_memory`
  **once** at engine construction.  Workers attach zero-copy NumPy views;
  no graph bytes are pickled per task.
* ``sample_into`` splits the global sample indices into contiguous
  blocks ``[lo, hi)`` and fans them out to ``w`` workers.  Each worker
  runs the existing :class:`~repro.sampling.batched.BatchedRRRSampler`
  cohort kernel against the shared CSR and returns ``(flat, sizes,
  edges)`` buffers; the parent lands the blocks **in index order** via
  ``append_batch``.
* ``count_partitioned`` parallelizes the first counting pass of
  Algorithm 4: each worker bincounts its contiguous block of the flat
  incidence array into a private counter vector, and the parent reduces
  by summation — integer addition is exact and associative, so the
  result equals the serial ``np.bincount`` bit for bit.

Determinism contract
--------------------
Sample ``j`` is a pure function of ``(graph, model, seed, j)`` (the
counter-addressed stream discipline of :mod:`repro.rng.streams`), and the
parent lands blocks in index order — so the produced collection is
**bit-identical** to the serial and batched engines for every worker
count, chunk size, and start method.  ``repro-imm validate`` enforces
this, and two mutation hooks below exist so the mutation suite can prove
the oracle would catch the characteristic failure modes:

``_mutate_land_order="reversed"``
    the parent lands blocks in reverse index order (a completion-order
    landing bug's deterministic stand-in);
``_mutate_stream_offset=True``
    workers sample local ``[0, hi-lo)`` indices instead of the global
    block (the classic lost-offset bug).  The mutation deliberately
    leaves the protocol checksum computed from the *received* indices,
    modeling a bug inside the sampling call itself — the engine's own
    checksum handshake (:func:`repro.rng.streams.stream_checksum`)
    already rejects disagreements at the protocol layer.

Cleanup discipline
------------------
The parent owns every shared-memory segment: ``close()`` (idempotent,
also invoked by ``__exit__``, ``__del__``, and every error path) shuts
the pool down and unlinks all segments.  Pool workers share the parent's
``resource_tracker`` process (its fd rides along under both ``fork`` and
``spawn``), and the tracker's cache is a set — so a worker's attach-time
re-registration is a no-op and the parent's single unlink-time
unregistration leaves the cache clean.  Workers must therefore *not*
unregister segments themselves (that would race the parent's cleanup);
the test suite asserts the net effect — no ``resource_tracker`` warnings
or "leaked shared_memory" messages — by scanning a subprocess's stderr.

Failure modes raise typed errors, never hang: a dead worker surfaces as
:class:`WorkerCrashError` (via the executor's broken-pool detection or
the per-block ``task_timeout``), and a stream-addressing disagreement as
:class:`EngineProtocolError`.
"""

from __future__ import annotations

import logging
import math
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..rng.streams import stream_checksum
from .batched import BatchedRRRSampler
from .collection import RRRCollection
from .rrr import in_edge_cumweights

__all__ = [
    "ParallelSamplingEngine",
    "ParallelEngineError",
    "WorkerCrashError",
    "EngineProtocolError",
    "EngineStats",
]

_log = logging.getLogger(__name__)

#: Below this many incidences, ``count_partitioned`` stays serial — the
#: pickle+IPC round trip costs more than the bincount it would save.
PARALLEL_COUNT_THRESHOLD = 1 << 15


class ParallelEngineError(RuntimeError):
    """Base class for process-pool sampling-engine failures."""


class WorkerCrashError(ParallelEngineError):
    """A worker died (or timed out) mid-block; the engine is closed."""


class EngineProtocolError(ParallelEngineError):
    """Parent and worker disagree on a block's stream identities."""


@dataclass
class EngineStats:
    """Operational counters of one engine instance.

    The supervisor (:mod:`repro.sampling.supervisor`) extends these with
    recovery counters; the plain engine only tracks the work it routed
    and the counting-kernel fallbacks it took.
    """

    blocks_landed: int = 0
    tasks_submitted: int = 0
    #: ``count_partitioned`` calls that degraded to a serial bincount
    #: because a worker crashed or timed out mid-count.
    count_fallbacks: int = 0

    def as_dict(self) -> dict:
        return {
            "blocks_landed": self.blocks_landed,
            "tasks_submitted": self.tasks_submitted,
            "count_fallbacks": self.count_fallbacks,
        }


# ---------------------------------------------------------------------------
# worker-side code (module-level so every start method can pickle it)
# ---------------------------------------------------------------------------

#: Per-worker state installed by :func:`_worker_init`.
_WORKER: dict | None = None


def _worker_init(payload: dict) -> None:
    """Pool initializer: attach the shared CSR and build the sampler.

    Attaching re-registers each segment with the resource tracker the
    worker shares with the parent — a set-insert no-op.  Ownership stays
    with the parent (create + unlink); workers only hold views.
    """
    global _WORKER
    views: dict[str, np.ndarray] = {}
    segments: list[_shm.SharedMemory] = []
    for key, (name, shape, dtype) in payload["arrays"].items():
        seg = _shm.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        arr.flags.writeable = False  # the CSR is read-only by contract
        views[key] = arr
        segments.append(seg)
    # The sampler only touches the in-direction and ``n``; aliasing the
    # out-direction to the same arrays satisfies the CSRGraph constructor
    # without shipping bytes the kernels never read.
    graph = CSRGraph(
        payload["n"],
        views["in_indptr"],
        views["in_indices"],
        views["in_probs"],
        views["in_indptr"],
        views["in_indices"],
        views["in_probs"],
    )
    sampler = BatchedRRRSampler(
        graph, payload["model"], max_cohort=payload["max_cohort"]
    )
    if "lt_cum" in views:
        sampler._lt_cum = views["lt_cum"]  # shared, bit-equal to a local build
    _WORKER = {"sampler": sampler, "segments": segments}


def _worker_block(
    indices: np.ndarray,
    seed: int,
    edge_flip: str,
    mutate_offset: bool,
    crash: bool,
    sleep_s: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Sample one block of global indices; return flat buffers + checksum."""
    if crash:  # test/mutation hook: simulate a worker dying mid-block
        os._exit(1)
    if sleep_s > 0.0:  # injected straggler: the worker stalls, then answers
        time.sleep(sleep_s)
    assert _WORKER is not None, "worker initializer did not run"
    sampler: BatchedRRRSampler = _WORKER["sampler"]
    checksum = stream_checksum(seed, indices)
    if mutate_offset:
        indices = indices - indices[0]  # the injected lost-offset bug
    flats: list[np.ndarray] = []
    sizes: list[np.ndarray] = []
    edges: list[np.ndarray] = []
    for lo in range(0, len(indices), sampler.max_cohort):
        v, s, e = sampler.sample_cohort(
            indices[lo : lo + sampler.max_cohort], seed, edge_flip=edge_flip
        )
        flats.append(v)
        sizes.append(s)
        edges.append(e)
    return (
        np.concatenate(flats) if flats else np.empty(0, dtype=np.int32),
        np.concatenate(sizes) if sizes else np.empty(0, dtype=np.int64),
        np.concatenate(edges) if edges else np.empty(0, dtype=np.int64),
        checksum,
    )


def _worker_count(block: np.ndarray, minlength: int) -> np.ndarray:
    """Private bincount of one contiguous block of the incidence array."""
    return np.bincount(block, minlength=minlength)


def _worker_ping() -> int:
    """Identify the answering worker (used to pre-spawn and enumerate)."""
    return os.getpid()


# ---------------------------------------------------------------------------
# parent-side engine
# ---------------------------------------------------------------------------


class ParallelSamplingEngine:
    """Process-pool RRR sampling over a shared-memory CSR.

    Drop-in alternative to :class:`BatchedRRRSampler` for the batch
    drivers: it exposes the same ``sample_into`` interface (and
    :func:`~repro.sampling.sampler.sample_batch` accepts it as
    ``sampler=``), plus the ``count_partitioned`` selection kernel.

    Parameters
    ----------
    graph, model:
        The input graph and diffusion model.
    workers:
        Pool size.  ``workers=1`` degenerates to the in-process batched
        sampler — no pool, no shared memory, no IPC.
    chunk_size:
        Samples per fan-out block.  ``None`` picks ``count / (4·w)``
        per call (at least one cohort) so each worker sees several
        blocks for load balance.  Results never depend on it.
    max_cohort:
        Forwarded to every worker's :class:`BatchedRRRSampler`.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"`` or ``None`` for the
        platform default.  Output is bit-identical across all of them.
    task_timeout:
        Seconds to wait for any single block before declaring the pool
        wedged (:class:`WorkerCrashError`).  ``None`` waits forever.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: DiffusionModel | str,
        *,
        workers: int,
        chunk_size: int | None = None,
        max_cohort: int | None = None,
        start_method: str | None = None,
        task_timeout: float | None = 300.0,
        _mutate_land_order: str | None = None,
        _mutate_stream_offset: bool = False,
        _crash_block: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.graph = graph
        self.model = DiffusionModel.parse(model)
        self.workers = workers
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self._mutate_land_order = _mutate_land_order
        self._mutate_stream_offset = _mutate_stream_offset
        self._crash_block = _crash_block
        self._closed = False
        self._segments: list[_shm.SharedMemory] = []
        self._pool: ProcessPoolExecutor | None = None
        self._payload: dict | None = None
        self._mp_ctx = None
        self.stats = EngineStats()
        # LT: one cumulative-weight table, built once and shared with
        # every worker (bit-equal to what each would build locally).
        self._lt_cum = (
            in_edge_cumweights(graph) if self.model is DiffusionModel.LT else None
        )
        self._local = BatchedRRRSampler(graph, self.model, max_cohort=max_cohort)
        if self._lt_cum is not None:
            self._local._lt_cum = self._lt_cum
        if workers == 1:
            return  # in-process degenerate mode: nothing else to set up
        arrays = {
            "in_indptr": graph.in_indptr,
            "in_indices": graph.in_indices,
            "in_probs": graph.in_probs,
        }
        if self._lt_cum is not None:
            arrays["lt_cum"] = self._lt_cum
        spec: dict[str, tuple[str, tuple, str]] = {}
        try:
            for key, arr in arrays.items():
                seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
                self._segments.append(seg)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[:] = arr
                spec[key] = (seg.name, tuple(arr.shape), arr.dtype.str)
            self._payload = {
                "arrays": spec,
                "n": graph.n,
                "model": self.model.value,
                "max_cohort": self._local.max_cohort,
            }
            self._mp_ctx = get_context(start_method)
            self._pool = self.spawn_pool()
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __enter__(self) -> "ParallelSamplingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ParallelEngineError("engine is closed")

    # -- pool lifecycle (the supervisor's recovery primitives) ---------------

    def spawn_pool(self, *, warm: bool = False) -> ProcessPoolExecutor:
        """A fresh worker pool attached to this engine's shared segments.

        The pool is *not* installed — it is returned for the caller to
        hold (the supervisor keeps pre-spawned spares this way) or to
        pass to :meth:`rebuild_pool`.  ``warm=True`` forces the worker
        processes to actually start (and run the shm-attach initializer)
        before returning, so a later promotion costs no fork.
        """
        if self._payload is None:
            raise ParallelEngineError("single-worker engine has no pool to spawn")
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_ctx,
            initializer=_worker_init,
            initargs=(self._payload,),
        )
        if warm:
            # One submit makes the executor fork all max_workers at once;
            # waiting on it guarantees at least one initializer finished.
            pool.submit(_worker_ping).result()
        return pool

    def rebuild_pool(self, pool: ProcessPoolExecutor | None = None) -> None:
        """Replace the current (possibly broken) pool.

        The dead pool is shut down without touching the shared segments —
        ownership of those never moves — and ``pool`` (or a freshly
        spawned one) is installed in its place.  Outstanding futures of
        the old pool are cancelled; the caller re-submits whatever it
        still needs (deterministic replay makes that safe).
        """
        self._require_open()
        if self._payload is None:
            raise ParallelEngineError("single-worker engine has no pool to rebuild")
        old, self._pool = self._pool, None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self._pool = pool if pool is not None else self.spawn_pool()

    def submit_block(
        self,
        block: np.ndarray,
        seed: int,
        edge_flip: str = "stream",
        *,
        sleep_s: float = 0.0,
        crash: bool = False,
    ) -> Future:
        """Fan one block of global sample indices out to the pool.

        Low-level primitive used by the supervisor's landing loop (and
        its speculative re-execution).  The returned future resolves to
        ``(flat, sizes, edges, checksum)`` exactly as the blocks inside
        :meth:`sample_into` do.
        """
        self._require_open()
        if self._pool is None:
            raise ParallelEngineError("single-worker engine has no pool")
        self.stats.tasks_submitted += 1
        return self._pool.submit(
            _worker_block,
            block,
            seed,
            edge_flip,
            self._mutate_stream_offset,
            crash,
            sleep_s,
        )

    def worker_pids(self) -> list[int]:
        """Live worker pids of the current pool (spawning it if lazy).

        Real fault injection needs actual victims: the supervisor sends
        SIGKILL to one of these.  ``ProcessPoolExecutor`` starts all
        workers on the first submit, so after one ping the private
        ``_processes`` map is fully populated.
        """
        self._require_open()
        if self._pool is None:
            return []
        self._pool.submit(_worker_ping).result()
        return sorted(self._pool._processes.keys())

    # -- sampling ------------------------------------------------------------

    def sample_into(
        self,
        collection: RRRCollection,
        sample_indices: np.ndarray,
        seed: int,
        *,
        edge_flip: str = "stream",
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Generate the given global sample indices into ``collection``.

        Same contract as :meth:`BatchedRRRSampler.sample_into`; returns
        the per-sample examined-edge counts aligned with
        ``sample_indices``.  Blocks land in index order, so the
        collection is bit-identical to the serial engines' output.
        """
        self._require_open()
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if self._pool is None or len(sample_indices) == 0:
            return self._local.sample_into(
                collection, sample_indices, seed, edge_flip=edge_flip
            )
        chunk = chunk_size or self.chunk_size
        if chunk is None:
            chunk = max(
                self._local.max_cohort,
                math.ceil(len(sample_indices) / (4 * self.workers)),
            )
        blocks = [
            sample_indices[lo : lo + chunk]
            for lo in range(0, len(sample_indices), chunk)
        ]
        starts = [lo for lo in range(0, len(sample_indices), chunk)]
        expected = [stream_checksum(seed, b) for b in blocks]
        futures = [
            self._pool.submit(
                _worker_block,
                block,
                seed,
                edge_flip,
                self._mutate_stream_offset,
                i == self._crash_block,
            )
            for i, block in enumerate(blocks)
        ]
        self.stats.tasks_submitted += len(futures)
        per_sample = np.empty(len(sample_indices), dtype=np.int64)
        order = range(len(futures))
        if self._mutate_land_order == "reversed":
            order = reversed(range(len(futures)))
        # Per-submission deadline: the watchdog clock starts when the work
        # is submitted and is refreshed only by *progress* (a block landing),
        # so each wait sees the remaining budget — a hung block ``i`` can no
        # longer consume ``i x task_timeout`` wall-clock by restarting the
        # clock at every ``result()`` call.
        deadline = (
            time.monotonic() + self.task_timeout
            if self.task_timeout is not None
            else None
        )
        for bi in order:
            try:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                flat, sizes, edges, checksum = futures[bi].result(timeout=remaining)
            except BrokenProcessPool as exc:
                self.close()
                raise WorkerCrashError(
                    f"worker died while sampling block {bi} "
                    f"[{starts[bi]}, {starts[bi] + len(blocks[bi])}); "
                    "shared memory unlinked"
                ) from exc
            except _FuturesTimeout as exc:
                self.close()
                raise WorkerCrashError(
                    f"block {bi} exhausted the remaining task_timeout budget "
                    f"(task_timeout={self.task_timeout}s since last progress); "
                    "pool shut down, shared memory unlinked"
                ) from exc
            if checksum != expected[bi]:
                self.close()
                raise EngineProtocolError(
                    f"block {bi} stream-checksum mismatch: the worker did not "
                    "sample the global indices it was sent"
                )
            collection.append_batch(flat, sizes)
            per_sample[starts[bi] : starts[bi] + len(edges)] = edges
            self.stats.blocks_landed += 1
            if deadline is not None:  # progress resets the watchdog
                deadline = time.monotonic() + self.task_timeout
        return per_sample

    # -- selection counting kernel -------------------------------------------

    def count_partitioned(self, flat: np.ndarray, minlength: int) -> np.ndarray:
        """Partitioned replacement for ``np.bincount(flat, minlength)``.

        Splits ``flat`` into ``workers`` contiguous blocks, bincounts
        each in a worker's private vector, and sums in the parent —
        exact integer arithmetic, so the result is bit-identical to the
        serial bincount.  Falls back to serial when the pool is absent
        or the array is too small to amortize the IPC.

        Unlike sampling, the exact answer is always computable in the
        parent, so a worker crash or timeout mid-count **degrades to the
        serial bincount** instead of raising
        :class:`WorkerCrashError`: the fallback is logged, counted in
        ``stats.count_fallbacks``, and the result is identical by
        construction.  (The broken pool is left for the next sampling
        call — or the supervisor — to deal with.)
        """
        self._require_open()
        flat = np.asarray(flat)
        if self._pool is None or len(flat) < PARALLEL_COUNT_THRESHOLD:
            return np.bincount(flat, minlength=minlength)
        bounds = np.linspace(0, len(flat), self.workers + 1, dtype=np.int64)
        try:
            futures = [
                self._pool.submit(_worker_count, flat[lo:hi], minlength)
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            self.stats.tasks_submitted += len(futures)
            total = np.zeros(minlength, dtype=np.int64)
            deadline = (
                time.monotonic() + self.task_timeout
                if self.task_timeout is not None
                else None
            )
            for fut in futures:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                total += fut.result(timeout=remaining)
                if deadline is not None:
                    deadline = time.monotonic() + self.task_timeout
        except (BrokenProcessPool, _FuturesTimeout) as exc:
            self.stats.count_fallbacks += 1
            _log.warning(
                "partitioned counting degraded to serial bincount after %s "
                "(fallback #%d); result is exact either way",
                type(exc).__name__,
                self.stats.count_fallbacks,
            )
            return np.bincount(flat, minlength=minlength)
        return total
