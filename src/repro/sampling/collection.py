"""RRR-set storage layouts: the heart of the IMM vs IMM\\ :sup:`OPT` gap.

Section 3.1 of the paper: previous implementations (Tang et al.) store
the sampled hypergraph *in two directions* — each RRR set as a hyperedge
(its vertex list) **and**, per vertex, the list of samples it appears in.
Every incidence is therefore stored twice.  The paper's optimized layout
stores only the forward direction, with each vertex list **sorted by
id**, which

1. halves the incidence storage (Table 2 reports 18–58 % total savings
   once per-container overhead is included),
2. lets a thread that owns the vertex interval ``[vl, vh)`` find its
   slice of every sample with two binary searches instead of a full
   scan, and
3. keeps the counting loop of Algorithm 4 cache-ordered.

Both layouts are implemented here behind a small common interface so the
seed-selection routines and the Table 2 benchmark can compare them like
for like.  Byte accounting mimics the C++ containers of the original
implementations (a ``std::vector`` header of 24 bytes plus 4-byte vertex
ids / 8-byte sample ids), since Python object overhead would say nothing
about the layouts themselves; see :mod:`repro.perf.memory`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["RRRCollection", "SortedRRRCollection", "HypergraphRRRCollection"]

#: Modeled per-container overhead (a C++ ``std::vector`` header: pointer,
#: size, capacity).
VECTOR_HEADER_BYTES = 24
#: Modeled bytes per stored vertex id (``int32``).
VERTEX_ID_BYTES = 4
#: Modeled bytes per stored sample id in the inverted index (``int64``,
#: since theta routinely exceeds 2**31 on the paper's largest runs).
SAMPLE_ID_BYTES = 8


class RRRCollection:
    """Interface shared by the two storage layouts.

    A collection is append-only during sampling; seed selection consumes
    it read-only (logical deletion of covered samples happens in the
    selection routines via masks, matching the paper's "purge" being a
    bookkeeping operation rather than physical compaction).
    """

    def append(self, vertices: np.ndarray) -> None:
        """Add one RRR set (a sorted ``int32`` vertex array)."""
        raise NotImplementedError

    def extend(self, sets: Sequence[np.ndarray]) -> None:
        """Add many RRR sets."""
        for verts in sets:
            self.append(verts)

    def append_batch(
        self, flat: np.ndarray, sizes: np.ndarray, *, total: int | None = None
    ) -> None:
        """Add many RRR sets given as concatenated vertices + lengths.

        ``flat`` holds the samples back to back; sample ``i`` occupies
        the next ``sizes[i]`` entries.  ``total`` (when given) is the
        caller-asserted incidence count — landing paths that already
        carry it in a block descriptor pass it so contiguous layouts can
        skip the ``sizes.sum()`` reduction; it is still cross-checked
        against ``len(flat)``.  The generic implementation splits and
        appends one by one; layouts with contiguous storage override it
        with a bulk copy (the cohort sampler's fast path).
        """
        start = 0
        for size in np.asarray(sizes, dtype=np.int64):
            size = int(size)
            self.append(flat[start : start + size])
            start += size

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[np.ndarray]:
        raise NotImplementedError

    @property
    def total_entries(self) -> int:
        """Total number of (sample, vertex) incidences stored."""
        raise NotImplementedError

    def nbytes_model(self) -> int:
        """Modeled resident bytes of this layout (see module docstring)."""
        raise NotImplementedError


class SortedRRRCollection(RRRCollection):
    """One-directional layout: each sample once, vertices sorted by id.

    Storage is three growable flat buffers (amortized doubling, the HBMax
    reorganization applied to our NumPy substrate) — no per-sample Python
    objects at all:

    ``flat``
        All vertex ids, samples concatenated in insertion order.
    ``indptr``
        Sample boundaries: sample ``i`` is ``flat[indptr[i]:indptr[i+1]]``.
    ``sample_of``
        The owning sample index of each ``flat`` entry.

    :meth:`flattened` returns zero-copy views of the live buffers, so no
    cache invalidation exists to get wrong: alternating sampling and
    selection phases (as ``EstimateTheta`` does) never re-concatenates
    anything, and :meth:`append_batch` lands a whole sampler cohort with
    a handful of bulk copies.
    """

    _INITIAL_ENTRIES = 1024
    _INITIAL_SAMPLES = 64

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self._flat = np.empty(self._INITIAL_ENTRIES, dtype=np.int64)
        self._sample_of = np.empty(self._INITIAL_ENTRIES, dtype=np.int64)
        self._indptr = np.empty(self._INITIAL_SAMPLES + 1, dtype=np.int64)
        self._indptr[0] = 0
        self._num = 0
        self._entries = 0

    # -- growable buffers ---------------------------------------------------

    def _reserve(self, extra_entries: int, extra_samples: int) -> None:
        """Grow the flat buffers to fit ``extra_*`` more (doubling)."""
        need = self._entries + extra_entries
        if need > len(self._flat):
            cap = max(need, 2 * len(self._flat))
            for name in ("_flat", "_sample_of"):
                grown = np.empty(cap, dtype=np.int64)
                grown[: self._entries] = getattr(self, name)[: self._entries]
                setattr(self, name, grown)
        need = self._num + extra_samples + 1
        if need > len(self._indptr):
            cap = max(need, 2 * len(self._indptr))
            grown = np.empty(cap, dtype=np.int64)
            grown[: self._num + 1] = self._indptr[: self._num + 1]
            self._indptr = grown

    # -- appends ------------------------------------------------------------

    def append(self, vertices: np.ndarray) -> None:
        vertices = np.asarray(vertices)
        if len(vertices) == 0:
            raise ValueError("an RRR set always contains at least its root")
        if len(vertices) > 1 and np.any(np.diff(vertices) <= 0):
            raise ValueError("RRR vertex lists must be sorted and duplicate-free")
        if vertices[0] < 0 or int(vertices[-1]) >= self.n:
            raise ValueError("RRR vertex id out of range")
        size = len(vertices)
        self._reserve(size, 1)
        e = self._entries
        self._flat[e : e + size] = vertices
        self._sample_of[e : e + size] = self._num
        self._indptr[self._num + 1] = e + size
        self._num += 1
        self._entries += size

    def append_batch(
        self, flat: np.ndarray, sizes: np.ndarray, *, total: int | None = None
    ) -> None:
        """Bulk append: one cohort of samples in a few array copies.

        ``flat``/``sizes`` may be zero-copy views over a shared-memory
        arena extent — the copy below is the only one the landing path
        performs.  A caller-supplied ``total`` (from a block descriptor)
        is cross-checked against the sizes reduction, so a descriptor
        that disagrees with its own payload is rejected at landing time
        instead of corrupting the buffers.
        """
        flat = np.asarray(flat)
        sizes = np.asarray(sizes, dtype=np.int64)
        if len(sizes) == 0:
            return
        if np.any(sizes <= 0):
            raise ValueError("an RRR set always contains at least its root")
        actual = int(sizes.sum())
        if total is not None and total != actual:
            raise ValueError("declared total disagrees with the sizes payload")
        total = actual
        if len(flat) != total:
            raise ValueError("flat length must equal the sum of sizes")
        if int(flat.min()) < 0 or int(flat.max()) >= self.n:
            raise ValueError("RRR vertex id out of range")
        if total > len(sizes):  # any sample longer than 1 => check sortedness
            # A pair with diff <= 0 is non-*increasing* (a within-sample
            # duplicate or inversion); pairs straddling a sample boundary
            # are exempt, so a vertex may legitimately repeat across
            # consecutive samples.
            nonincreasing = np.diff(flat) <= 0
            boundary = np.zeros(total - 1, dtype=bool)
            boundary[np.cumsum(sizes[:-1]) - 1] = True
            if np.any(nonincreasing & ~boundary):
                raise ValueError("RRR vertex lists must be sorted and duplicate-free")
        count = len(sizes)
        self._reserve(total, count)
        e, s = self._entries, self._num
        self._flat[e : e + total] = flat
        self._sample_of[e : e + total] = np.repeat(
            np.arange(s, s + count, dtype=np.int64), sizes
        )
        np.cumsum(sizes, out=self._indptr[s + 1 : s + 1 + count])
        self._indptr[s + 1 : s + 1 + count] += e
        self._num += count
        self._entries += total

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return self._num

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self._num):
            yield self._flat[self._indptr[i] : self._indptr[i + 1]]

    def __getitem__(self, i: int) -> np.ndarray:
        if not -self._num <= i < self._num:
            raise IndexError(f"sample index {i} out of range")
        i %= self._num
        return self._flat[self._indptr[i] : self._indptr[i + 1]]

    @property
    def total_entries(self) -> int:
        return self._entries

    def flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(flat, indptr, sample_of)`` as zero-copy views.

        The views snapshot the current contents: appends past this call
        either write beyond the views' ends or into fresh buffers after
        a growth reallocation — in both cases the returned arrays stay
        valid and unchanged.
        """
        return (
            self._flat[: self._entries],
            self._indptr[: self._num + 1],
            self._sample_of[: self._entries],
        )

    def counters(self) -> np.ndarray:
        """Per-vertex sample membership counts (the first counting step of
        Algorithm 4), as an ``int64`` array of length ``n``."""
        flat, _, _ = self.flattened()
        return np.bincount(flat, minlength=self.n)

    def nbytes_model(self) -> int:
        """One vector header per sample + 4 bytes per incidence + the
        outer vector-of-vectors header (modeling the C++ equivalent)."""
        return (
            VECTOR_HEADER_BYTES
            + self._num * VECTOR_HEADER_BYTES
            + self._entries * VERTEX_ID_BYTES
        )


class HypergraphRRRCollection(RRRCollection):
    """Two-directional hypergraph layout of the reference implementation.

    In addition to the sample -> vertex lists, an inverted index
    ``vertex -> samples containing it`` is maintained incrementally at
    append time, exactly like the reference code updates its hypergraph
    while sampling.  Seed selection via the inverted index avoids scans
    but the incidence data is held twice (the memory cost the paper's
    layout eliminates).
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self._sets: list[np.ndarray] = []
        self._entries = 0
        self._inverted: list[list[int]] = [[] for _ in range(n)]

    def append(self, vertices: np.ndarray) -> None:
        vertices = np.asarray(vertices, dtype=np.int32)
        if len(vertices) == 0:
            raise ValueError("an RRR set always contains at least its root")
        if vertices.min() < 0 or int(vertices.max()) >= self.n:
            raise ValueError("RRR vertex id out of range")
        sample_id = len(self._sets)
        self._sets.append(vertices)
        self._entries += len(vertices)
        inv = self._inverted
        for v in vertices.tolist():
            inv[v].append(sample_id)

    def append_batch(
        self, flat: np.ndarray, sizes: np.ndarray, *, total: int | None = None
    ) -> None:
        """Vectorized cohort landing: one grouped inverted-index build.

        The per-set :meth:`append` grows the inverted index with a
        Python loop over every single incidence — the dominant cost when
        the cohort sampler lands thousands of sets at once.  Here the
        whole batch is grouped by vertex with one stable argsort (stable
        keeps sample ids ascending within a vertex, matching the append
        order exactly), the sample-id column is converted with a single
        bulk ``tolist``, and each vertex's inverted list is extended
        once from a list slice.  When ``n`` fits 16 bits the sort keys
        are cast to ``uint16`` so NumPy's radix argsort kicks in (int32
        falls back to timsort; the cast cuts the sort from ~25 ms to
        ~8 ms on a 660k-incidence cohort).  Same observable state as
        repeated :meth:`append`.

        Microbenchmark (com-Orkut IC, 4096-sample cohort, 660k
        incidences, best of 5): per-set loop ~50 ms, grouped build
        ~47 ms.  The modest end-to-end delta is honest: both paths
        bottom out on materializing 660k Python ints into the
        ``list[list[int]]`` index (~18 ms of bulk ``tolist`` plus list
        growth), which the representation — poked directly by tests and
        mutation hooks — pins in place.  The grouped build's win is
        that it stays all-C until that floor and no longer executes one
        interpreter iteration per incidence, so it cannot degrade when
        cohorts grow.
        """
        flat = np.asarray(flat, dtype=np.int32)
        sizes = np.asarray(sizes, dtype=np.int64)
        if len(sizes) == 0:
            return
        if sizes.min() < 1:
            raise ValueError("an RRR set always contains at least its root")
        actual = int(sizes.sum())
        if total is not None and total != actual:
            raise ValueError("declared total disagrees with the sizes payload")
        if actual != len(flat):
            raise ValueError("flat/sizes length mismatch")
        if len(flat) and (flat.min() < 0 or int(flat.max()) >= self.n):
            raise ValueError("RRR vertex id out of range")
        first_id = len(self._sets)
        bounds = np.empty(len(sizes) + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(sizes, out=bounds[1:])
        for i in range(len(sizes)):
            self._sets.append(flat[bounds[i] : bounds[i + 1]])
        self._entries += len(flat)
        # Group the (vertex, sample) incidences by vertex: a stable
        # argsort brings each vertex's incidences together with sample
        # ids still in insertion order.
        sample_of = np.repeat(
            np.arange(first_id, first_id + len(sizes), dtype=np.int64), sizes
        )
        keys = flat.astype(np.uint16) if self.n <= (1 << 16) else flat
        order = np.argsort(keys, kind="stable")
        grouped_v = flat[order]
        grouped_s = sample_of[order].tolist()
        starts = np.flatnonzero(np.diff(grouped_v, prepend=-1))
        stops = np.append(starts[1:], len(grouped_v))
        inv = self._inverted
        verts_at = grouped_v[starts].tolist()
        for v, lo, hi in zip(verts_at, starts.tolist(), stops.tolist()):
            inv[v].extend(grouped_s[lo:hi])

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._sets)

    def __getitem__(self, i: int) -> np.ndarray:
        return self._sets[i]

    @property
    def total_entries(self) -> int:
        return self._entries

    def samples_containing(self, v: int) -> list[int]:
        """The inverted-index lookup: ids of samples containing ``v``."""
        return self._inverted[v]

    def counters(self) -> np.ndarray:
        """Per-vertex membership counts read off the inverted index."""
        return np.fromiter(
            (len(lst) for lst in self._inverted), dtype=np.int64, count=self.n
        )

    def nbytes_model(self) -> int:
        """Both directions: forward lists (4 B ids) + inverted lists
        (8 B sample ids) + a vector header per sample *and* per vertex."""
        return (
            2 * VECTOR_HEADER_BYTES
            + len(self._sets) * VECTOR_HEADER_BYTES
            + self._entries * VERTEX_ID_BYTES
            + self.n * VECTOR_HEADER_BYTES
            + self._entries * SAMPLE_ID_BYTES
        )
