"""RRR-set storage layouts: the heart of the IMM vs IMM\\ :sup:`OPT` gap.

Section 3.1 of the paper: previous implementations (Tang et al.) store
the sampled hypergraph *in two directions* — each RRR set as a hyperedge
(its vertex list) **and**, per vertex, the list of samples it appears in.
Every incidence is therefore stored twice.  The paper's optimized layout
stores only the forward direction, with each vertex list **sorted by
id**, which

1. halves the incidence storage (Table 2 reports 18–58 % total savings
   once per-container overhead is included),
2. lets a thread that owns the vertex interval ``[vl, vh)`` find its
   slice of every sample with two binary searches instead of a full
   scan, and
3. keeps the counting loop of Algorithm 4 cache-ordered.

Both layouts are implemented here behind a small common interface so the
seed-selection routines and the Table 2 benchmark can compare them like
for like.  Byte accounting mimics the C++ containers of the original
implementations (a ``std::vector`` header of 24 bytes plus 4-byte vertex
ids / 8-byte sample ids), since Python object overhead would say nothing
about the layouts themselves; see :mod:`repro.perf.memory`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["RRRCollection", "SortedRRRCollection", "HypergraphRRRCollection"]

#: Modeled per-container overhead (a C++ ``std::vector`` header: pointer,
#: size, capacity).
VECTOR_HEADER_BYTES = 24
#: Modeled bytes per stored vertex id (``int32``).
VERTEX_ID_BYTES = 4
#: Modeled bytes per stored sample id in the inverted index (``int64``,
#: since theta routinely exceeds 2**31 on the paper's largest runs).
SAMPLE_ID_BYTES = 8


class RRRCollection:
    """Interface shared by the two storage layouts.

    A collection is append-only during sampling; seed selection consumes
    it read-only (logical deletion of covered samples happens in the
    selection routines via masks, matching the paper's "purge" being a
    bookkeeping operation rather than physical compaction).
    """

    def append(self, vertices: np.ndarray) -> None:
        """Add one RRR set (a sorted ``int32`` vertex array)."""
        raise NotImplementedError

    def extend(self, sets: Sequence[np.ndarray]) -> None:
        """Add many RRR sets."""
        for verts in sets:
            self.append(verts)

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[np.ndarray]:
        raise NotImplementedError

    @property
    def total_entries(self) -> int:
        """Total number of (sample, vertex) incidences stored."""
        raise NotImplementedError

    def nbytes_model(self) -> int:
        """Modeled resident bytes of this layout (see module docstring)."""
        raise NotImplementedError


class SortedRRRCollection(RRRCollection):
    """One-directional layout: each sample once, vertices sorted by id.

    Internally the samples are kept as a Python list of ``int32`` arrays
    while sampling (append is O(size)), and flattened on demand into
    three parallel arrays used by the vectorized seed-selection kernels:

    ``flat``
        All vertex ids, samples concatenated in insertion order.
    ``indptr``
        Sample boundaries: sample ``i`` is ``flat[indptr[i]:indptr[i+1]]``.
    ``sample_of``
        The owning sample index of each ``flat`` entry.

    The flattened view is cached and invalidated by :meth:`append`, so
    alternating sampling and selection phases (as ``EstimateTheta`` does)
    stays correct.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self._sets: list[np.ndarray] = []
        self._entries = 0
        self._flat_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def append(self, vertices: np.ndarray) -> None:
        vertices = np.asarray(vertices, dtype=np.int32)
        if len(vertices) == 0:
            raise ValueError("an RRR set always contains at least its root")
        if len(vertices) > 1 and np.any(np.diff(vertices) <= 0):
            raise ValueError("RRR vertex lists must be sorted and duplicate-free")
        if vertices[0] < 0 or int(vertices[-1]) >= self.n:
            raise ValueError("RRR vertex id out of range")
        self._sets.append(vertices)
        self._entries += len(vertices)
        self._flat_cache = None

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._sets)

    def __getitem__(self, i: int) -> np.ndarray:
        return self._sets[i]

    @property
    def total_entries(self) -> int:
        return self._entries

    def flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(flat, indptr, sample_of)`` (cached)."""
        if self._flat_cache is None:
            if self._sets:
                flat = np.concatenate(self._sets).astype(np.int64)
            else:
                flat = np.empty(0, dtype=np.int64)
            sizes = np.fromiter(
                (len(s) for s in self._sets), dtype=np.int64, count=len(self._sets)
            )
            indptr = np.zeros(len(self._sets) + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            sample_of = np.repeat(np.arange(len(self._sets), dtype=np.int64), sizes)
            self._flat_cache = (flat, indptr, sample_of)
        return self._flat_cache

    def counters(self) -> np.ndarray:
        """Per-vertex sample membership counts (the first counting step of
        Algorithm 4), as an ``int64`` array of length ``n``."""
        flat, _, _ = self.flattened()
        return np.bincount(flat, minlength=self.n)

    def nbytes_model(self) -> int:
        """One vector header per sample + 4 bytes per incidence + the
        outer vector-of-vectors header."""
        return (
            VECTOR_HEADER_BYTES
            + len(self._sets) * VECTOR_HEADER_BYTES
            + self._entries * VERTEX_ID_BYTES
        )


class HypergraphRRRCollection(RRRCollection):
    """Two-directional hypergraph layout of the reference implementation.

    In addition to the sample -> vertex lists, an inverted index
    ``vertex -> samples containing it`` is maintained incrementally at
    append time, exactly like the reference code updates its hypergraph
    while sampling.  Seed selection via the inverted index avoids scans
    but the incidence data is held twice (the memory cost the paper's
    layout eliminates).
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self._sets: list[np.ndarray] = []
        self._entries = 0
        self._inverted: list[list[int]] = [[] for _ in range(n)]

    def append(self, vertices: np.ndarray) -> None:
        vertices = np.asarray(vertices, dtype=np.int32)
        if len(vertices) == 0:
            raise ValueError("an RRR set always contains at least its root")
        if vertices.min() < 0 or int(vertices.max()) >= self.n:
            raise ValueError("RRR vertex id out of range")
        sample_id = len(self._sets)
        self._sets.append(vertices)
        self._entries += len(vertices)
        inv = self._inverted
        for v in vertices.tolist():
            inv[v].append(sample_id)

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._sets)

    def __getitem__(self, i: int) -> np.ndarray:
        return self._sets[i]

    @property
    def total_entries(self) -> int:
        return self._entries

    def samples_containing(self, v: int) -> list[int]:
        """The inverted-index lookup: ids of samples containing ``v``."""
        return self._inverted[v]

    def counters(self) -> np.ndarray:
        """Per-vertex membership counts read off the inverted index."""
        return np.fromiter(
            (len(lst) for lst in self._inverted), dtype=np.int64, count=self.n
        )

    def nbytes_model(self) -> int:
        """Both directions: forward lists (4 B ids) + inverted lists
        (8 B sample ids) + a vector header per sample *and* per vertex."""
        return (
            2 * VECTOR_HEADER_BYTES
            + len(self._sets) * VECTOR_HEADER_BYTES
            + self._entries * VERTEX_ID_BYTES
            + self.n * VECTOR_HEADER_BYTES
            + self._entries * SAMPLE_ID_BYTES
        )
