"""Self-healing supervision for the process-pool sampling engine.

:class:`~repro.sampling.parallel_engine.ParallelSamplingEngine` treats a
worker death as job death: unlink the shared memory, raise
``WorkerCrashError``, lose everything landed so far.  That is the wrong
economics for θ-scale runs — the paper's big-graph workloads sample for
hours, and the determinism contract makes every lost block *free to
re-derive*: sample ``j`` is a pure function of ``(graph, model, seed,
j)``, so no state of the dead worker is needed to reproduce its work
bit-exactly.  This module turns that observation into a supervisor:

Crash → rebuild → replay
    On ``BrokenProcessPool`` (a worker SIGKILLed, OOM-killed, or
    segfaulted) or a wedged-pool timeout, the supervisor rebuilds the
    pool and resubmits exactly the blocks that have not landed yet.
    Blocks are addressed by global sample index and land strictly in
    index order, so the healed run's collection is bit-identical to a
    fault-free one.  Recovery cost is bounded by a **spare pool** —
    pre-spawned idle worker pools already attached to the shared CSR,
    promoted on crash so healing costs a promotion, not fork +
    shm-reattach — a per-run **crash budget**, and capped exponential
    backoff between rebuilds.

Straggler speculation
    The supervisor keeps a running median of block service times; when
    the head block overstays ``straggler_factor x median`` (with a
    floor), a speculative duplicate is submitted and the first
    checksum-valid result lands.  Both executions sample the same
    counter-addressed streams, so the race cannot change the output.

Run deadline → graceful degradation
    An overall ``deadline=`` turns budget expiry into a typed
    :class:`DeadlineExceededError` carrying the landed prefix size; the
    ``imm`` driver converts that into a ``DegradedResult`` whose
    ``theta_effective``/``epsilon_effective`` are recomputed exactly the
    way the MPI shrink policy recomputes them — the run never silently
    reports full-θ guarantees it did not earn.

Checkpoint / resume
    With ``checkpoint_dir=``, every landed block is spilled through the
    write-ahead :class:`~repro.sampling.checkpoint.BlockCheckpointSink`;
    a killed process restarts with ``resume_from=`` and reloads the
    certified prefix instead of re-sampling it.

Real fault injection
    The same :class:`~repro.mpi.faults.FaultPlan` grammar that drives
    the simulated MPI runtime drives *real* OS events here:
    ``crash:r@N`` SIGKILLs a live worker pid when the engine is about to
    land its ``N``-th block (victim index ``r``), ``switch:lo-hi@N``
    kills the whole group at once, and ``straggler:b xF`` makes block
    ``b``'s first execution sleep ``F x straggler_sleep`` seconds inside
    the worker.  Phase-addressed and collective-only events (transient,
    corrupt, oom) have no process-pool analog and are rejected.

Three mutation hooks exist so the oracle's mutation suite can prove it
would catch the characteristic supervisor bugs: ``_mutate_replay_overlap``
(recovery re-lands the last already-landed block), ``_mutate_resume_skip``
(resume drops the first sample past the cursor), and
``_mutate_spec_order`` (a speculative win lands behind its successor
block).
"""

from __future__ import annotations

import logging
import math
import os
import signal
import statistics
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..rng.streams import fold_stream_seeds, stream_seeds_array
from .checkpoint import BlockCheckpointSink, CheckpointError
from .collection import RRRCollection
from .parallel_engine import (
    AdaptiveChunkPolicy,
    EngineProtocolError,
    EngineStats,
    ParallelEngineError,
    ParallelSamplingEngine,
)

__all__ = [
    "SupervisedSamplingEngine",
    "SupervisorStats",
    "CrashBudgetExhaustedError",
    "DeadlineExceededError",
    "build_sampling_engine",
]

_log = logging.getLogger(__name__)


class CrashBudgetExhaustedError(ParallelEngineError):
    """The pool kept dying past the per-run crash budget.

    Raised only after cleanup: shared memory is unlinked, spare pools
    shut down, and checkpoint temporaries removed (the checkpoint run
    directory itself survives — it is the resume vehicle).
    """

    def __init__(self, budget: int, reason: str) -> None:
        super().__init__(
            f"crash budget exhausted ({budget} recoveries spent; last: {reason}); "
            "shared memory unlinked, checkpoint directory left consistent for resume"
        )
        self.budget = budget
        self.reason = reason


class DeadlineExceededError(ParallelEngineError):
    """The overall run deadline expired mid-θ.

    The collection holds the landed in-order prefix (``landed_total``
    samples); drivers convert this into a ``DegradedResult`` with
    honestly recomputed ``theta_effective``/``epsilon_effective``.
    """

    def __init__(self, landed_total: int, deadline: float | None) -> None:
        super().__init__(
            f"run deadline ({deadline}s) expired with {landed_total} samples "
            "landed; the collection holds a valid in-order prefix"
        )
        self.landed_total = landed_total
        self.deadline = deadline


@dataclass
class SupervisorStats(EngineStats):
    """Engine counters plus everything the supervisor did to stay alive."""

    crashes_observed: int = 0
    rebuilds: int = 0
    promotions: int = 0
    spares_spawned: int = 0
    blocks_replayed: int = 0
    backoff_seconds: float = 0.0
    speculative_launched: int = 0
    speculative_wins: int = 0
    injected_crashes: int = 0
    injected_sleeps: int = 0
    resumed_samples: int = 0
    checkpoint_bytes: int = 0
    checkpoint_seconds: float = 0.0
    deadline_expired: bool = False

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(
            crashes_observed=self.crashes_observed,
            rebuilds=self.rebuilds,
            promotions=self.promotions,
            spares_spawned=self.spares_spawned,
            blocks_replayed=self.blocks_replayed,
            backoff_seconds=self.backoff_seconds,
            speculative_launched=self.speculative_launched,
            speculative_wins=self.speculative_wins,
            injected_crashes=self.injected_crashes,
            injected_sleeps=self.injected_sleeps,
            resumed_samples=self.resumed_samples,
            checkpoint_bytes=self.checkpoint_bytes,
            checkpoint_seconds=self.checkpoint_seconds,
            deadline_expired=self.deadline_expired,
        )
        return out


class SupervisedSamplingEngine(ParallelSamplingEngine):
    """A :class:`ParallelSamplingEngine` that survives its own workers.

    Drop-in wherever the plain engine goes (``sample_batch``,
    ``estimate_theta``, ``select_seeds_sorted`` all accept it via the
    same isinstance dispatch); the output is bit-identical to the serial
    sampler under any mix of worker crashes, stragglers, and resumes —
    only wall-clock and ``stats`` change.

    Supervision parameters
    ----------------------
    spares:
        Pre-spawned warm standby pools (each ``workers`` wide) promoted
        on crash.  ``0`` falls back to cold respawn on every rebuild.
    crash_budget:
        Pool rebuilds allowed per engine lifetime before
        :class:`CrashBudgetExhaustedError`.
    backoff_base, backoff_cap:
        Capped exponential backoff (seconds) between consecutive
        rebuilds: ``min(cap, base * 2**rebuilds)``.
    deadline:
        Overall wall-clock budget (seconds) for the engine's lifetime;
        expiry raises :class:`DeadlineExceededError` at the next block
        boundary.  ``None`` disables.
    straggler_factor, straggler_floor, straggler_min_history:
        Speculative re-execution triggers once the head block has waited
        ``max(floor, factor x running-median-service-time)`` seconds and
        at least ``min_history`` blocks have landed.
        ``straggler_factor=None`` disables speculation.
    checkpoint_dir, resume_from:
        Spill landed blocks to / reload a certified prefix from a
        :class:`BlockCheckpointSink` run directory.  Passing the same
        path for both (or an existing directory as ``checkpoint_dir``)
        continues it in place.
    fault_plan:
        :class:`~repro.mpi.faults.FaultPlan` (or its CLI grammar) driving
        *real* injection: SIGKILL and in-worker sleeps, addressed by
        global landed-block ordinal.
    straggler_sleep:
        Base seconds one injected straggler factor unit sleeps.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: DiffusionModel | str,
        *,
        workers: int,
        spares: int = 1,
        chunk_size: int | None = None,
        max_cohort: int | None = None,
        start_method: str | None = None,
        task_timeout: float | None = 300.0,
        arena_bytes: int | None = None,
        crash_budget: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        deadline: float | None = None,
        straggler_factor: float | None = 4.0,
        straggler_floor: float = 0.25,
        straggler_min_history: int = 5,
        straggler_sleep: float = 0.3,
        checkpoint_dir: str | Path | None = None,
        resume_from: str | Path | None = None,
        fault_plan: FaultPlan | str | None = None,
        _mutate_replay_overlap: bool = False,
        _mutate_resume_skip: bool = False,
        _mutate_spec_order: bool = False,
    ) -> None:
        # close() can run from the parent constructor's error path before
        # these exist; seed them first.
        self._spares: deque = deque()
        self._sink: BlockCheckpointSink | None = None
        self._resume: BlockCheckpointSink | None = None
        if spares < 0:
            raise ValueError("spares must be >= 0")
        if crash_budget < 0:
            raise ValueError("crash_budget must be >= 0")
        super().__init__(
            graph,
            model,
            workers=workers,
            chunk_size=chunk_size,
            max_cohort=max_cohort,
            start_method=start_method,
            task_timeout=task_timeout,
            arena_bytes=arena_bytes,
            # Every pool this engine may ever run — the initial one, the
            # pre-spawned spares, cold rebuilds and replenished spares up
            # to the crash budget — claims fresh counter rows through the
            # shared slot cursor; size the matrix so no healthy lifetime
            # runs out of rows (running out just means unfused blocks).
            _counter_rows=workers * (2 + spares + 2 * crash_budget),
        )
        self.stats = SupervisorStats()
        self.spares = spares
        self.crash_budget = crash_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self.straggler_factor = straggler_factor
        self.straggler_floor = straggler_floor
        self.straggler_min_history = straggler_min_history
        self.straggler_sleep = straggler_sleep
        self._mutate_replay_overlap = _mutate_replay_overlap
        self._mutate_resume_skip = _mutate_resume_skip
        self._mutate_spec_order = _mutate_spec_order
        self._deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )
        self._service_times: deque[float] = deque(maxlen=63)
        self._fault_clock = 0  # global ordinal of the next block to land
        self._need_spare = 0
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._resume_dir = Path(resume_from) if resume_from else None
        self._sink_seed: int | None = None
        self._compile_fault_plan(fault_plan)
        try:
            if self._pool is not None:
                for _ in range(spares):
                    self._spares.append(self.spawn_pool(warm=True))
                    self.stats.spares_spawned += 1
        except BaseException:
            self.close()
            raise

    # -- fault-plan translation ---------------------------------------------

    def _compile_fault_plan(self, plan) -> None:
        """Map the MPI fault grammar onto real process-pool events.

        ``crash``/``switch`` become SIGKILLs of live worker pids fired
        when the engine is about to land the addressed block ordinal;
        ``straggler`` becomes an in-worker sleep on that block's first
        execution (replays and speculative copies run clean — the sleep
        models a slow worker, not slow work).
        """
        # Imported here, not at module top: repro.mpi's package __init__
        # reaches back into repro.sampling (circular at import time).
        from ..mpi.faults import FaultPlan, RankCrash, Straggler, SwitchOutage

        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.fault_plan = plan
        self._kill_events: list[dict] = []
        self._sleep_factors: dict[int, float] = {}
        self._slept_blocks: set[int] = set()
        if plan is None:
            return
        for event in plan.events:
            if isinstance(event, RankCrash):
                if event.at_call is None:
                    raise ValueError(
                        "phase-addressed crashes have no process-pool analog; "
                        "address the block ordinal: crash:<victim>@<block>"
                    )
                self._kill_events.append(
                    {"at": event.at_call, "ranks": (event.rank,), "fired": False}
                )
            elif isinstance(event, SwitchOutage):
                self._kill_events.append(
                    {"at": event.at_call, "ranks": event.ranks, "fired": False}
                )
            elif isinstance(event, Straggler):
                self._sleep_factors[event.rank] = (
                    self._sleep_factors.get(event.rank, 1.0) * event.factor
                )
            else:
                raise ValueError(
                    f"{type(event).__name__} events only exist in the simulated "
                    "MPI runtime; the pool supports crash/switch/straggler"
                )

    def _sleep_for_block(self, ordinal: int) -> float:
        factor = self._sleep_factors.get(ordinal)
        if factor is None or ordinal in self._slept_blocks:
            return 0.0
        self._slept_blocks.add(ordinal)
        self.stats.injected_sleeps += 1
        return self.straggler_sleep * factor

    def _fire_due_kills(self, ordinal: int) -> bool:
        """SIGKILL real worker pids for every kill event now due.

        Returns True when at least one kill was delivered so the caller
        can wait for the pool break instead of racing run completion —
        on a fast run every block may already be computed by the time
        the kill lands, and the executor would only notice the corpse
        at close().
        """
        if self._pool is None:
            return False
        fired = False
        for event in self._kill_events:
            if event["fired"] or ordinal < event["at"]:
                continue
            event["fired"] = True
            pids = sorted(self._pool._processes.keys())
            if not pids:
                continue
            victims = {pids[r % len(pids)] for r in event["ranks"]}
            for pid in victims:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):  # pragma: no cover
                    continue
                self.stats.injected_crashes += 1
                fired = True
            _log.warning(
                "injected SIGKILL of worker pid(s) %s at block %d",
                sorted(victims),
                ordinal,
            )
        return fired

    def _await_pool_break(self, timeout: float = 10.0) -> None:
        """Block until the executor notices an injected worker death.

        The victim pid is really dead, so the management thread is
        guaranteed to flag the pool broken (it waits on the process
        sentinels); pausing here makes injected crashes exercise the
        recovery path deterministically.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._pool is None or getattr(self._pool, "_broken", False):
                return
            time.sleep(0.005)

    # -- checkpoint plumbing -------------------------------------------------

    def _ensure_sinks(self, seed: int) -> None:
        """Open checkpoint/resume sinks lazily, bound to the run's seed."""
        if self._sink_seed is not None:
            if seed != self._sink_seed:
                raise CheckpointError(
                    f"checkpoint is bound to seed {self._sink_seed}, "
                    f"this call uses seed {seed}"
                )
            return
        if self._checkpoint_dir is None and self._resume_dir is None:
            self._sink_seed = seed  # nothing to open, but pin the seed check
            return
        ident = dict(n=self.graph.n, model=self.model.value, seed=seed)
        if self._checkpoint_dir is not None:
            self._sink = BlockCheckpointSink(self._checkpoint_dir, **ident)
        if self._resume_dir is not None:
            if (
                self._checkpoint_dir is not None
                and self._resume_dir.resolve() == self._checkpoint_dir.resolve()
            ):
                self._resume = self._sink  # continue the same run directory
            else:
                self._resume = BlockCheckpointSink(
                    self._resume_dir, readonly=True, **ident
                )
        elif self._sink is not None and self._sink.landed > 0:
            # checkpoint_dir pointed at an existing run: implicit resume
            self._resume = self._sink
        self._sink_seed = seed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        # wait=True: a freshly spawned spare may still be running its
        # shm-attach initializer, and unlinking segments under it races
        # the resource-tracker registration (stale entries at shutdown).
        # Idle spares join immediately, so this costs nothing.
        for pool in getattr(self, "_spares", ()):
            pool.shutdown(wait=True, cancel_futures=True)
        if getattr(self, "_spares", None) is not None:
            self._spares.clear()
        for sink in {id(s): s for s in (getattr(self, "_sink", None),
                                        getattr(self, "_resume", None))}.values():
            if sink is not None:
                sink.close()
        super().close()

    # -- degradation / exhaustion endpoints ----------------------------------

    def _degrade(self, landed_total: int) -> None:
        """Deadline expired: surface the typed error (engine stays open —
        the driver owns the close, and the collection's landed prefix is
        exactly what ``DegradedResult`` will account for).

        Abandoned in-flight blocks may still have been accumulated by
        their workers without ever landing, so the fused counters are
        invalidated — the degraded run counts via the fallback paths.
        """
        self._invalidate_fused("deadline degradation abandoned in-flight blocks")
        self.stats.deadline_expired = True
        _log.warning(
            "run deadline (%ss) expired with %d samples landed; degrading",
            self.deadline,
            landed_total,
        )
        raise DeadlineExceededError(landed_total, self.deadline)

    def _exhausted(self, reason: str) -> None:
        """Crash budget gone: clean everything up, then raise typed."""
        budget = self.crash_budget
        self.close()  # spares down, sinks consistent, shm unlinked
        raise CrashBudgetExhaustedError(budget, reason)

    def _check_deadline(self, landed_total: int) -> None:
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            self._degrade(landed_total)

    # -- sampling ------------------------------------------------------------

    def sample_into(
        self,
        collection: RRRCollection,
        sample_indices: np.ndarray,
        seed: int,
        *,
        edge_flip: str = "stream",
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Supervised version of the engine's ordered block landing.

        Same contract and bit-identical output; additionally survives
        worker deaths (replay), overstaying blocks (speculation), and
        process kills (checkpoint/resume), and honors the run deadline.
        """
        self._require_open()
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        per_sample = np.empty(len(sample_indices), dtype=np.int64)
        if len(sample_indices) == 0:
            return per_sample
        self._check_deadline(len(collection))
        self._ensure_sinks(seed)
        self._maybe_reset_fused(collection, sample_indices)
        self._maybe_reset_arena(len(sample_indices))
        # -- resume: satisfy the certified prefix from the spill ------------
        pos = 0
        first = int(sample_indices[0])
        src = self._resume
        if src is not None and src.landed > first:
            hi = min(src.landed, first + len(sample_indices))
            flat, sizes, edges = src.load_range(first, hi)
            collection.append_batch(flat, sizes)
            # The prefix never passed through a worker: account it in the
            # parent-side fused row so the books can still balance.
            self._note_parent_landing(np.asarray(flat))
            pos = hi - first
            per_sample[:pos] = edges
            self.stats.resumed_samples += pos
            if self._sink is not None and self._sink is not src:
                self._sink.append_block(sample_indices[:pos], flat, sizes, edges)
                self._refresh_checkpoint_stats()
        remaining = sample_indices[pos:]
        if self._mutate_resume_skip and pos > 0 and len(remaining) > 0:
            per_sample[pos] = 0  # the injected cursor-skip bug
            pos += 1
            remaining = remaining[1:]
        if len(remaining) == 0:
            return per_sample
        if self._pool is None:
            return self._sample_serial(
                collection, remaining, seed, edge_flip, per_sample, pos
            )
        return self._sample_pool(
            collection, remaining, seed, edge_flip, per_sample, pos, chunk_size
        )

    def _refresh_checkpoint_stats(self) -> None:
        if self._sink is not None:
            self.stats.checkpoint_bytes = self._sink.bytes_written
            self.stats.checkpoint_seconds = self._sink.write_seconds

    def _chunk(self, count: int, chunk_size: int | None) -> int:
        chunk = chunk_size or self.chunk_size
        if chunk is None:
            chunk = max(
                self._local.max_cohort, math.ceil(count / (4 * self.workers))
            )
        return chunk

    # -- serial (workers=1) path: deadline + checkpoint still apply ----------

    def _sample_block_local(
        self, block: np.ndarray, seed: int, edge_flip: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        flats, sizes, edges = [], [], []
        for lo in range(0, len(block), self._local.max_cohort):
            v, s, e = self._local.sample_cohort(
                block[lo : lo + self._local.max_cohort], seed, edge_flip=edge_flip
            )
            flats.append(v)
            sizes.append(s)
            edges.append(e)
        return (
            np.concatenate(flats) if flats else np.empty(0, dtype=np.int32),
            np.concatenate(sizes) if sizes else np.empty(0, dtype=np.int64),
            np.concatenate(edges) if edges else np.empty(0, dtype=np.int64),
        )

    def _sample_serial(
        self,
        collection: RRRCollection,
        indices: np.ndarray,
        seed: int,
        edge_flip: str,
        per_sample: np.ndarray,
        pos: int,
    ) -> np.ndarray:
        chunk = self._chunk(len(indices), None)
        for lo in range(0, len(indices), chunk):
            self._check_deadline(len(collection))
            block = indices[lo : lo + chunk]
            flat, sizes, edges = self._sample_block_local(block, seed, edge_flip)
            collection.append_batch(flat, sizes)
            per_sample[pos : pos + len(edges)] = edges
            pos += len(edges)
            if self._sink is not None:
                self._sink.append_block(block, flat, sizes, edges)
                self._refresh_checkpoint_stats()
            self.stats.blocks_landed += 1
            self._fault_clock += 1
        return per_sample

    # -- supervised pool path ------------------------------------------------

    def _sample_pool(
        self,
        collection: RRRCollection,
        indices: np.ndarray,
        seed: int,
        edge_flip: str,
        per_sample: np.ndarray,
        pos: int,
        chunk_size: int | None,
    ) -> np.ndarray:
        total = len(indices)
        chunk = chunk_size or self.chunk_size
        policy = (
            None if chunk is not None else AdaptiveChunkPolicy(total, self.workers)
        )
        self.stats.chunk_initial = chunk if chunk is not None else policy.initial
        # Batched checksum handshake: every block's expected checksum is a
        # fold over one vectorized stream-seed pass; the worker's answer
        # rides back in its descriptor.
        seeds_arr = stream_seeds_array(seed, indices)
        base = self._fault_clock  # global ordinal of blocks[0]
        window = 2 * self.workers + 2  # planned-but-unlanded block bound
        blocks: list[np.ndarray] = []
        expected: list[int] = []
        primary: list[Future | None] = []
        spec: list[Future | None] = []
        planned = 0  # samples planned into blocks so far
        next_land = 0
        landed_before = False  # any block landed this call (for replay stats)
        last_landed: tuple | None = None  # _mutate_replay_overlap stash
        task_deadline = (
            time.monotonic() + self.task_timeout
            if self.task_timeout is not None
            else None
        )

        def plan_more() -> None:
            """Lazily extend the block plan behind the submission window.

            With an adaptive policy the next block's size reflects every
            block landed so far; a static chunk plans the same spans the
            eager version did.  Planning is append-only, so replay and
            fault addressing by block ordinal stay stable.
            """
            nonlocal planned
            while planned < total and len(blocks) - next_land < window:
                size = chunk if chunk is not None else policy.next_size()
                stop = min(total, planned + size)
                blocks.append(indices[planned:stop])
                expected.append(fold_stream_seeds(seeds_arr[planned:stop]))
                primary.append(None)
                spec.append(None)
                # the policy's settled size, not the clipped tail block
                self.stats.chunk_final = size
                planned = stop

        def usable(fut: Future | None) -> bool:
            return fut is not None and fut.done() and fut.exception() is None

        def submit(bi: int, *, clean: bool = False) -> Future:
            sleep_s = 0.0 if clean else self._sleep_for_block(base + bi)
            return self.submit_block(
                blocks[bi], seed, edge_flip, sleep_s=sleep_s
            )

        def submit_new() -> None:
            """Submit planned blocks that have no primary execution yet."""
            for bi in range(next_land, len(blocks)):
                if primary[bi] is None:
                    primary[bi] = submit(bi)

        def resubmit_lost() -> None:
            """(Re)submit every un-landed block whose result is gone.

            Completed futures survive a pool break with their results —
            those blocks are not re-run; everything else is replayed
            deterministically into *fresh* arena extents (same indices,
            same streams, same bytes).
            """
            for bi in range(next_land, len(blocks)):
                if not usable(primary[bi]):
                    was_lost = primary[bi] is not None
                    primary[bi] = submit(bi)
                    if was_lost or landed_before or self.stats.rebuilds > 0:
                        self.stats.blocks_replayed += 1
                if spec[bi] is not None and not usable(spec[bi]):
                    spec[bi] = None

        def recover(reason: str) -> None:
            nonlocal last_landed
            self.stats.crashes_observed += 1
            _log.warning(
                "supervised pool failure (%s): crash %d against budget %d",
                reason,
                self.stats.crashes_observed,
                self.crash_budget,
            )
            if self.stats.crashes_observed > self.crash_budget:
                self._exhausted(reason)
            delay = min(self.backoff_cap, self.backoff_base * (2**self.stats.rebuilds))
            if delay > 0:
                time.sleep(delay)
                self.stats.backoff_seconds += delay
            promoted = None
            if self._spares:
                promoted = self._spares.popleft()
                self.stats.promotions += 1
            self.rebuild_pool(promoted)
            self.stats.rebuilds += 1
            self._need_spare += 1
            if self._mutate_replay_overlap and last_landed is not None:
                # the injected replay-overlap bug: recovery re-lands the
                # block that already landed before the crash
                collection.append_batch(*last_landed)

        def replenish_spares() -> None:
            while self._need_spare > 0:
                self._need_spare -= 1
                try:
                    self._spares.append(self.spawn_pool(warm=True))
                    self.stats.spares_spawned += 1
                except Exception as exc:  # pragma: no cover - fork pressure
                    _log.warning("could not replenish spare pool: %s", exc)
                    break

        need_submit = True
        while next_land < len(blocks) or planned < total:
            plan_more()
            try:
                if need_submit:
                    resubmit_lost()
                    replenish_spares()
                    need_submit = False
                else:
                    submit_new()
            except BrokenProcessPool:
                recover("submission hit a broken pool")
                need_submit = True
                continue
            bi = next_land
            if self._fire_due_kills(base + bi):
                self._await_pool_break()
                recover("injected worker kill broke the pool")
                need_submit = True
                continue
            wait_start = time.monotonic()
            while True:
                cands = [f for f in (primary[bi], spec[bi]) if f is not None]
                now = time.monotonic()
                waits = []
                if self._deadline_at is not None:
                    waits.append(self._deadline_at - now)
                if task_deadline is not None:
                    waits.append(task_deadline - now)
                spec_at = None
                if (
                    spec[bi] is None
                    and self.straggler_factor is not None
                    and len(self._service_times) >= self.straggler_min_history
                ):
                    threshold = max(
                        self.straggler_floor,
                        self.straggler_factor
                        * statistics.median(self._service_times),
                    )
                    spec_at = wait_start + threshold
                    waits.append(spec_at - now)
                timeout = max(0.0, min(waits)) if waits else None
                done, _ = _futures_wait(
                    cands, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    now = time.monotonic()
                    if self._deadline_at is not None and now >= self._deadline_at:
                        self._degrade(len(collection))
                    if spec_at is not None and now >= spec_at and spec[bi] is None:
                        # Whichever copy loses still accumulated its
                        # samples into a worker counter row — the fused
                        # books cannot balance after a duplicate.
                        self._invalidate_fused("speculative duplicate launched")
                        try:
                            spec[bi] = submit(bi, clean=True)
                        except BrokenProcessPool:
                            recover("speculative submission hit a broken pool")
                            need_submit = True
                            break
                        self.stats.speculative_launched += 1
                        continue
                    if task_deadline is not None and now >= task_deadline:
                        recover(
                            f"no progress for {self.task_timeout}s (pool wedged)"
                        )
                        task_deadline = time.monotonic() + self.task_timeout
                        need_submit = True
                        break
                    continue  # woke before any of our own deadlines
                # Prefer a cleanly completed candidate; a checksum check
                # below decides whether it may land.
                winner = next((f for f in done if f.exception() is None), None)
                if winner is None:
                    exc = next(iter(done)).exception()
                    if isinstance(exc, BrokenProcessPool) or isinstance(
                        exc, OSError
                    ):
                        recover(f"worker died mid-block ({type(exc).__name__})")
                        need_submit = True
                        break
                    self.close()
                    raise ParallelEngineError(
                        f"worker raised while sampling block {bi}"
                    ) from exc
                flat, sizes, edges, checksum, sample_s = self._materialize(winner)
                spec_won = winner is spec[bi]
                if checksum != expected[bi]:
                    # first *checksum-valid* result wins: drop this
                    # candidate and keep waiting on the other, if any
                    self._invalidate_fused("checksum-invalid candidate dropped")
                    if spec_won:
                        spec[bi] = None
                    else:
                        primary[bi], spec[bi] = spec[bi], None
                    if primary[bi] is None:
                        self.close()
                        raise EngineProtocolError(
                            f"block {bi} stream-checksum mismatch from every "
                            "candidate: workers did not sample the indices sent"
                        )
                    continue
                if spec_won:
                    self.stats.speculative_wins += 1
                if (
                    self._mutate_spec_order
                    and spec[bi] is not None  # a speculative copy raced
                    and bi + 1 < len(blocks)
                    and self._sink is None
                    and usable(primary[bi + 1])
                ):
                    # the injected race bug: the speculative win lands
                    # *behind* its successor block
                    flat2, sizes2, edges2, _, _ = self._materialize(
                        primary[bi + 1]
                    )
                    collection.append_batch(flat2, sizes2)
                    collection.append_batch(flat, sizes)
                    per_sample[pos : pos + len(edges)] = edges
                    pos += len(edges)
                    per_sample[pos : pos + len(edges2)] = edges2
                    pos += len(edges2)
                    primary[bi] = spec[bi] = None
                    primary[bi + 1] = spec[bi + 1] = None
                    self.stats.blocks_landed += 2
                    self._fault_clock += 2
                    next_land = bi + 2
                    break
                t0 = time.perf_counter()
                collection.append_batch(flat, sizes, total=len(flat))
                self.stats.landing_seconds += time.perf_counter() - t0
                per_sample[pos : pos + len(edges)] = edges
                pos += len(edges)
                if self._sink is not None:
                    self._sink.append_block(blocks[bi], flat, sizes, edges)
                    self._refresh_checkpoint_stats()
                if self._mutate_replay_overlap:
                    # arena extents are recycled between calls: stash a
                    # private copy, not the zero-copy landing views
                    last_landed = (flat.copy(), sizes.copy())
                if policy is not None:
                    policy.observe(len(blocks[bi]), sample_s)
                self._service_times.append(time.monotonic() - wait_start)
                self.stats.blocks_landed += 1
                self._fault_clock += 1
                landed_before = True
                primary[bi] = spec[bi] = None
                next_land = bi + 1
                if task_deadline is not None:  # progress resets the watchdog
                    task_deadline = time.monotonic() + self.task_timeout
                break
        return per_sample


def build_sampling_engine(
    graph: CSRGraph,
    model: DiffusionModel | str,
    *,
    workers: int,
    start_method: str | None = None,
    supervise: bool = False,
    supervisor_opts: dict | None = None,
) -> ParallelSamplingEngine:
    """Engine factory shared by the ``imm``/``estimate_theta``/``imm_sweep``
    drivers: a plain pool engine, or a supervised one when asked.

    ``supervisor_opts`` passes through any :class:`SupervisedSamplingEngine`
    keyword (``spares``, ``deadline``, ``checkpoint_dir``, ``resume_from``,
    ``fault_plan``, crash-budget and straggler knobs, ...).
    """
    if supervise:
        return SupervisedSamplingEngine(
            graph,
            model,
            workers=workers,
            start_method=start_method,
            **(supervisor_opts or {}),
        )
    if supervisor_opts:
        raise ValueError("supervisor_opts requires supervise=True")
    return ParallelSamplingEngine(
        graph, model, workers=workers, start_method=start_method
    )
