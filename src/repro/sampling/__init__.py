"""Random Reverse Reachable (RRR) set sampling and storage.

This subpackage implements Algorithm 3 of the paper and the data-layout
contribution of Section 3.1:

* :func:`generate_rr` / :class:`RRRSampler` — the ``GenerateRR`` kernel:
  a probabilistic BFS over *incoming* edges from a random source vertex,
  sampling each edge lazily instead of materializing the subgraph ``g``.
  The traversal differs per diffusion model: IC explores every in-edge
  independently; LT follows at most one in-edge per vertex (which is why
  LT RRR sets are much smaller — the effect behind Figures 5 vs 6).

* :class:`SortedRRRCollection` — the paper's optimized one-directional
  layout (IMM\\ :sup:`OPT`): each sample stored once as a vertex list
  sorted by id, enabling contiguous counting and binary-searched interval
  scans during seed selection.

* :class:`HypergraphRRRCollection` — the reference layout of Tang et
  al.'s implementation: every (sample, vertex) incidence stored twice
  (hyperedge list + per-vertex membership index), faster for seed
  removal but ~2x the memory (the Table 2 comparison).
"""

from .collection import HypergraphRRRCollection, RRRCollection, SortedRRRCollection
from .rrr import RRRSampler, generate_rr
from .sampler import SampleBatch, sample_batch

__all__ = [
    "generate_rr",
    "RRRSampler",
    "RRRCollection",
    "SortedRRRCollection",
    "HypergraphRRRCollection",
    "sample_batch",
    "SampleBatch",
]
