"""Random Reverse Reachable (RRR) set sampling and storage.

This subpackage implements Algorithm 3 of the paper and the data-layout
contribution of Section 3.1:

* :func:`generate_rr` / :class:`RRRSampler` — the ``GenerateRR`` kernel:
  a probabilistic BFS over *incoming* edges from a random source vertex,
  sampling each edge lazily instead of materializing the subgraph ``g``.
  The traversal differs per diffusion model: IC explores every in-edge
  independently; LT follows at most one in-edge per vertex (which is why
  LT RRR sets are much smaller — the effect behind Figures 5 vs 6).

* :class:`BatchedRRRSampler` — the cohort engine: a whole batch of RRR
  sets generated as one fused multi-source traversal (level-synchronous
  reverse BFS for IC, lockstep reverse walks for LT), bit-identical to
  the serial sampler under the determinism contract documented in
  :mod:`repro.sampling.batched` and several times faster because NumPy
  dispatch overhead is amortized across the cohort.

* :class:`SortedRRRCollection` — the paper's optimized one-directional
  layout (IMM\\ :sup:`OPT`): each sample stored once as a vertex list
  sorted by id, enabling contiguous counting and binary-searched interval
  scans during seed selection.

* :class:`HypergraphRRRCollection` — the reference layout of Tang et
  al.'s implementation: every (sample, vertex) incidence stored twice
  (hyperedge list + per-vertex membership index), faster for seed
  removal but ~2x the memory (the Table 2 comparison).

* :class:`CompressedRRRCollection` — the HBMax direction (arXiv
  2208.00613): vertex ids remapped by global RRR-frequency rank, each
  sample delta+varint coded into one byte stream, and seed selection
  counting straight off the coded bytes — bit-identical seeds at a
  fraction of the resident memory.
"""

from .batched import BatchedRRRSampler
from .checkpoint import BlockCheckpointSink, CheckpointError
from .collection import HypergraphRRRCollection, RRRCollection, SortedRRRCollection
from .compressed import (
    CodedStreamError,
    CompressedRRRCollection,
    CorruptCodedStreamError,
    TruncatedCodedStreamError,
    decode_varints,
    encode_varints,
)
from .parallel_engine import (
    EngineProtocolError,
    EngineStats,
    ParallelEngineError,
    ParallelSamplingEngine,
    WorkerCrashError,
)
from .rrr import RRRSampler, generate_rr, in_edge_cumweights
from .sampler import SampleBatch, sample_batch
from .supervisor import (
    CrashBudgetExhaustedError,
    DeadlineExceededError,
    SupervisedSamplingEngine,
    SupervisorStats,
)

__all__ = [
    "generate_rr",
    "RRRSampler",
    "BatchedRRRSampler",
    "ParallelSamplingEngine",
    "SupervisedSamplingEngine",
    "ParallelEngineError",
    "WorkerCrashError",
    "EngineProtocolError",
    "EngineStats",
    "SupervisorStats",
    "CrashBudgetExhaustedError",
    "DeadlineExceededError",
    "BlockCheckpointSink",
    "CheckpointError",
    "RRRCollection",
    "SortedRRRCollection",
    "HypergraphRRRCollection",
    "CompressedRRRCollection",
    "CodedStreamError",
    "TruncatedCodedStreamError",
    "CorruptCodedStreamError",
    "encode_varints",
    "decode_varints",
    "sample_batch",
    "SampleBatch",
    "in_edge_cumweights",
]
