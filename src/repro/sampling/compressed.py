"""Compressed RRR storage: frequency-ranked delta+varint coding (HBMax).

The third collection layout, after the paper's sorted flat buffers and
the reference hypergraph.  HBMax (arXiv 2208.00613, the same PNNL
lineage as the source paper) observes that RRR incidence data is highly
skewed — a few hub vertices appear in most samples — and that IMM is
memory-bound at scale, so it pays to *store* the samples compressed and
to *operate on the compressed form* during seed selection.  This module
applies that idea to our NumPy substrate:

1. **Frequency rank remap.**  Vertex ids are remapped by global
   RRR-frequency rank: the vertex appearing in the most samples becomes
   rank 0, ties break toward the smaller original id.  Skew means the
   hot vertices that dominate the incidence volume get the smallest
   codes.  The permutation is refined *streamingly*: appends encode
   under the permutation current at landing time, and
   :meth:`CompressedRRRCollection._ensure_ranked` re-ranks + re-encodes
   lazily before the next read phase (the "final remap").  A frozen
   index pins the permutation instead (:meth:`freeze_permutation`), so
   serving-time extension re-encodes only the appended samples.

2. **Delta + varint coding.**  Each sample's ranks are sorted
   ascending and gap-encoded — first rank, then strictly positive
   deltas — as LEB128 varints (7 value bits per byte, high bit set on
   every byte except the last) into one growable byte buffer with a
   per-sample byte-offset index.  Small ranks and small gaps are the
   common case, so most incidences cost 1–2 bytes instead of the flat
   layout's modeled 4.

3. **Count on the coded stream.**  The counting pass of Algorithm 4 and
   the kill-pass coverage marking decode varints straight off the coded
   bytes (:meth:`parse_stream` / :meth:`decode_samples`) without ever
   materializing the flat int32 incidence array; selection counters are
   kept in *original* vertex-id space, which is what makes the greedy
   tie-break — and therefore seeds, coverage history, and θ —
   bit-identical to the other layouts (the oracle's layout axis).

Malformed coded bytes raise typed errors (:class:`CodedStreamError`
subtypes) instead of returning garbage — a truncated stream (final byte
still has its continuation bit set) is distinguished from a corrupt one
(ranks out of range, zero deltas, offsets disagreeing with the bytes).

Both codec directions are vectorized: a byte-position loop of at most
:data:`MAX_VARINT_BYTES` iterations replaces any per-value Python loop,
so encode/decode run at NumPy speed over whole cohorts.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .collection import (
    SAMPLE_ID_BYTES,
    VECTOR_HEADER_BYTES,
    VERTEX_ID_BYTES,
    RRRCollection,
)

__all__ = [
    "CompressedRRRCollection",
    "CodedStreamError",
    "TruncatedCodedStreamError",
    "CorruptCodedStreamError",
    "encode_varints",
    "decode_varints",
    "MAX_VARINT_BYTES",
]

#: Longest admissible varint: 9 bytes carry 63 value bits, the most a
#: non-negative int64 can need.  A run of 10+ continuation-flagged bytes
#: cannot come from our encoder and is rejected as corrupt.
MAX_VARINT_BYTES = 9


class CodedStreamError(ValueError):
    """Base for malformed coded-stream conditions (a ``ValueError`` so
    callers treating decode failures as data validation keep working)."""


class TruncatedCodedStreamError(CodedStreamError):
    """The stream ends mid-varint: the final byte still has its
    continuation bit set, so at least one trailing byte is missing."""


class CorruptCodedStreamError(CodedStreamError):
    """The bytes parse but cannot have been produced by the encoder:
    over-long varints, zero deltas, ranks outside ``[0, n)``, or a
    per-sample offset index disagreeing with the byte stream."""


# -- vectorized LEB128 varint codec ----------------------------------------


def _varint_lengths(values: np.ndarray) -> np.ndarray:
    """Encoded byte length of each value (1 + one per extra 7-bit limb)."""
    lengths = np.ones(len(values), dtype=np.int64)
    rest = values >> 7
    while rest.any():
        lengths += rest > 0
        rest = rest >> 7
    return lengths


def _encode_with_lengths(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode non-negative int64 values; return ``(bytes, per-value lengths)``.

    Vectorized over byte positions: iteration ``j`` writes limb ``j`` of
    every value long enough to have one — at most :data:`MAX_VARINT_BYTES`
    iterations total, each a masked gather/scatter.
    """
    lengths = _varint_lengths(values)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    out = np.empty(int(ends[-1]) if len(ends) else 0, dtype=np.uint8)
    for j in range(int(lengths.max()) if len(lengths) else 0):
        m = lengths > j
        limb = ((values[m] >> (7 * j)) & 0x7F).astype(np.uint8)
        cont = (lengths[m] - 1 > j).astype(np.uint8) << 7
        out[starts[m] + j] = limb | cont
    return out, lengths


def encode_varints(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a batch of non-negative integers to a byte array."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    if int(values.min()) < 0:
        raise ValueError("varint values must be non-negative")
    out, _ = _encode_with_lengths(values)
    return out


def _values_from_terminals(buf: np.ndarray, terminal: np.ndarray) -> np.ndarray:
    """Decode values given the per-byte terminal mask (vectorized OR-fold)."""
    ends = np.flatnonzero(terminal)
    starts = np.empty(len(ends), dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > MAX_VARINT_BYTES:
        raise CorruptCodedStreamError(
            f"varint of {max_len} bytes exceeds the {MAX_VARINT_BYTES}-byte "
            "bound — the stream was not produced by this encoder"
        )
    # Limb 0 exists for every value — a direct gather, no mask.  Higher
    # limbs are indexed by the (typically small) set of longer varints:
    # integer indices beat an almost-all-False boolean mask there, and
    # the dominant all-1-byte case never enters the loop at all.
    values = (buf[starts] & 0x7F).astype(np.int64)
    for j in range(1, max_len):
        m = np.flatnonzero(lengths > j)
        values[m] |= (buf[starts[m] + j].astype(np.int64) & 0x7F) << (7 * j)
    return values


def decode_varints(buf: np.ndarray) -> np.ndarray:
    """Decode a LEB128 byte array back to int64 values.

    Raises :class:`TruncatedCodedStreamError` when the buffer ends
    mid-varint and :class:`CorruptCodedStreamError` on over-long varints.
    """
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    if buf.size == 0:
        return np.empty(0, dtype=np.int64)
    terminal = (buf & 0x80) == 0
    if not terminal[-1]:
        raise TruncatedCodedStreamError(
            "coded stream ends inside a varint (continuation bit set on "
            "the final byte)"
        )
    return _values_from_terminals(buf, terminal)


def _concat_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated ``[start_j, stop_j)`` index ranges, built in place
    with the ones-then-cumsum trick (no repeat/arange temporaries)."""
    counts = stops - starts
    ends = np.cumsum(counts)
    total = int(ends[-1])
    idx = np.empty(total, dtype=np.int64)
    idx.fill(1)
    idx[0] = starts[0]
    idx[ends[:-1]] = starts[1:] - stops[:-1] + 1
    np.cumsum(idx, out=idx)
    return idx


def _segmented_ranks(deltas: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Undo gap coding per sample: cumulative-sum the deltas, then
    subtract each sample's carried-in prefix total."""
    csum = np.cumsum(deltas)
    entry_ends = np.cumsum(counts)
    base = np.empty(len(counts), dtype=np.int64)
    base[0] = 0
    base[1:] = csum[entry_ends[:-1] - 1]
    return csum - np.repeat(base, counts)


class CompressedRRRCollection(RRRCollection):
    """Frequency-ranked delta+varint layout (see the module docstring).

    State:

    ``_buf`` / ``_bytes``
        The growable coded byte stream and its used length.
    ``_ends``
        Per-sample end offsets into ``_buf`` (sample ``i`` occupies
        ``[_ends[i-1], _ends[i])``, with an implicit leading 0).
    ``_freq``
        Append-time per-vertex membership histogram (original id
        space) — the ground truth the rank permutation derives from,
        maintained independently of the decode path.
    ``_rank_of`` / ``_vertex_of``
        The current permutation and its inverse.  All landed bytes are
        always encoded under the *current* permutation: re-ranking
        decodes with the old one and re-encodes with the new.
    """

    _INITIAL_BYTES = 1024
    _INITIAL_SAMPLES = 64

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self._buf = np.empty(self._INITIAL_BYTES, dtype=np.uint8)
        self._ends = np.empty(self._INITIAL_SAMPLES, dtype=np.int64)
        self._num = 0
        self._bytes = 0
        self._entries = 0
        self._freq = np.zeros(n, dtype=np.int64)
        self._rank_of = np.arange(n, dtype=np.int64)
        self._vertex_of = np.arange(n, dtype=np.int64)
        self._perm_dirty = False
        self._perm_frozen = False
        # Mutation hooks (see repro.validate.mutation): skip the rank
        # permutation inversion on decode / treat continuation bytes as
        # value terminals in the bulk counting parse.
        self._mutate_identity_decode = False
        self._mutate_skip_continuation = False

    # -- growable buffers ---------------------------------------------------

    def _reserve(self, extra_bytes: int, extra_samples: int) -> None:
        need = self._bytes + extra_bytes
        if need > len(self._buf):
            grown = np.empty(max(need, 2 * len(self._buf)), dtype=np.uint8)
            grown[: self._bytes] = self._buf[: self._bytes]
            self._buf = grown
        need = self._num + extra_samples
        if need > len(self._ends):
            grown = np.empty(max(need, 2 * len(self._ends)), dtype=np.int64)
            grown[: self._num] = self._ends[: self._num]
            self._ends = grown

    # -- appends ------------------------------------------------------------

    def append(self, vertices: np.ndarray) -> None:
        vertices = np.asarray(vertices)
        if len(vertices) == 0:
            raise ValueError("an RRR set always contains at least its root")
        if len(vertices) > 1 and np.any(np.diff(vertices) <= 0):
            raise ValueError("RRR vertex lists must be sorted and duplicate-free")
        if vertices[0] < 0 or int(vertices[-1]) >= self.n:
            raise ValueError("RRR vertex id out of range")
        vertices = vertices.astype(np.int64, copy=False)
        self._freq[vertices] += 1
        self._encode_append(
            vertices, np.asarray([len(vertices)], dtype=np.int64)
        )
        self._perm_dirty = True

    def append_batch(
        self, flat: np.ndarray, sizes: np.ndarray, *, total: int | None = None
    ) -> None:
        """Bulk landing: validate exactly like the sorted layout, then
        encode the whole cohort under the current permutation.

        This is the landing interface the parallel engine and the
        supervisor call block by block — a worker block is encoded
        in-extent here (one varint pass over the block), never staged as
        int32 rows in this collection.
        """
        flat = np.asarray(flat)
        sizes = np.asarray(sizes, dtype=np.int64)
        if len(sizes) == 0:
            return
        if np.any(sizes <= 0):
            raise ValueError("an RRR set always contains at least its root")
        actual = int(sizes.sum())
        if total is not None and total != actual:
            raise ValueError("declared total disagrees with the sizes payload")
        total = actual
        if len(flat) != total:
            raise ValueError("flat length must equal the sum of sizes")
        if int(flat.min()) < 0 or int(flat.max()) >= self.n:
            raise ValueError("RRR vertex id out of range")
        if total > len(sizes):
            nonincreasing = np.diff(flat) <= 0
            boundary = np.zeros(total - 1, dtype=bool)
            boundary[np.cumsum(sizes[:-1]) - 1] = True
            if np.any(nonincreasing & ~boundary):
                raise ValueError("RRR vertex lists must be sorted and duplicate-free")
        flat = flat.astype(np.int64, copy=False)
        self._freq += np.bincount(flat, minlength=self.n)
        self._encode_append(flat, sizes)
        self._perm_dirty = True

    def _encode_append(self, flat: np.ndarray, sizes: np.ndarray) -> None:
        """Encode already-validated samples under the current permutation.

        ``flat`` may hold each sample's vertices in any order — ranks
        are sorted within samples here (one fused key sort), which is
        also what lets :meth:`_ensure_ranked` re-encode decoded ranks
        without materializing an id-sorted intermediate.
        """
        ranks = self._rank_of[flat]
        count = len(sizes)
        if count > 1 or len(ranks) > 1:
            # Sort ranks within samples in one pass: key = sample*n + rank.
            local = np.repeat(np.arange(count, dtype=np.int64), sizes)
            keys = local * max(self.n, 1) + ranks
            keys.sort()
            ranks = keys % max(self.n, 1)
        starts = np.zeros(count, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        deltas = np.empty(len(ranks), dtype=np.int64)
        deltas[0] = ranks[0]
        np.subtract(ranks[1:], ranks[:-1], out=deltas[1:])
        deltas[starts] = ranks[starts]
        payload, lengths = _encode_with_lengths(deltas)
        sample_bytes = np.add.reduceat(lengths, starts)
        self._reserve(len(payload), count)
        self._buf[self._bytes : self._bytes + len(payload)] = payload
        ends = self._ends[self._num : self._num + count]
        np.cumsum(sample_bytes, out=ends)
        ends += self._bytes
        self._bytes += len(payload)
        self._num += count
        self._entries += len(ranks)

    # -- rank refinement ----------------------------------------------------

    def _ensure_ranked(self) -> None:
        """Re-rank by the current frequency histogram and re-encode.

        No-op when the permutation is frozen (serving mode) or already
        matches the histogram.  Runs lazily before read phases, so the
        per-θ-round cost is one decode + one encode of the landed bytes
        — O(total coded bytes), amortized across the doubling rounds.
        """
        if self._perm_frozen or not self._perm_dirty:
            return
        # Stable sort of -freq: ties break toward the smaller vertex id.
        order = np.argsort(-self._freq, kind="stable")
        new_rank = np.empty(self.n, dtype=np.int64)
        new_rank[order] = np.arange(self.n, dtype=np.int64)
        if np.array_equal(new_rank, self._rank_of):
            self._perm_dirty = False
            return
        if self._num:
            ranks, counts = self.parse_stream()
            vertices = self._vertex_of[ranks]
            self._rank_of, self._vertex_of = new_rank, order
            self._num = 0
            self._bytes = 0
            self._entries = 0
            self._encode_append(vertices, counts)
        else:
            self._rank_of, self._vertex_of = new_rank, order
        self._perm_dirty = False

    def freeze_permutation(self) -> None:
        """Pin the permutation after a final re-rank: later appends keep
        encoding under it (no re-encode of the sealed bytes), which is
        the serving layer's extension contract."""
        self._ensure_ranked()
        self._perm_frozen = True

    def adopt_permutation(self, vertex_of: np.ndarray) -> None:
        """Install a pinned external permutation (an opened frozen
        index's).  Only valid while empty — landed bytes are not
        re-encoded."""
        if self._num:
            raise ValueError("cannot adopt a permutation over landed samples")
        vertex_of = np.ascontiguousarray(vertex_of, dtype=np.int64)
        if len(vertex_of) != self.n or not np.array_equal(
            np.sort(vertex_of), np.arange(self.n, dtype=np.int64)
        ):
            raise ValueError(f"permutation must be a bijection on [0, {self.n})")
        self._vertex_of = vertex_of
        self._rank_of = np.empty(self.n, dtype=np.int64)
        self._rank_of[vertex_of] = np.arange(self.n, dtype=np.int64)
        self._perm_frozen = True
        self._perm_dirty = False

    @classmethod
    def from_stream(
        cls,
        n: int,
        coded: np.ndarray,
        ends: np.ndarray,
        vertex_of: np.ndarray,
        *,
        entries: int,
    ) -> "CompressedRRRCollection":
        """Wrap an existing coded section (e.g. a frozen index's mapped
        bytes) under its pinned permutation.  Read paths only — the
        buffers may be read-only memmaps."""
        coll = cls(n)
        coll.adopt_permutation(vertex_of)
        coll._buf = np.ascontiguousarray(coded, dtype=np.uint8)
        coll._ends = np.ascontiguousarray(ends, dtype=np.int64)
        coll._num = len(coll._ends)
        coll._bytes = int(coll._ends[-1]) if coll._num else 0
        coll._entries = int(entries)
        return coll

    # -- coded-stream reads --------------------------------------------------

    def _stream_terminals(self, buf: np.ndarray) -> np.ndarray:
        """Per-byte value-terminal mask of the bulk counting parse (a
        byte terminates a varint iff its continuation bit is clear)."""
        if self._mutate_skip_continuation:
            return np.ones(len(buf), dtype=bool)
        return (buf & 0x80) == 0

    def _invert(self, ranks: np.ndarray) -> np.ndarray:
        """Rank → original vertex id (the decode-side inversion of the
        frequency permutation)."""
        if self._mutate_identity_decode:
            return ranks
        return self._vertex_of[ranks]

    def parse_stream(self) -> tuple[np.ndarray, np.ndarray]:
        """One vectorized varint pass over the whole coded stream.

        Returns ``(ranks, counts)``: every entry's rank in stream order
        (ascending within each sample) and the per-sample entry counts.
        This is the counting kernel's substrate — no flat int32 rows.
        """
        if self._num == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        buf = self._buf[: self._bytes]
        terminal = self._stream_terminals(buf)
        if not terminal[-1]:
            raise TruncatedCodedStreamError(
                "coded stream ends inside a varint (continuation bit set "
                "on the final byte)"
            )
        starts = np.zeros(self._num, dtype=np.int64)
        starts[1:] = self._ends[: self._num - 1]
        if int(self._ends[self._num - 1]) != self._bytes or (
            self._num > 1 and np.any(np.diff(self._ends[: self._num]) <= 0)
        ):
            raise CorruptCodedStreamError(
                "per-sample offset index disagrees with the coded bytes"
            )
        deltas = _values_from_terminals(buf, terminal)
        counts = np.add.reduceat(terminal.astype(np.int64), starts)
        ranks = _segmented_ranks(deltas, counts)
        if int(ranks.max()) >= self.n or int(ranks.min()) < 0:
            raise CorruptCodedStreamError(
                f"decoded rank outside [0, {self.n}) — corrupt deltas"
            )
        return ranks, counts

    def decode_samples(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode the given sample ids off the coded stream.

        Returns ``(vertices, counts)``: the samples' original vertex
        ids, concatenated in the requested sample order (rank-ascending
        within each sample), plus per-sample entry counts.  This is the
        kill pass's decode-on-the-fly primitive — only the covered
        samples' byte ranges are touched.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        byte_stops = self._ends[ids]
        byte_starts = np.where(ids > 0, self._ends[ids - 1], 0)
        span = self._buf[_concat_ranges(byte_starts, byte_stops)]
        terminal = (span & 0x80) == 0
        if not terminal[-1]:
            raise TruncatedCodedStreamError(
                "coded sample span ends inside a varint"
            )
        span_starts = np.zeros(len(ids), dtype=np.int64)
        np.cumsum((byte_stops - byte_starts)[:-1], out=span_starts[1:])
        if not terminal[span_starts - 1].all():  # index -1 is the final byte
            raise CorruptCodedStreamError(
                "a sample's coded bytes end inside a varint"
            )
        deltas = _values_from_terminals(span, terminal)
        counts = np.add.reduceat(terminal.astype(np.int64), span_starts)
        ranks = _segmented_ranks(deltas, counts)
        if int(ranks.max()) >= self.n or int(ranks.min()) < 0:
            raise CorruptCodedStreamError(
                f"decoded rank outside [0, {self.n}) — corrupt deltas"
            )
        return self._invert(ranks), counts

    # -- collection interface -----------------------------------------------

    def __len__(self) -> int:
        return self._num

    def __getitem__(self, i: int) -> np.ndarray:
        if not -self._num <= i < self._num:
            raise IndexError(f"sample index {i} out of range")
        i %= self._num
        start = int(self._ends[i - 1]) if i else 0
        deltas = decode_varints(self._buf[start : int(self._ends[i])])
        if len(deltas) > 1 and int(deltas[1:].min()) < 1:
            raise CorruptCodedStreamError(
                "zero delta inside a sample — duplicate or unsorted ranks"
            )
        ranks = np.cumsum(deltas)
        if int(ranks[-1]) >= self.n or int(ranks[0]) < 0:
            raise CorruptCodedStreamError(
                f"decoded rank outside [0, {self.n}) — corrupt deltas"
            )
        return np.sort(self._invert(ranks))

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self._num):
            yield self[i]

    @property
    def total_entries(self) -> int:
        return self._entries

    @property
    def coded_bytes(self) -> int:
        """Used length of the coded byte stream."""
        return self._bytes

    def stream(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(coded bytes, per-sample end offsets, vertex_of)`` as
        zero-copy views of the live buffers — the frozen-index writer's
        input."""
        return (
            self._buf[: self._bytes],
            self._ends[: self._num],
            self._vertex_of,
        )

    def counters(self) -> np.ndarray:
        """Per-vertex membership counts, computed off the coded stream
        (parse → segmented ranks → permutation inversion → bincount)."""
        if self._num == 0:
            return np.zeros(self.n, dtype=np.int64)
        ranks, _ = self.parse_stream()
        return np.bincount(self._invert(ranks), minlength=self.n)

    def nbytes_model(self) -> int:
        """Honest resident bytes: the coded stream + its container
        header, the per-sample offset index, the permutation and its
        inverse (modeled as int32, ids fit), and the int64 frequency
        histogram the streaming refinement keeps."""
        return (
            2 * VECTOR_HEADER_BYTES
            + self._bytes
            + self._num * SAMPLE_ID_BYTES
            + self.n * (2 * VERTEX_ID_BYTES + SAMPLE_ID_BYTES)
        )
