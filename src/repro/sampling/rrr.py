"""``GenerateRR``: reverse probabilistic BFS from a source vertex.

Definition 3 of the paper: a random reverse reachable (RRR) set for ``v``
is the set of vertices that reach ``v`` in a graph ``g`` obtained from
``G`` by deleting each edge ``e`` with probability ``1 - p(e)``.  As in
the paper's implementation, ``g`` is never materialized: edges are
flipped lazily as the reverse traversal reaches them, which is
distribution-equivalent because each edge is examined at most once.

Model-specific frontier policies (Section 3.1, "the insertion policy into
the next frontier varies according to the diffusion model"):

* **IC** — every incoming edge of a frontier vertex is tested
  independently with its probability: a full probabilistic BFS.
* **LT** — the live-edge construction of Kempe et al.: each vertex picks
  *at most one* incoming live edge (edge ``(u, v)`` with probability
  ``w(u, v)``, no edge with the residual probability).  The reverse
  traversal is therefore a random walk that stops at the first revisit
  or when the no-edge residual fires.

The sampler returns the traversed vertices **sorted by id** — the
invariant the IMM\\ :sup:`OPT` seed-selection layout depends on — plus
the number of edges examined, which the parallel cost models consume as
the per-sample work measure.
"""

from __future__ import annotations

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..rng import SplitMix64
from ..rng.splitmix import mix64_array

__all__ = ["generate_rr", "RRRSampler", "hash_edge_flips", "in_edge_cumweights"]

_INV_2_53 = 1.0 / float(1 << 53)


def in_edge_cumweights(graph: CSRGraph) -> np.ndarray:
    """Per-vertex-local cumulative in-edge weights, aligned with the CSR.

    ``result[lo:hi]`` equals ``np.cumsum(graph.in_probs[lo:hi])`` for
    every vertex's in-slot range ``[lo, hi)`` — **bit-exactly**, because
    the construction gathers equal-degree rows into a matrix and runs
    ``np.cumsum`` along the row axis, which performs the identical
    sequence of float additions as the per-slice call it replaces.  The
    LT samplers (serial and batched) share this table so their live-edge
    picks agree to the last bit, and neither recomputes the prefix sums
    on every vertex visit.
    """
    cum = np.empty_like(graph.in_probs)
    deg = np.diff(graph.in_indptr).astype(np.int64)
    for d in np.unique(deg):
        d = int(d)
        if d == 0:
            continue
        vs = np.nonzero(deg == d)[0]
        pos = graph.in_indptr[vs].astype(np.int64)[:, None] + np.arange(d)[None, :]
        cum[pos] = np.cumsum(graph.in_probs[pos], axis=1)
    return cum


def hash_edge_flips(sample_key: int, edge_slots: np.ndarray) -> np.ndarray:
    """Uniform variates in ``[0, 1)`` keyed by (sample, edge) identity.

    A pure function of the sample key and the edge's global in-CSR slot,
    so every participant of a *partitioned* traversal flips each edge
    identically no matter which rank examines it or in which BFS order
    it is reached — the determinism requirement of the graph-partitioned
    sampler (:mod:`repro.mpi.partitioned`).
    """
    z = (
        np.uint64(sample_key)
        ^ mix64_array(edge_slots.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15))
    )
    return (mix64_array(z) >> np.uint64(11)).astype(np.float64) * _INV_2_53


class RRRSampler:
    """Reusable ``GenerateRR`` kernel with epoch-stamped visited marks.

    Allocating a fresh ``visited`` array per sample would cost O(n) per
    RRR set; instead one ``int64`` epoch array is allocated per sampler
    and a vertex counts as visited when its stamp equals the current
    epoch.  This mirrors the scratch-buffer reuse of the paper's C++
    implementation and keeps per-sample overhead proportional to the
    traversal, not to ``n``.

    Instances are *not* safe for concurrent use; each logical thread rank
    owns one (as each OpenMP thread does in Ripples).
    """

    __slots__ = ("graph", "model", "_epoch_mark", "_epoch", "_in_thresh", "_lt_cum")

    def __init__(self, graph: CSRGraph, model: DiffusionModel | str) -> None:
        self.graph = graph
        self.model = DiffusionModel.parse(model)
        self._epoch_mark = np.full(graph.n, -1, dtype=np.int64)
        self._epoch = -1
        self._lt_cum: np.ndarray | None = None
        # Integer acceptance thresholds: the float comparison
        # ``(raw >> 11) * 2**-53 < p`` is exactly ``(raw >> 11) <
        # ceil(p * 2**53)`` (p * 2**53 is exact in float64 — a pure
        # exponent shift), so precomputing the thresholds removes one
        # float conversion per examined edge without changing a single
        # coin flip.
        self._in_thresh = np.ceil(graph.in_probs * float(1 << 53)).astype(np.uint64)

    def generate(
        self,
        root: int,
        rng: SplitMix64,
        *,
        edge_flip: str = "stream",
    ) -> tuple[np.ndarray, int]:
        """Generate one RRR set rooted at ``root``.

        ``edge_flip`` selects how edge coins are drawn: ``"stream"``
        (default) consumes ``rng`` sequentially, matching the serial
        implementation; ``"hash"`` derives each coin from the sample key
        (``rng.seed``) and the edge's global slot via
        :func:`hash_edge_flips`, making the outcome independent of
        traversal order — the mode the graph-partitioned distributed
        sampler reproduces bit-exactly.  Only the IC model supports
        hash mode (the LT reverse walk is inherently sequential).

        Returns ``(vertices, edges_examined)`` where ``vertices`` is a
        sorted ``int32`` array always containing ``root``.
        """
        if not 0 <= root < self.graph.n:
            raise ValueError(f"root {root} out of range for n={self.graph.n}")
        if edge_flip not in ("stream", "hash"):
            raise ValueError(f"unknown edge_flip mode {edge_flip!r}")
        if self.model is DiffusionModel.IC:
            return self._generate_ic(root, rng, hash_flips=edge_flip == "hash")
        if edge_flip == "hash":
            raise ValueError("hash edge flips are only defined for the IC model")
        return self._generate_lt(root, rng)

    # -- IC ------------------------------------------------------------------

    def _generate_ic(
        self, root: int, rng: SplitMix64, hash_flips: bool = False
    ) -> tuple[np.ndarray, int]:
        g = self.graph
        self._epoch += 1
        epoch = self._epoch
        mark = self._epoch_mark
        mark[root] = epoch
        # The frontier stays int32 end to end (matching in_indices), so
        # no level ever pays a dtype-conversion copy.
        frontier = np.asarray([root], dtype=np.int32)
        visited = [frontier]
        edges_examined = 0
        while len(frontier):
            starts = g.in_indptr[frontier]
            stops = g.in_indptr[frontier + 1]
            counts = stops - starts
            total = int(counts.sum())
            if total == 0:
                break
            edges_examined += total
            offsets = np.repeat(stops - counts.cumsum(), counts) + np.arange(total)
            if hash_flips:
                hit = hash_edge_flips(rng.seed, offsets) < g.in_probs[offsets]
            else:
                raw = rng.next_u64_block(total)
                hit = (raw >> np.uint64(11)) < self._in_thresh[offsets]
            cand = g.in_indices[offsets[hit]]
            cand = cand[mark[cand] != epoch]
            if len(cand) == 0:
                break
            frontier = np.unique(cand) if len(cand) > 1 else cand
            mark[frontier] = epoch
            visited.append(frontier)
        if len(visited) == 1:
            verts = visited[0]
        else:
            verts = np.concatenate(visited)
            verts.sort()
        return verts, edges_examined

    # -- LT ------------------------------------------------------------------

    def _generate_lt(self, root: int, rng: SplitMix64) -> tuple[np.ndarray, int]:
        g = self.graph
        if self._lt_cum is None:
            self._lt_cum = in_edge_cumweights(g)
        cum_all = self._lt_cum
        self._epoch += 1
        epoch = self._epoch
        mark = self._epoch_mark
        mark[root] = epoch
        visited = [root]
        edges_examined = 0
        current = root
        while True:
            lo = int(g.in_indptr[current])
            hi = int(g.in_indptr[current + 1])
            deg = hi - lo
            if deg == 0:
                break
            edges_examined += deg
            cum = cum_all[lo:hi]
            r = rng.random()
            if r >= cum[-1]:
                break  # the "no incoming live edge" residual fired
            pick = int(np.searchsorted(cum, r, side="right"))
            nxt = int(g.in_indices[lo + pick])
            if mark[nxt] == epoch:
                break  # walked into an already-visited vertex: stop
            mark[nxt] = epoch
            visited.append(nxt)
            current = nxt
        verts = np.asarray(visited, dtype=np.int32)
        verts.sort()
        return verts, edges_examined


def generate_rr(
    graph: CSRGraph,
    root: int,
    model: DiffusionModel | str,
    rng: SplitMix64,
) -> tuple[np.ndarray, int]:
    """One-shot convenience wrapper around :class:`RRRSampler`.

    Prefer a long-lived :class:`RRRSampler` when generating many sets —
    this wrapper re-allocates the O(n) scratch array every call.
    """
    return RRRSampler(graph, model).generate(root, rng)
