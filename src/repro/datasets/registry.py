"""The dataset registry mapping SNAP names to synthetic stand-ins.

Each :class:`DatasetSpec` records both the *paper-side* facts (the
Table 2 columns for the original SNAP graph) and the *stand-in recipe*
(generator, parameters, weight scale, seed).  ``scale_factor`` — the
ratio of original to stand-in vertex count — is what the distributed
memory model uses to translate the stand-in's modeled footprint back to
paper scale when deciding simulated OOM kills (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..graph import (
    CSRGraph,
    barabasi_albert,
    lt_normalize,
    rmat,
    uniform_random_weights,
    watts_strogatz,
)

__all__ = ["DatasetSpec", "REGISTRY", "load", "names", "spec", "paper_table2_row"]


@dataclass(frozen=True)
class DatasetSpec:
    """One registry entry: paper-side metadata + stand-in recipe."""

    name: str
    #: Table 2 columns of the original SNAP graph.
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float
    paper_max_degree: int
    #: Table 2 reference runtimes/memory (IMM vs IMMOPT, eps=0.5, k=50);
    #: ``None`` where the paper shows the ◦ (unmeasurable) symbol.
    paper_imm_seconds: float | None
    paper_immopt_seconds: float | None
    paper_imm_mb: float | None
    paper_immopt_mb: float | None
    #: Stand-in recipe.
    generator: Callable[..., CSRGraph]
    params: dict = field(default_factory=dict)
    weight_scale: float = 0.3
    seed: int = 1

    @property
    def scale_factor(self) -> float:
        """Original vertices per stand-in vertex (memory-model scaling)."""
        g = self.build()
        return self.paper_nodes / g.n

    def build(self) -> CSRGraph:
        """The unweighted stand-in topology (deterministic)."""
        return self.generator(seed=self.seed, **self.params)


def _entry(
    name: str,
    paper: tuple[int, int, float, int],
    paper_perf: tuple[float | None, float | None, float | None, float | None],
    generator: Callable[..., CSRGraph],
    params: dict,
    weight_scale: float,
    seed: int,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        paper_nodes=paper[0],
        paper_edges=paper[1],
        paper_avg_degree=paper[2],
        paper_max_degree=paper[3],
        paper_imm_seconds=paper_perf[0],
        paper_immopt_seconds=paper_perf[1],
        paper_imm_mb=paper_perf[2],
        paper_immopt_mb=paper_perf[3],
        generator=generator,
        params=params,
        weight_scale=weight_scale,
        seed=seed,
    )


#: The eight Table 2 graphs, smallest to largest — stand-in sizes keep
#: the original ordering of both n and average degree.  Weight scales
#: put the reverse branching factor (avg_deg * scale / 2) near 0.9.
REGISTRY: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        _entry(
            "cit-HepTh",
            (27_770, 352_807, 12.70, 2_468),
            (8.00, 2.84, 357.23, 190.80),
            barabasi_albert,
            {"n": 800, "m_attach": 4},
            weight_scale=0.22,
            seed=11,
        ),
        _entry(
            "soc-Epinions1",
            (75_879, 508_837, 13.41, 3_079),
            (41.59, 14.62, 2198.25, 1170.05),
            barabasi_albert,
            {"n": 1_200, "m_attach": 4},
            weight_scale=0.22,
            seed=12,
        ),
        _entry(
            "com-Amazon",
            (334_863, 925_872, 5.53, 549),
            (521.04, 188.48, 19222.59, 10927.92),
            watts_strogatz,
            {"n": 2_000, "k_ring": 3, "beta": 0.1},
            weight_scale=0.30,
            seed=13,
        ),
        _entry(
            "com-DBLP",
            (317_080, 1_049_866, 6.62, 343),
            (526.82, 170.32, 13260.18, 5547.77),
            watts_strogatz,
            {"n": 1_900, "k_ring": 3, "beta": 0.3},
            weight_scale=0.30,
            seed=14,
        ),
        _entry(
            "com-YouTube",
            (1_134_890, 2_987_624, 2.63, 28_754),
            (1592.08, 511.77, 49710.07, 25785.04),
            rmat,
            {"scale": 12, "edge_factor": 3},
            weight_scale=0.55,
            seed=15,
        ),
        _entry(
            "soc-Pokec",
            (1_632_803, 30_622_564, 37.51, 20_518),
            (5552.37, 2350.27, 63210.72, 51643.09),
            barabasi_albert,
            {"n": 2_500, "m_attach": 7},
            weight_scale=0.13,
            seed=16,
        ),
        _entry(
            "soc-LiveJournal1",
            (4_847_571, 68_993_773, 28.47, 22_889),
            (16434.81, 3954.59, None, 64501.89),
            rmat,
            {"scale": 12, "edge_factor": 12},
            weight_scale=0.15,
            seed=17,
        ),
        _entry(
            "com-Orkut",
            (3_072_441, 117_185_083, 76.28, 33_313),
            (28024.56, 9027.50, None, None),
            barabasi_albert,
            {"n": 3_000, "m_attach": 16},
            weight_scale=0.055,
            seed=18,
        ),
    ]
}


def names() -> list[str]:
    """Registered dataset names, smallest original first (Table 2 order)."""
    return list(REGISTRY)


def spec(name: str) -> DatasetSpec:
    """Look up a registry entry.

    Raises
    ------
    KeyError
        With the list of valid names, for typo-friendly errors.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(REGISTRY)}"
        ) from None


def load(name: str, model: str = "IC", weight_seed: int = 0) -> CSRGraph:
    """Build a stand-in with edge probabilities ready for ``model``.

    IC weights are ``U[0, weight_scale)`` per the registry entry; for
    ``model="LT"`` the same weights are renormalized per vertex (the
    paper's equivalent-model readjustment).
    """
    s = spec(name)
    g = s.build()
    g = uniform_random_weights(g, seed=weight_seed + s.seed, scale=s.weight_scale)
    if model.upper() == "LT":
        g = lt_normalize(g)
    elif model.upper() != "IC":
        raise ValueError(f"unknown model {model!r}")
    return g


def paper_table2_row(name: str) -> tuple:
    """The original Table 2 dataset columns, for report side-by-sides."""
    s = spec(name)
    return (s.paper_nodes, s.paper_edges, s.paper_avg_degree, s.paper_max_degree)
