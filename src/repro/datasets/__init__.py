"""Dataset registry: deterministic stand-ins for the paper's inputs.

Table 2 evaluates on eight SNAP graphs (cit-HepTh through com-Orkut,
up to 117M edges).  Without network access — and without native code to
chew through 10\\ :sup:`8`-edge traversals — this registry provides
**scaled-down synthetic stand-ins**, one per SNAP graph, that preserve
what IMM's behaviour actually depends on:

* the *ordering* of sizes and average degrees across the eight inputs
  (so "speedups improve with input size" remains observable),
* the degree character of each original (heavy-tailed for the social/
  citation graphs, flat for the co-purchase/collaboration graphs),
* a reverse-traversal branching factor (``avg_in_degree · E[p]``) in
  the same near-critical regime that makes the paper's uniform-random
  weights produce RRR sets much larger for IC than for LT.

Every stand-in is deterministic in its registry seed.  The bio
case-study networks of Section 5 live in :mod:`repro.bio`; the
``*-net`` entries here expose them through the same loader.
"""

from .registry import REGISTRY, DatasetSpec, load, names, paper_table2_row, spec

__all__ = ["load", "names", "spec", "REGISTRY", "DatasetSpec", "paper_table2_row"]
