"""Greedy seed selection over an RRR collection (Algorithm 4).

The selection is the classic greedy max-cover: ``k`` iterations, each
picking the vertex contained in the most *alive* samples, then killing
(covering) every sample that contains it and decrementing the membership
counters of all their vertices.  Ties break toward the smallest vertex
id in every implementation here, so the two layouts and all parallel
variants produce identical seed sets (a cross-checked invariant).

Two implementations:

* :func:`select_seeds_sorted` — over the one-directional sorted layout.
  It follows the paper's scheme: a per-vertex counter array, a first
  counting pass over all samples, and per-iteration purges.  The
  ``num_ranks`` argument reproduces the synchronization-free work
  partitioning of Algorithm 4 (thread ``t`` owns the vertex interval
  ``[n·t/p, n·(t+1)/p)``) for the shared-memory cost model: the returned
  per-rank meters say how many counter updates each rank performed, and
  how many binary searches it used to locate its interval inside each
  sorted sample.

* :func:`select_seeds_hypergraph` — over the bidirectional reference
  layout, using the vertex→samples inverted index the way Tang et al.'s
  code does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sampling.collection import (
    HypergraphRRRCollection,
    RRRCollection,
    SortedRRRCollection,
)
from ..sampling.compressed import CompressedRRRCollection

__all__ = [
    "SelectionResult",
    "select_seeds",
    "select_seeds_sorted",
    "select_seeds_hypergraph",
    "select_seeds_compressed",
]


@dataclass
class SelectionResult:
    """Seed set plus the work metering the parallel cost models consume.

    Attributes
    ----------
    seeds:
        The ``k`` selected vertex ids, in selection order.
    covered_samples:
        Number of RRR sets covered by the seed set; divided by the
        collection size this is the coverage fraction ``F_R(S)`` used by
        the θ estimator.
    entries_scanned, counter_updates:
        Total work (all ranks together).
    per_rank_entries:
        Counter updates charged to each vertex-interval rank (length
        ``num_ranks``); the makespan of the selection phase is the max.
    per_rank_searches:
        Binary-search operations per rank (each rank locates its interval
        in every visited sample with two ``log(size)`` searches).
    argmax_scans:
        Elements scanned by the per-iteration parallel max reduction
        (``k`` iterations × ``n`` counters).
    """

    seeds: np.ndarray
    covered_samples: int
    entries_scanned: int = 0
    counter_updates: int = 0
    per_rank_entries: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )
    per_rank_searches: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )
    argmax_scans: int = 0

    @property
    def num_ranks(self) -> int:
        return len(self.per_rank_entries)

    def coverage_fraction(self, num_samples: int) -> float:
        """``F_R(S)``: fraction of the collection covered by the seeds."""
        return self.covered_samples / num_samples if num_samples else 0.0


def _interval_bounds(n: int, num_ranks: int) -> np.ndarray:
    """The paper's block partition: rank ``t`` owns ``[n·t/p, n·(t+1)/p)``."""
    t = np.arange(num_ranks + 1, dtype=np.int64)
    return (n * t) // num_ranks


def select_seeds_sorted(
    collection: SortedRRRCollection,
    n: int,
    k: int,
    num_ranks: int = 1,
    *,
    count_engine=None,
) -> SelectionResult:
    """Greedy selection over the sorted one-directional layout.

    The executed kernel is vectorized NumPy, but the *work metering*
    follows Algorithm 4's partitioned execution: counter updates are
    attributed to the rank owning the vertex, and each rank is charged
    ``O(log |R_j|)`` searches per visited sample to find its interval.

    ``count_engine`` (a
    :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`)
    replaces the serial ``np.bincount`` of the first counting pass with
    its partitioned ``count_partitioned`` kernel — bit-identical
    counters, computed by the worker pool for large collections.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    flat, indptr, sample_of = collection.flattened()
    num_samples = len(collection)
    bounds = _interval_bounds(n, num_ranks)

    # --- counting pass (first step of Algorithm 4) -----------------------
    if count_engine is not None:
        counters = count_engine.count_partitioned(flat, n).astype(np.int64)
    else:
        counters = np.bincount(flat, minlength=n).astype(np.int64)
    # Rank attribution of every entry is only needed when the cost model
    # actually partitions the vertex space; the common single-rank path
    # skips the O(E log p) searchsorted and charges everything to rank 0.
    if num_ranks > 1:
        rank_of_entry = np.searchsorted(bounds, flat, side="right") - 1
        per_rank_entries = np.bincount(rank_of_entry, minlength=num_ranks)
    else:
        rank_of_entry = None
        per_rank_entries = np.asarray([len(flat)], dtype=np.int64)
    # Each rank visits every sample and runs two binary searches on it.
    if num_samples:
        sizes = np.diff(indptr)
        search_per_sample = np.ceil(np.log2(np.maximum(sizes, 2))).astype(np.int64)
        total_search = int(search_per_sample.sum())
    else:
        total_search = 0
    per_rank_searches = np.full(num_ranks, total_search, dtype=np.int64)

    entries_scanned = int(collection.total_entries)
    counter_updates = int(collection.total_entries)

    # Vertex -> entry positions index (grouped, O(E) once) so the per-
    # iteration "which samples contain v" lookup is O(|hits|), not O(E).
    vert_order = np.argsort(flat, kind="stable")
    vert_counts = np.bincount(flat, minlength=n)
    vert_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(vert_counts, out=vert_indptr[1:])

    sample_alive = np.ones(num_samples, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    covered = 0
    # Kill-pass scratch, hoisted out of the loop: grows to the largest
    # kill seen so far instead of re-allocating repeat/arange/sum
    # temporaries on every iteration.
    entry_scratch = np.empty(0, dtype=np.int64)
    for i in range(k):
        v = int(np.argmax(counters))
        seeds[i] = v
        positions = vert_order[vert_indptr[v] : vert_indptr[v + 1]]
        hit_samples = sample_of[positions]
        killed = hit_samples[sample_alive[hit_samples]]
        covered += len(killed)
        if len(killed):
            sample_alive[killed] = False
            starts = indptr[killed]
            stops = indptr[killed + 1]
            counts = stops - starts
            ends = np.cumsum(counts)
            total = int(ends[-1])
            if len(entry_scratch) < total:
                entry_scratch = np.empty(
                    max(total, 2 * len(entry_scratch)), dtype=np.int64
                )
            # Concatenated ranges [start_j, stop_j) built in place: ones,
            # with each range's first slot holding the jump from the
            # previous range's last value, then one cumulative sum.
            # Equivalent to repeat(starts, counts) + intra-range iota
            # without allocating either temporary.
            entry_idx = entry_scratch[:total]
            entry_idx.fill(1)
            entry_idx[0] = starts[0]
            entry_idx[ends[:-1]] = starts[1:] - stops[:-1] + 1
            np.cumsum(entry_idx, out=entry_idx)
            dead_vertices = flat[entry_idx]
            counters -= np.bincount(dead_vertices, minlength=n)
            # Metering: each decrement belongs to the rank owning the vertex;
            # each rank also pays a binary search per killed sample.
            if rank_of_entry is not None:
                per_rank_entries += np.bincount(
                    rank_of_entry[entry_idx], minlength=num_ranks
                )
            else:
                per_rank_entries[0] += total
            kill_search = int(search_per_sample[killed].sum())
            per_rank_searches += kill_search
            entries_scanned += total
            counter_updates += total
        counters[v] = -1  # never re-pick a chosen seed
    return SelectionResult(
        seeds=seeds,
        covered_samples=covered,
        entries_scanned=entries_scanned,
        counter_updates=counter_updates,
        per_rank_entries=per_rank_entries,
        per_rank_searches=per_rank_searches,
        argmax_scans=k * n,
    )


def select_seeds_hypergraph(
    collection: HypergraphRRRCollection,
    n: int,
    k: int,
) -> SelectionResult:
    """Greedy selection over the bidirectional hypergraph layout.

    Covered samples are found through the vertex→samples inverted index
    (no scan), the way the reference implementation works; the cost is
    the doubled storage accounted in :meth:`nbytes_model`.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    counters = collection.counters().astype(np.int64)
    covered_mask = np.zeros(len(collection), dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    covered = 0
    entries_scanned = int(collection.total_entries)
    counter_updates = int(collection.total_entries)
    for i in range(k):
        v = int(np.argmax(counters))
        seeds[i] = v
        containing = np.asarray(collection.samples_containing(v), dtype=np.int64)
        entries_scanned += len(containing)
        if len(containing):
            new = containing[~covered_mask[containing]]
        else:
            new = containing
        covered += len(new)
        if len(new):
            covered_mask[new] = True
            members = np.concatenate([collection[s] for s in new]).astype(np.int64)
            counters -= np.bincount(members, minlength=n)
            entries_scanned += len(members)
            counter_updates += len(members)
        counters[v] = -1
    return SelectionResult(
        seeds=seeds,
        covered_samples=covered,
        entries_scanned=entries_scanned,
        counter_updates=counter_updates,
        per_rank_entries=np.asarray([counter_updates], dtype=np.int64),
        per_rank_searches=np.zeros(1, dtype=np.int64),
        argmax_scans=k * n,
    )


def select_seeds_compressed(
    collection: CompressedRRRCollection,
    n: int,
    k: int,
    num_ranks: int = 1,
    *,
    count_engine=None,
) -> SelectionResult:
    """Greedy selection straight off the coded stream (HBMax-style).

    The collection's flat int32 incidence rows are never materialized:
    the counting pass is one vectorized varint parse of the coded bytes
    (:meth:`~repro.sampling.compressed.CompressedRRRCollection
    .parse_stream`), the vertex→samples lookup is a rank-space index
    over the parsed entries, and the kill pass marks coverage on the
    fly by gathering the killed samples' entries from that *single*
    parse — the coded bytes are decoded exactly once per selection, not
    once per seed.  The parsed rank entries live only for the duration
    of the call; the collection itself stays coded throughout.

    Bit-parity with :func:`select_seeds_sorted` is by construction:
    counters are kept in *original* vertex-id space (so ``argmax`` ties
    break toward the smallest vertex id, not the hottest rank), every
    counter value equals the flat layout's bincount, and the killed
    sample sets are identical — hence identical seeds, covered counts,
    and work meters.

    ``count_engine`` substitutes the engine's fused per-worker
    frequency-histogram merge for the coded-stream count when its books
    balance (the descriptor-protocol rows already hold exactly this
    histogram); the stream is still parsed once for the hit index.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    collection._ensure_ranked()
    num_samples = len(collection)
    bounds = _interval_bounds(n, num_ranks)

    # --- counting pass, off the coded stream -----------------------------
    if num_samples:
        ranks, sizes = collection.parse_stream()
    else:
        ranks = np.empty(0, dtype=np.int64)
        sizes = np.empty(0, dtype=np.int64)
    if count_engine is not None:
        counters = count_engine.count_collection(collection, n).astype(np.int64)
    else:
        counters = np.bincount(
            collection._invert(ranks), minlength=n
        ).astype(np.int64)
    sample_of = np.repeat(np.arange(num_samples, dtype=np.int64), sizes)
    if num_ranks > 1:
        rank_of_entry = (
            np.searchsorted(bounds, collection._invert(ranks), side="right") - 1
        )
        per_rank_entries = np.bincount(rank_of_entry, minlength=num_ranks)
    else:
        per_rank_entries = np.asarray([len(ranks)], dtype=np.int64)
    if num_samples:
        search_per_sample = np.ceil(np.log2(np.maximum(sizes, 2))).astype(np.int64)
        total_search = int(search_per_sample.sum())
    else:
        total_search = 0
    per_rank_searches = np.full(num_ranks, total_search, dtype=np.int64)

    entries_scanned = int(collection.total_entries)
    counter_updates = int(collection.total_entries)

    # Rank-space hit index over the parsed entries, built with one key
    # sort (key = rank * num_samples + sample): grouped by rank with
    # ascending sample ids inside each group — the same hit ordering the
    # sorted layout's vertex index produces, without the slower stable
    # argsort + gather it would take to keep the two arrays separate.
    rank_counts = np.bincount(ranks, minlength=n)
    rank_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(rank_counts, out=rank_indptr[1:])
    if num_samples:
        keys = ranks * num_samples + sample_of
        keys.sort()
        hit_samples = keys % num_samples
    else:
        hit_samples = np.empty(0, dtype=np.int64)
    rank_of = collection._rank_of

    # Per-sample entry ranges into the parsed stream (stream order is
    # sample order), so the kill pass is a pure gather.
    entry_indptr = np.zeros(num_samples + 1, dtype=np.int64)
    np.cumsum(sizes, out=entry_indptr[1:])

    sample_alive = np.ones(num_samples, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    covered = 0
    entry_scratch = np.empty(0, dtype=np.int64)
    for i in range(k):
        v = int(np.argmax(counters))
        seeds[i] = v
        r = int(rank_of[v])
        hits = hit_samples[rank_indptr[r] : rank_indptr[r + 1]]
        killed = hits[sample_alive[hits]]
        covered += len(killed)
        if len(killed):
            sample_alive[killed] = False
            # Coverage marking off the single parse: gather the killed
            # samples' entry ranges (same in-place ranges trick as the
            # sorted kernel), then invert rank → vertex per entry.
            starts = entry_indptr[killed]
            stops = entry_indptr[killed + 1]
            counts = stops - starts
            ends = np.cumsum(counts)
            total = int(ends[-1])
            if len(entry_scratch) < total:
                entry_scratch = np.empty(
                    max(total, 2 * len(entry_scratch)), dtype=np.int64
                )
            entry_idx = entry_scratch[:total]
            entry_idx.fill(1)
            entry_idx[0] = starts[0]
            entry_idx[ends[:-1]] = starts[1:] - stops[:-1] + 1
            np.cumsum(entry_idx, out=entry_idx)
            dead_vertices = collection._invert(ranks[entry_idx])
            counters -= np.bincount(dead_vertices, minlength=n)
            if num_ranks > 1:
                per_rank_entries += np.bincount(
                    np.searchsorted(bounds, dead_vertices, side="right") - 1,
                    minlength=num_ranks,
                )
            else:
                per_rank_entries[0] += total
            kill_search = int(search_per_sample[killed].sum())
            per_rank_searches += kill_search
            entries_scanned += total
            counter_updates += total
        counters[v] = -1
    return SelectionResult(
        seeds=seeds,
        covered_samples=covered,
        entries_scanned=entries_scanned,
        counter_updates=counter_updates,
        per_rank_entries=per_rank_entries,
        per_rank_searches=per_rank_searches,
        argmax_scans=k * n,
    )


def select_seeds(
    collection: RRRCollection,
    n: int,
    k: int,
    num_ranks: int = 1,
    *,
    count_engine=None,
) -> SelectionResult:
    """Dispatch to the layout-appropriate selector.

    All selectors implement the identical greedy policy (including tie
    breaking), so the chosen seeds depend only on the collection
    contents — a property the test suite asserts.  ``count_engine``
    applies to the sorted and compressed layouts (the hypergraph layout
    reads its counters off the inverted index, no counting pass exists).
    """
    if isinstance(collection, SortedRRRCollection):
        return select_seeds_sorted(
            collection, n, k, num_ranks=num_ranks, count_engine=count_engine
        )
    if isinstance(collection, CompressedRRRCollection):
        return select_seeds_compressed(
            collection, n, k, num_ranks=num_ranks, count_engine=count_engine
        )
    if isinstance(collection, HypergraphRRRCollection):
        return select_seeds_hypergraph(collection, n, k)
    raise TypeError(f"unsupported collection type {type(collection).__name__}")
