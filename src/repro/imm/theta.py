"""``EstimateTheta`` (Algorithm 2): how many RRR sets are enough.

The paper's Algorithm 2 defers the formulas ``f`` and ``f'`` to Tang et
al. (SIGMOD 2015); we implement those exactly.  The estimation is a
martingale-style doubling search: for ``x = 1, 2, ...`` it hypothesizes
that the unknown optimum ``OPT >= n / 2^x``, draws just enough samples
to test the hypothesis (``θ_x = λ' / (n / 2^x)``), runs the greedy
selector, and accepts when the observed coverage certifies a lower bound
``LB`` on ``OPT``.  The final sample count is ``θ = λ* / LB``.

Formulas (Tang et al. 2015, Lemmas 6–7; ``ℓ`` inflated by
``1 + ln 2 / ln n`` so the union bound over all rounds still yields
``1 - 1/n^ℓ`` overall):

    ε' = √2 · ε
    λ' = (2 + ⅔ ε') · (ln C(n,k) + ℓ ln n + ln log₂ n) · n / ε'²
    α  = √(ℓ ln n + ln 2)
    β  = √((1 − 1/e) · (ln C(n,k) + ℓ ln n + ln 2))
    λ* = 2n · ((1 − 1/e)·α + β)² / ε²

All sampling done during estimation is *kept*: Algorithm 1's subsequent
``Sample`` call only tops the collection up to θ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..perf.counters import WorkCounters
from ..sampling import (
    BatchedRRRSampler,
    RRRCollection,
    RRRSampler,
    SortedRRRCollection,
    sample_batch,
)
from .select import select_seeds

__all__ = [
    "EPS_UPPER_BOUND",
    "validate_eps",
    "logcnk",
    "lambda_prime",
    "lambda_star",
    "estimate_theta",
    "ThetaEstimate",
]

#: Largest admissible ``eps``: the algorithm promises a
#: ``(1 - 1/e - eps)``-approximation, which is vacuous (a non-positive
#: factor) once ``eps`` reaches ``1 - 1/e``.
EPS_UPPER_BOUND = 1.0 - 1.0 / math.e


def validate_eps(eps: float) -> None:
    """Reject ``eps`` outside ``(0, 1 - 1/e)``.

    Shared by every driver that instantiates the Tang et al. sample
    bounds (:func:`estimate_theta` and the distributed replica of its
    control flow in :func:`repro.mpi.imm_dist`).
    """
    if not 0.0 < eps < EPS_UPPER_BOUND:
        raise ValueError(
            f"eps must lie in (0, 1 - 1/e) = (0, {EPS_UPPER_BOUND:.4f}) for the "
            f"(1 - 1/e - eps) guarantee to be meaningful, got {eps}"
        )


def logcnk(n: int, k: int) -> float:
    """``ln C(n, k)`` via log-gamma (exact enough for all n, overflow-free)."""
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def _inflated_l(n: int, l: float) -> float:
    """Tang et al. set ℓ ← ℓ·(1 + ln 2 / ln n) so the failure probability
    of all estimation rounds together stays below ``1/n^ℓ``."""
    return l * (1.0 + math.log(2) / math.log(n))


def lambda_prime(n: int, k: int, eps: float, l: float) -> float:
    """The per-round sample-budget constant λ' of the doubling search."""
    eps_p = math.sqrt(2.0) * eps
    log_terms = logcnk(n, k) + l * math.log(n) + math.log(max(math.log2(n), 1.0))
    return (2.0 + 2.0 / 3.0 * eps_p) * log_terms * n / (eps_p * eps_p)


def lambda_star(n: int, k: int, eps: float, l: float) -> float:
    """The final sample-budget constant λ* (θ = λ* / LB)."""
    one_minus_inv_e = 1.0 - 1.0 / math.e
    alpha = math.sqrt(l * math.log(n) + math.log(2))
    beta = math.sqrt(one_minus_inv_e * (logcnk(n, k) + l * math.log(n) + math.log(2)))
    return 2.0 * n * (one_minus_inv_e * alpha + beta) ** 2 / (eps * eps)


@dataclass
class ThetaEstimate:
    """Output of :func:`estimate_theta`.

    Attributes
    ----------
    theta:
        The required number of RRR sets.
    lb:
        Certified lower bound on ``OPT`` (1.0 when no round accepted).
    collection:
        The samples drawn during estimation (reused by Algorithm 1).
    rounds:
        Number of doubling-search rounds executed.
    coverage_history:
        ``(theta_x, fraction_covered)`` per round, for diagnostics and
        the Figure 2 sweeps.
    """

    theta: int
    lb: float
    collection: RRRCollection
    rounds: int
    coverage_history: list[tuple[int, float]] = field(default_factory=list)


def estimate_theta(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    collection: RRRCollection | None = None,
    sampler: RRRSampler | BatchedRRRSampler | None = None,
    counters: WorkCounters | None = None,
    theta_cap: int | None = None,
    trace: list | None = None,
    num_ranks: int = 1,
    workers: int = 1,
    start_method: str | None = None,
    supervise: bool = False,
    supervisor_opts: dict | None = None,
) -> ThetaEstimate:
    """Estimate θ and return it with the samples drawn along the way.

    Parameters
    ----------
    graph, k, eps, model, seed:
        The influence-maximization instance.  ``eps`` controls the
        approximation factor ``1 - 1/e - eps`` (smaller ⇒ more samples,
        Figure 2); must lie in ``(0, 1 - 1/e)`` to keep the guarantee
        meaningful.
    l:
        Confidence exponent: the guarantee holds with probability
        ``1 - 1/n^l`` (the paper and Tang et al. use ``l = 1``).
    collection:
        Destination collection (defaults to a fresh
        :class:`SortedRRRCollection`); the parallel drivers pass their
        own so estimation samples are stored in the partitioned layout.
    sampler:
        Optional shared sampler scratch (a
        :class:`~repro.sampling.batched.BatchedRRRSampler` or the serial
        :class:`RRRSampler`); its type selects the engine used by
        :func:`~repro.sampling.sampler.sample_batch`.  Defaults to a
        fresh batched sampler — both engines produce bit-identical
        collections.
    counters:
        Optional work ledger to update.
    theta_cap:
        Optional hard ceiling on θ (used by benchmarks to bound runtime;
        a capped run loses the approximation guarantee and says so in
        the result).
    trace:
        Optional list receiving ``("sample", SampleBatch)`` and
        ``("select", SelectionResult)`` events in execution order.  The
        simulated-parallel drivers replay these meters through the
        machine cost models to charge the EstimateTheta phase.
    num_ranks:
        Vertex-interval rank count forwarded to the selection kernel so
        the per-rank work meters in the trace reflect the intended
        parallel decomposition.  Does not affect the selected seeds.
    workers, start_method:
        ``workers > 1`` runs the estimation's sampling (and the counting
        pass of its per-round selections) on a
        :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`
        process pool — bit-identical output, real cores.  Results land
        through the engine's zero-copy shared-memory output arena with
        adaptive chunk sizing; the doubling rounds start at global
        sample index 0 on an empty collection, which is exactly the
        epoch the engine's fused in-worker counters re-arm on.  Ignored
        when a ``sampler`` is passed explicitly (the caller owns the
        engine choice then); an internally created engine is closed
        before returning.
    supervise, supervisor_opts:
        ``supervise=True`` makes the internally created engine a
        self-healing
        :class:`~repro.sampling.supervisor.SupervisedSamplingEngine`
        (any worker count, crash replay, optional deadline /
        checkpointing via ``supervisor_opts``).  A supervised deadline
        expiry raises
        :class:`~repro.sampling.supervisor.DeadlineExceededError` with
        the landed prefix intact in ``collection``.

    Raises
    ------
    ValueError
        If the instance is degenerate (``n < 2``, ``k < 1``, ``k > n``)
        or ``eps`` is out of range.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"IMM needs at least 2 vertices, got n={n}")
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    validate_eps(eps)
    model = DiffusionModel.parse(model)
    if collection is None:
        collection = SortedRRRCollection(n)
    owned_engine = None
    if sampler is None:
        if workers > 1 or supervise:
            from ..sampling.supervisor import build_sampling_engine

            owned_engine = build_sampling_engine(
                graph,
                model,
                workers=workers,
                start_method=start_method,
                supervise=supervise,
                supervisor_opts=supervisor_opts,
            )
            sampler = owned_engine
        else:
            sampler = BatchedRRRSampler(graph, model)
    try:
        return _estimate_theta_loop(
            graph, k, eps, model, seed, l,
            collection=collection,
            sampler=sampler,
            counters=counters,
            theta_cap=theta_cap,
            trace=trace,
            num_ranks=num_ranks,
        )
    finally:
        if owned_engine is not None:
            owned_engine.close()


def _estimate_theta_loop(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel,
    seed: int,
    l: float,
    *,
    collection: RRRCollection,
    sampler,
    counters: WorkCounters | None,
    theta_cap: int | None,
    trace: list | None,
    num_ranks: int,
) -> ThetaEstimate:
    """The doubling search itself, with sampler/engine already resolved."""
    from ..sampling import ParallelSamplingEngine

    n = graph.n
    count_engine = sampler if isinstance(sampler, ParallelSamplingEngine) else None
    l_eff = _inflated_l(n, l)
    eps_p = math.sqrt(2.0) * eps
    lam_p = lambda_prime(n, k, eps, l_eff)
    lam_s = lambda_star(n, k, eps, l_eff)

    lb = 1.0
    history: list[tuple[int, float]] = []
    rounds = 0
    max_x = max(1, int(math.ceil(math.log2(n))) - 1)
    for x in range(1, max_x + 1):
        rounds += 1
        y = n / (2.0**x)
        theta_x = int(math.ceil(lam_p / y))
        if theta_cap is not None:
            theta_x = min(theta_x, theta_cap)
        batch = sample_batch(graph, model, collection, theta_x, seed, sampler=sampler)
        if counters is not None:
            counters.edges_examined += batch.edges_examined
            counters.samples_generated += batch.count
        if trace is not None:
            trace.append(("sample", batch))
        sel = select_seeds(
            collection, n, k, num_ranks=num_ranks, count_engine=count_engine
        )
        if counters is not None:
            counters.entries_scanned += sel.entries_scanned
            counters.counter_updates += sel.counter_updates
        if trace is not None:
            trace.append(("select", sel))
        frac = sel.covered_samples / max(len(collection), 1)
        history.append((theta_x, frac))
        if n * frac >= (1.0 + eps_p) * y:
            lb = n * frac / (1.0 + eps_p)
            break
        if theta_cap is not None and theta_x >= theta_cap:
            break

    theta = int(math.ceil(lam_s / lb))
    if theta_cap is not None:
        theta = min(theta, theta_cap)
    return ThetaEstimate(
        theta=theta,
        lb=lb,
        collection=collection,
        rounds=rounds,
        coverage_history=history,
    )
