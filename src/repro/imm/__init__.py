"""The IMM algorithm (Tang et al. 2015) and its optimized serial variant.

This is the paper's core: Algorithm 1 (the three-phase skeleton),
Algorithm 2 (``EstimateTheta``, the martingale-based estimation of the
required sample count θ), and Algorithm 4 (greedy seed selection over
the RRR collection).  Two serial configurations correspond to the two
rows of Table 2:

* :func:`imm` with ``layout="sorted"`` — IMM\\ :sup:`OPT`, the paper's
  optimized implementation (one-directional sorted RRR storage);
* :func:`imm` with ``layout="hypergraph"`` — the reference IMM layout
  (bidirectional hypergraph storage).

Both produce a ``(1 - 1/e - ε)``-approximate seed set with probability
at least ``1 - 1/n^l``.  The parallel variants live in
:mod:`repro.parallel` (multithreaded) and :mod:`repro.mpi` (distributed)
and reuse the kernels defined here.
"""

from .imm import imm
from .result import DegradedResult, IMMResult
from .select import SelectionResult, select_seeds, select_seeds_hypergraph, select_seeds_sorted
from .sweep import imm_sweep
from .theta import (
    EPS_UPPER_BOUND,
    ThetaEstimate,
    estimate_theta,
    lambda_prime,
    lambda_star,
    logcnk,
    validate_eps,
)

__all__ = [
    "imm",
    "imm_sweep",
    "IMMResult",
    "DegradedResult",
    "estimate_theta",
    "ThetaEstimate",
    "EPS_UPPER_BOUND",
    "validate_eps",
    "logcnk",
    "lambda_prime",
    "lambda_star",
    "select_seeds",
    "select_seeds_sorted",
    "select_seeds_hypergraph",
    "SelectionResult",
]
