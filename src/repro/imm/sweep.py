"""``imm_sweep``: amortize RRR sampling across a sweep of k values.

The paper's introduction motivates fast implementations precisely with
this workflow: *"users typically have to test multiple k values (the
seed set size) before identifying an optimal configuration that can
maximize their 'return on investment' on the seeds."*

Running :func:`repro.imm.imm` once per k regenerates the RRR collection
from scratch every time, even though the samples are k-independent
(only *how many* are needed — θ — depends on k).  The sweep driver
keeps one collection and grows it monotonically: for each k in
ascending order it runs the θ estimation against the shared collection,
tops it up, and re-runs seed selection.  Sampling work is paid once for
the largest θ instead of once per k.

Guarantee note: for every k the collection holds **at least** θ(k)
samples (possibly more, inherited from other sweep points).  The
(1 - 1/e - ε) analysis only improves with extra samples, so each sweep
point keeps its guarantee; the selected seeds can differ slightly from
an isolated run because the estimator averages over a larger
collection.
"""

from __future__ import annotations

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..perf.counters import WorkCounters
from ..perf.timers import PhaseTimer
from ..sampling import (
    BatchedRRRSampler,
    SortedRRRCollection,
    sample_batch,
)
from .result import IMMResult
from .select import select_seeds
from .theta import estimate_theta

__all__ = ["imm_sweep"]


def imm_sweep(
    graph: CSRGraph,
    ks: list[int],
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    theta_cap: int | None = None,
    workers: int = 1,
    start_method: str | None = None,
    supervise: bool = False,
    supervisor_opts: dict | None = None,
) -> list[IMMResult]:
    """Run IMM for every k in ``ks``, sharing one RRR collection.

    Parameters
    ----------
    graph, eps, model, seed, l, theta_cap:
        As in :func:`repro.imm.imm`.
    ks:
        Seed-set sizes to evaluate (any order; processed ascending, and
        results are returned in the caller's order).
    workers, start_method:
        ``workers > 1`` runs the whole sweep on one shared
        :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`
        process pool (same bit-identical-output contract as
        ``imm(..., workers=w)``); the pool and its shared-memory CSR are
        paid once for all sweep points.
    supervise, supervisor_opts:
        ``supervise=True`` runs the shared engine under the self-healing
        supervisor (crash replay, spares, optional deadline /
        checkpointing via ``supervisor_opts`` — see
        :func:`repro.imm.imm`).  Because the collection is shared, a
        checkpoint written during a sweep covers every sweep point's
        samples.  A supervised deadline expiry raises
        :class:`~repro.sampling.supervisor.DeadlineExceededError` (the
        sweep has no single-k result to degrade into).

    Returns
    -------
    One :class:`IMMResult` per requested k (matching ``ks``'s order).
    Each result's ``extra["samples_reused"]`` records how many samples
    were inherited from earlier sweep points — the work the sweep saved.

    Raises
    ------
    ValueError
        On an empty sweep or any invalid k.
    """
    if not ks:
        raise ValueError("need at least one k")
    for k in ks:
        if not 1 <= k <= graph.n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    if workers < 1:
        raise ValueError("need at least one worker")
    model = DiffusionModel.parse(model)
    collection = SortedRRRCollection(graph.n)
    engine = None
    if workers > 1 or supervise:
        from ..sampling.supervisor import build_sampling_engine

        engine = build_sampling_engine(
            graph,
            model,
            workers=workers,
            start_method=start_method,
            supervise=supervise,
            supervisor_opts=supervisor_opts,
        )
        sampler = engine
    else:
        sampler = BatchedRRRSampler(graph, model)

    try:
        results = _sweep_loop(
            graph, ks, eps, model, seed, l,
            theta_cap=theta_cap,
            collection=collection,
            sampler=sampler,
            engine=engine,
            workers=workers,
        )
    finally:
        if engine is not None:
            engine.close()
    return [results[k] for k in ks]


def _sweep_loop(
    graph: CSRGraph,
    ks: list[int],
    eps: float,
    model: DiffusionModel,
    seed: int,
    l: float,
    *,
    theta_cap: int | None,
    collection: SortedRRRCollection,
    sampler,
    engine,
    workers: int,
) -> dict[int, IMMResult]:
    results: dict[int, IMMResult] = {}
    for k in sorted(set(ks)):
        timer = PhaseTimer()
        counters = WorkCounters()
        reused = len(collection)
        with timer.phase("EstimateTheta"):
            est = estimate_theta(
                graph,
                k,
                eps,
                model,
                seed,
                l,
                collection=collection,
                sampler=sampler,
                counters=counters,
                theta_cap=theta_cap,
            )
        with timer.phase("Sample"):
            batch = sample_batch(
                graph, model, collection, est.theta, seed, sampler=sampler
            )
            counters.edges_examined += batch.edges_examined
            counters.samples_generated += batch.count
        with timer.phase("SelectSeeds"):
            sel = select_seeds(collection, graph.n, k, count_engine=engine)
            counters.entries_scanned += sel.entries_scanned
            counters.counter_updates += sel.counter_updates
        results[k] = IMMResult(
            seeds=sel.seeds,
            k=k,
            epsilon=eps,
            model=model.value,
            layout="sorted",
            theta=est.theta,
            num_samples=len(collection),
            coverage=sel.coverage_fraction(len(collection)),
            lb=est.lb,
            breakdown=timer.breakdown(),
            counters=counters,
            memory_bytes=collection.nbytes_model(),
            simulated=False,
            ranks=1,
            extra={
                "n": graph.n,
                "estimation_rounds": est.rounds,
                "samples_reused": reused,
                "theta_capped": theta_cap is not None and est.theta >= theta_cap,
                "workers": workers,
                # Cumulative across the sweep: the engine (and its output
                # arena + fused counters) is shared by every ε point.
                **(
                    {"engine": engine.stats.as_dict()}
                    if engine is not None
                    else {}
                ),
            },
        )
    return results
