"""Algorithm 1: the serial IMM driver.

    S <- InfluenceMaximization(G, k, eps):
        (R, theta) <- EstimateTheta(G, k, eps)
        R <- Sample(G, theta - |R|, R)
        S <- SelectSeeds(G, k, R)

Two layouts select the two serial rows of Table 2:

* ``layout="sorted"``     → IMM\\ :sup:`OPT` (this paper's serial code);
* ``layout="hypergraph"`` → the reference IMM storage of Tang et al.

Timing convention (matches the paper's figures): sampling performed
inside ``EstimateTheta`` is charged to the *EstimateTheta* phase; only
the top-up invocation from this skeleton is charged to *Sample*.
"""

from __future__ import annotations

import math

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..perf.counters import WorkCounters
from ..perf.timers import PhaseTimer
from ..sampling import (
    BatchedRRRSampler,
    CompressedRRRCollection,
    DeadlineExceededError,
    HypergraphRRRCollection,
    SortedRRRCollection,
    sample_batch,
)
from ..sampling.supervisor import build_sampling_engine
from .result import DegradedResult, IMMResult
from .select import select_seeds
from .theta import _inflated_l, estimate_theta, lambda_star

__all__ = ["imm"]


def imm(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    layout: str = "sorted",
    theta_cap: int | None = None,
    workers: int = 1,
    start_method: str | None = None,
    supervise: bool = False,
    supervisor_opts: dict | None = None,
) -> IMMResult:
    """Run serial IMM and return the seed set with full diagnostics.

    Parameters
    ----------
    graph:
        Input graph with activation probabilities already assigned (see
        :mod:`repro.graph.weights`; apply
        :func:`~repro.graph.weights.lt_normalize` before LT runs).
    k:
        Seed-set size.
    eps:
        Accuracy knob: the guarantee is a ``(1 - 1/e - eps)``
        approximation with probability ``1 - 1/n^l``.
    model:
        ``"IC"`` or ``"LT"``.
    seed:
        Master RNG seed; all randomness derives from it.
    layout:
        ``"sorted"`` (IMM\\ :sup:`OPT`), ``"compressed"`` (frequency-
        ranked delta+varint coding, selection straight off the coded
        stream — see :mod:`repro.sampling.compressed`), or
        ``"hypergraph"`` (reference).  All three produce bit-identical
        seeds, θ, and coverage history.
    theta_cap:
        Optional ceiling on θ for bounded benchmark runs; a capped run
        reports ``extra["theta_capped"] = True`` and waives the formal
        guarantee.
    workers, start_method:
        ``workers > 1`` executes sampling and the selection counting
        pass on a real
        :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`
        process pool (shared-memory CSR, ``start_method`` selects how
        workers are started).  Results are bit-identical to the serial
        run — same seeds, θ, and coverage history — only the wall clock
        in ``breakdown`` changes.  Requires ``layout="sorted"`` or
        ``"compressed"``.
    supervise, supervisor_opts:
        ``supervise=True`` runs on the self-healing
        :class:`~repro.sampling.supervisor.SupervisedSamplingEngine`
        instead: worker crashes are healed by deterministic block replay
        (bit-identical output), and ``supervisor_opts`` passes through
        any supervisor keyword — ``spares``, ``crash_budget``,
        ``deadline``, ``checkpoint_dir``/``resume_from``, ``fault_plan``,
        straggler-speculation knobs (requires ``layout="sorted"`` or
        ``"compressed"``).  A ``deadline`` that expires mid-θ
        returns a :class:`~repro.imm.result.DegradedResult` (seeds
        selected from the landed prefix, ``theta_effective``/
        ``epsilon_effective`` recomputed as the MPI shrink policy does)
        instead of raising.  ``supervise=True`` works for any worker
        count, including 1 (deadline and checkpointing still apply).

    Returns
    -------
    :class:`IMMResult` (a :class:`DegradedResult` when a supervised run
    deadline expired).
    """
    model = DiffusionModel.parse(model)
    if workers < 1:
        raise ValueError("need at least one worker")
    if layout == "sorted":
        collection = SortedRRRCollection(graph.n)
    elif layout == "compressed":
        collection = CompressedRRRCollection(graph.n)
    elif layout == "hypergraph":
        if workers > 1 or supervise:
            raise ValueError(
                "workers > 1 / supervise=True require layout='sorted' "
                "or 'compressed'"
            )
        collection = HypergraphRRRCollection(graph.n)
    else:
        raise ValueError(
            f"unknown layout {layout!r}; expected 'sorted', 'compressed', "
            "or 'hypergraph'"
        )

    timer = PhaseTimer()
    counters = WorkCounters()
    engine = None
    if workers > 1 or supervise:
        engine = build_sampling_engine(
            graph,
            model,
            workers=workers,
            start_method=start_method,
            supervise=supervise,
            supervisor_opts=supervisor_opts,
        )
        sampler = engine
    else:
        sampler = BatchedRRRSampler(graph, model)

    est = None
    try:
        with timer.phase("EstimateTheta"):
            est = estimate_theta(
                graph,
                k,
                eps,
                model,
                seed,
                l,
                collection=collection,
                sampler=sampler,
                counters=counters,
                theta_cap=theta_cap,
            )

        with timer.phase("Sample"):
            batch = sample_batch(
                graph, model, collection, est.theta, seed, sampler=sampler
            )
            counters.edges_examined += batch.edges_examined
            counters.samples_generated += batch.count

        with timer.phase("SelectSeeds"):
            sel = select_seeds(collection, graph.n, k, count_engine=engine)
            counters.entries_scanned += sel.entries_scanned
            counters.counter_updates += sel.counter_updates
    except DeadlineExceededError:
        return _degraded_result(
            graph, k, eps, model, seed, l,
            layout=layout,
            collection=collection,
            est=est,
            timer=timer,
            counters=counters,
            workers=workers,
            engine=engine,
        )
    finally:
        if engine is not None:
            engine.close()

    return IMMResult(
        seeds=sel.seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        layout=layout,
        theta=est.theta,
        num_samples=len(collection),
        coverage=sel.coverage_fraction(len(collection)),
        lb=est.lb,
        breakdown=timer.breakdown(),
        counters=counters,
        memory_bytes=collection.nbytes_model(),
        simulated=False,
        ranks=1,
        extra={
            "n": graph.n,
            "estimation_rounds": est.rounds,
            "coverage_history": est.coverage_history,
            "theta_capped": theta_cap is not None and est.theta >= theta_cap,
            "workers": workers,
            "supervised": supervise,
            # Per-phase engine counters (arena writes, landing, fused
            # merges, IPC descriptor bytes) — what the regression
            # harness's worker-scaling breakdown records.
            **({"engine": engine.stats.as_dict()} if engine is not None else {}),
            **(
                {"supervisor": engine.stats.as_dict()}
                if supervise and engine is not None
                else {}
            ),
        },
    )


def _degraded_result(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel,
    seed: int,
    l: float,
    *,
    layout: str,
    collection,
    est,
    timer: PhaseTimer,
    counters: WorkCounters,
    workers: int,
    engine,
) -> DegradedResult:
    """Convert a supervised deadline expiry into an honest partial result.

    Seeds are selected (serially) from the landed in-order prefix, and
    ``epsilon_effective`` is recomputed exactly as the MPI shrink policy
    does: λ* scales as 1/ε² at fixed ``(n, k, l)``, so the ε that the
    surviving ``theta_effective · LB`` sample budget certifies inverts
    in closed form.  If the deadline expired before θ estimation
    produced a certified lower bound, the trivial ``OPT >= 1`` bound is
    used (and no target θ is reported beyond the landed count).
    """
    n = graph.n
    theta_eff = len(collection)
    lb = est.lb if est is not None else 1.0
    theta_target = est.theta if est is not None else theta_eff
    eps_eff = math.sqrt(
        lambda_star(n, k, 1.0, _inflated_l(n, l)) / max(theta_eff * lb, 1.0)
    )
    with timer.phase("SelectSeeds"):
        if theta_eff > 0:
            sel = select_seeds(collection, n, k)
            counters.entries_scanned += sel.entries_scanned
            counters.counter_updates += sel.counter_updates
            seeds = sel.seeds
            coverage = sel.coverage_fraction(theta_eff)
        else:
            seeds = np.empty(0, dtype=np.int64)
            coverage = 0.0
    stats = engine.stats.as_dict() if engine is not None else None
    return DegradedResult(
        seeds=seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        layout=layout,
        theta=theta_target,
        num_samples=theta_eff,
        coverage=coverage,
        lb=lb,
        breakdown=timer.breakdown(),
        counters=counters,
        memory_bytes=collection.nbytes_model(),
        simulated=False,
        ranks=1,
        theta_effective=theta_eff,
        epsilon_effective=eps_eff,
        degraded_reason="deadline",
        extra={
            "n": n,
            "workers": workers,
            "supervised": True,
            "degraded": True,
            "theta_effective": theta_eff,
            "lost_samples": theta_target - theta_eff,
            "epsilon_effective": eps_eff,
            "estimation_rounds": est.rounds if est is not None else None,
            "engine": stats,
            "supervisor": stats,
        },
    )
