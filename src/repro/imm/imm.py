"""Algorithm 1: the serial IMM driver.

    S <- InfluenceMaximization(G, k, eps):
        (R, theta) <- EstimateTheta(G, k, eps)
        R <- Sample(G, theta - |R|, R)
        S <- SelectSeeds(G, k, R)

Two layouts select the two serial rows of Table 2:

* ``layout="sorted"``     → IMM\\ :sup:`OPT` (this paper's serial code);
* ``layout="hypergraph"`` → the reference IMM storage of Tang et al.

Timing convention (matches the paper's figures): sampling performed
inside ``EstimateTheta`` is charged to the *EstimateTheta* phase; only
the top-up invocation from this skeleton is charged to *Sample*.
"""

from __future__ import annotations

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..perf.counters import WorkCounters
from ..perf.timers import PhaseTimer
from ..sampling import (
    BatchedRRRSampler,
    HypergraphRRRCollection,
    ParallelSamplingEngine,
    SortedRRRCollection,
    sample_batch,
)
from .result import IMMResult
from .select import select_seeds
from .theta import estimate_theta

__all__ = ["imm"]


def imm(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    layout: str = "sorted",
    theta_cap: int | None = None,
    workers: int = 1,
    start_method: str | None = None,
) -> IMMResult:
    """Run serial IMM and return the seed set with full diagnostics.

    Parameters
    ----------
    graph:
        Input graph with activation probabilities already assigned (see
        :mod:`repro.graph.weights`; apply
        :func:`~repro.graph.weights.lt_normalize` before LT runs).
    k:
        Seed-set size.
    eps:
        Accuracy knob: the guarantee is a ``(1 - 1/e - eps)``
        approximation with probability ``1 - 1/n^l``.
    model:
        ``"IC"`` or ``"LT"``.
    seed:
        Master RNG seed; all randomness derives from it.
    layout:
        ``"sorted"`` (IMM\\ :sup:`OPT`) or ``"hypergraph"`` (reference).
    theta_cap:
        Optional ceiling on θ for bounded benchmark runs; a capped run
        reports ``extra["theta_capped"] = True`` and waives the formal
        guarantee.
    workers, start_method:
        ``workers > 1`` executes sampling and the selection counting
        pass on a real
        :class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`
        process pool (shared-memory CSR, ``start_method`` selects how
        workers are started).  Results are bit-identical to the serial
        run — same seeds, θ, and coverage history — only the wall clock
        in ``breakdown`` changes.  Requires ``layout="sorted"``.

    Returns
    -------
    :class:`IMMResult`
    """
    model = DiffusionModel.parse(model)
    if workers < 1:
        raise ValueError("need at least one worker")
    if layout == "sorted":
        collection = SortedRRRCollection(graph.n)
    elif layout == "hypergraph":
        if workers > 1:
            raise ValueError("workers > 1 requires layout='sorted'")
        collection = HypergraphRRRCollection(graph.n)
    else:
        raise ValueError(f"unknown layout {layout!r}; expected 'sorted' or 'hypergraph'")

    timer = PhaseTimer()
    counters = WorkCounters()
    engine = None
    if workers > 1:
        engine = ParallelSamplingEngine(
            graph, model, workers=workers, start_method=start_method
        )
        sampler = engine
    else:
        sampler = BatchedRRRSampler(graph, model)

    try:
        with timer.phase("EstimateTheta"):
            est = estimate_theta(
                graph,
                k,
                eps,
                model,
                seed,
                l,
                collection=collection,
                sampler=sampler,
                counters=counters,
                theta_cap=theta_cap,
            )

        with timer.phase("Sample"):
            batch = sample_batch(
                graph, model, collection, est.theta, seed, sampler=sampler
            )
            counters.edges_examined += batch.edges_examined
            counters.samples_generated += batch.count

        with timer.phase("SelectSeeds"):
            sel = select_seeds(collection, graph.n, k, count_engine=engine)
            counters.entries_scanned += sel.entries_scanned
            counters.counter_updates += sel.counter_updates
    finally:
        if engine is not None:
            engine.close()

    return IMMResult(
        seeds=sel.seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        layout=layout,
        theta=est.theta,
        num_samples=len(collection),
        coverage=sel.coverage_fraction(len(collection)),
        lb=est.lb,
        breakdown=timer.breakdown(),
        counters=counters,
        memory_bytes=collection.nbytes_model(),
        simulated=False,
        ranks=1,
        extra={
            "n": graph.n,
            "estimation_rounds": est.rounds,
            "coverage_history": est.coverage_history,
            "theta_capped": theta_cap is not None and est.theta >= theta_cap,
            "workers": workers,
        },
    )
