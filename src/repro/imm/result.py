"""Result record shared by every IMM variant (serial, MT, distributed)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perf.counters import WorkCounters
from ..perf.timers import PhaseBreakdown

__all__ = ["IMMResult", "DegradedResult"]


@dataclass
class IMMResult:
    """Everything a run of any IMM variant reports.

    Attributes
    ----------
    seeds:
        The selected seed set ``S`` (``k`` vertex ids, selection order).
    k, epsilon, model, layout:
        Run configuration (``model`` is ``"IC"``/``"LT"``; ``layout`` is
        ``"sorted"`` for IMM\\ :sup:`OPT` or ``"hypergraph"`` for the
        reference layout).
    theta:
        The estimated number of RRR sets.
    num_samples:
        RRR sets actually generated (== θ unless capped).
    coverage:
        Fraction of samples covered by ``seeds`` — the unbiased-estimator
        numerator of Section 3.1: ``coverage * n`` estimates the spread.
    lb:
        The certified lower bound on OPT from the estimation phase.
    breakdown:
        Per-phase seconds (wall-clock for serial runs, modeled seconds
        for the simulated-parallel runs; :attr:`simulated` says which).
    counters:
        Work ledger (edges examined, counter updates, ...).
    memory_bytes:
        Modeled resident bytes of the RRR collection (per rank for the
        distributed variant).
    simulated:
        True when :attr:`breakdown` holds modeled time from a
        :class:`~repro.parallel.machine.MachineSpec` rather than
        measured wall-clock.
    ranks:
        Degree of parallelism the run represents (1 for serial; threads
        for MT; total ranks for distributed).
    extra:
        Variant-specific diagnostics (e.g. per-rank sample counts,
        communication seconds).
    """

    seeds: np.ndarray
    k: int
    epsilon: float
    model: str
    layout: str
    theta: int
    num_samples: int
    coverage: float
    lb: float
    breakdown: PhaseBreakdown
    counters: WorkCounters
    memory_bytes: int
    simulated: bool = False
    ranks: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total seconds (the paper's 'time to solution')."""
        return self.breakdown.total

    def expected_spread_estimate(self, n: int) -> float:
        """``F_R(S) · n`` — the collection-based spread estimate."""
        return self.coverage * n

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"IMM[{self.layout},{self.model}] k={self.k} eps={self.epsilon}"
            f" theta={self.theta} coverage={self.coverage:.3f}"
            f" time={self.total_time:.3f}s ranks={self.ranks}"
            f"{' (simulated)' if self.simulated else ''}"
        )


@dataclass
class DegradedResult(IMMResult):
    """An honest partial result: the run budget expired mid-θ.

    The supervised engine landed ``theta_effective`` samples before the
    deadline; the seed set was selected from that in-order prefix.  The
    full-θ ``(1 - 1/e - eps)`` guarantee is *waived*:
    ``epsilon_effective`` is the ε the surviving sample budget still
    certifies, recomputed exactly as the MPI shrink policy recomputes it
    (``λ*`` scales as ``1/ε²`` at fixed ``(n, k, l)``, so the ε that
    ``theta_effective · LB`` samples certify inverts in closed form).
    When the deadline expired before θ estimation finished, ``LB`` falls
    back to the trivial ``OPT >= 1`` bound and ``theta`` reports the
    landed count itself (no target θ was ever certified).

    The same accounting is mirrored into ``extra`` under the keys the
    distributed shrink policy uses (``degraded``, ``theta_effective``,
    ``lost_samples``, ``epsilon_effective``) so downstream tooling can
    treat both degradation paths uniformly.
    """

    theta_effective: int = 0
    epsilon_effective: float = float("inf")
    degraded_reason: str = "deadline"

    @property
    def degraded(self) -> bool:
        return True

    def summary(self) -> str:
        return (
            super().summary()
            + f" DEGRADED[{self.degraded_reason}] theta_eff={self.theta_effective}"
            + f" eps_eff={self.epsilon_effective:.3f}"
        )
