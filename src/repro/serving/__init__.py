"""The influence-query serving layer: freeze once, serve forever.

RRR sampling dominates IMM cost (the paper's premise); a production
service answering many queries — different ``k``, eps-tightening,
what-if seed sets — should pay it once.  This subpackage provides:

* :class:`FrozenRRRIndex` — the write-ahead checkpoint spill promoted to
  a versioned, memory-mappable index format with a stream-fingerprint
  integrity seal and a graph fingerprint binding it to its instance
  (:mod:`repro.serving.frozen`).
* :class:`InfluenceQueryEngine` — ``top_k`` / ``marginal_gain`` /
  ``what_if`` / ``tighten`` served from the mapped bytes via CELF lazy
  re-selection, bit-identical to a fresh ``imm()`` run by replaying the
  θ-estimation control flow over index prefixes
  (:mod:`repro.serving.query`).
* :class:`IndexCache` — a concurrency-safe LRU of open
  per-``(graph, model, eps)`` indices with refcounted leases
  (:mod:`repro.serving.cache`).
* :class:`ServingFrontend` — the traffic-hardened asyncio front end:
  bounded admission with typed load-shedding, query coalescing, a
  single-writer extension bulkhead behind a circuit breaker, and
  deadline-bounded degradation into honest
  :class:`DegradedServingResult` answers
  (:mod:`repro.serving.frontend`).
* :class:`ClusterRouter` — the replicated serving cluster: consistent-
  hash routing over N front-end replicas, health-checked failover,
  tail-latency hedging for reads, single-writer routing for extension
  traffic, and typed stale-prefix degradation when every replica is
  down (:mod:`repro.serving.cluster`).

CLI: ``repro-imm freeze`` / ``repro-imm query`` / ``repro-imm serve``
(``--replicas N`` switches the serve driver onto the cluster router).
"""

from .cache import IndexCache
from .cluster import ClusterRouter, ClusterStats, ReplicaUnreachableError
from .errors import (
    AdmissionRejected,
    ClusterUnavailable,
    ExtensionFailedError,
    QueryDeadlineExceeded,
    ServingFrontendError,
)
from .frontend import (
    CircuitBreaker,
    DegradedServingResult,
    FrontendStats,
    ServingFrontend,
    ewma_update,
    shrink_epsilon,
)
from .frozen import (
    COMPRESSED_ENCODING_VERSION,
    FrozenCollectionView,
    FrozenIndexError,
    FrozenRRRIndex,
    StaleIndexError,
    UnknownLayoutError,
    graph_fingerprint,
)
from .query import InfluenceQueryEngine, MarginalGains, ServingResult, freeze_index

__all__ = [
    "FrozenRRRIndex",
    "FrozenCollectionView",
    "FrozenIndexError",
    "StaleIndexError",
    "UnknownLayoutError",
    "COMPRESSED_ENCODING_VERSION",
    "graph_fingerprint",
    "InfluenceQueryEngine",
    "ServingResult",
    "MarginalGains",
    "freeze_index",
    "IndexCache",
    "ServingFrontend",
    "DegradedServingResult",
    "CircuitBreaker",
    "FrontendStats",
    "shrink_epsilon",
    "ewma_update",
    "ClusterRouter",
    "ClusterStats",
    "ReplicaUnreachableError",
    "ServingFrontendError",
    "AdmissionRejected",
    "QueryDeadlineExceeded",
    "ExtensionFailedError",
    "ClusterUnavailable",
]
