"""The influence-query serving layer: freeze once, serve forever.

RRR sampling dominates IMM cost (the paper's premise); a production
service answering many queries — different ``k``, eps-tightening,
what-if seed sets — should pay it once.  This subpackage provides:

* :class:`FrozenRRRIndex` — the write-ahead checkpoint spill promoted to
  a versioned, memory-mappable index format with a stream-fingerprint
  integrity seal and a graph fingerprint binding it to its instance
  (:mod:`repro.serving.frozen`).
* :class:`InfluenceQueryEngine` — ``top_k`` / ``marginal_gain`` /
  ``what_if`` / ``tighten`` served from the mapped bytes via CELF lazy
  re-selection, bit-identical to a fresh ``imm()`` run by replaying the
  θ-estimation control flow over index prefixes
  (:mod:`repro.serving.query`).
* :class:`IndexCache` — an LRU of open per-``(graph, model, eps)``
  indices (:mod:`repro.serving.cache`).

CLI: ``repro-imm freeze`` / ``repro-imm query``.
"""

from .cache import IndexCache
from .frozen import (
    FrozenCollectionView,
    FrozenIndexError,
    FrozenRRRIndex,
    StaleIndexError,
    graph_fingerprint,
)
from .query import InfluenceQueryEngine, MarginalGains, ServingResult, freeze_index

__all__ = [
    "FrozenRRRIndex",
    "FrozenCollectionView",
    "FrozenIndexError",
    "StaleIndexError",
    "graph_fingerprint",
    "InfluenceQueryEngine",
    "ServingResult",
    "MarginalGains",
    "freeze_index",
    "IndexCache",
]
