"""LRU of open frozen indices, keyed by ``(graph, model, eps, theta_cap)``.

A serving process answers queries for many instances; each open index
costs mapped address space plus the derived ``indptr`` / ``sample_of`` /
vertex-position arrays.  The cache bounds that footprint: at most
``capacity`` indices stay open, evicting the least recently used (its
memmaps are closed; the on-disk index is untouched and reopens on the
next request).

Keys are the *identity* of the frozen instance — the graph fingerprint
(falling back to the resolved path for indices frozen without a graph),
the diffusion model, the manifest ``eps``, and the ``theta_cap`` — read
fresh from the tiny manifest JSON on every request, so a ``tighten``
that amends the manifest in place re-keys the entry instead of leaving
a stale alias.

**Concurrency contract** (what the async front end leans on):

* Every structural mutation — lookup, LRU reorder, eviction, re-key —
  happens under one internal lock, so concurrent requests cannot corrupt
  the table.
* :meth:`lease` hands out *refcounted* engines: an entry pinned by a
  live lease is never closed by eviction, invalidation, or re-keying —
  its close is deferred until the last lease releases, so a query can
  never have its memmaps unmapped mid-CELF.
* A ``tighten`` through the cached engine re-keys the entry **in place**
  (the open memmaps already serve the amended manifest); only a manifest
  that changed *behind* the open engine — an out-of-process republish —
  retires it and reopens from disk.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

from .frozen import FrozenIndexError, FrozenRRRIndex
from .query import InfluenceQueryEngine

__all__ = ["IndexCache"]


class _Entry:
    """One open engine plus the bookkeeping eviction needs."""

    __slots__ = ("engine", "path", "key", "refs", "retired")

    def __init__(self, engine: InfluenceQueryEngine, path: Path, key: tuple):
        self.engine = engine
        self.path = path
        self.key = key
        self.refs = 0
        self.retired = False


class IndexCache:
    """Bounded pool of :class:`InfluenceQueryEngine` instances."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("cache needs capacity >= 1")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._key_of_path: dict[Path, tuple] = {}
        # Entries displaced while pinned by a lease; closed on release.
        self._retired: set[_Entry] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(path: Path) -> tuple:
        try:
            manifest = json.loads((path / "INDEX.json").read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FrozenIndexError(
                f"unreadable index manifest under {path}: {exc}"
            ) from exc
        return IndexCache._manifest_key(manifest, path)

    @staticmethod
    def _manifest_key(manifest: dict, path: Path) -> tuple:
        # theta_cap is part of the identity: a capped and an uncapped
        # freeze of the same (graph, model, eps) answer tighter-eps
        # queries differently (the cap is replay-sticky), so they must
        # never alias one cache entry.
        identity = manifest.get("graph_fingerprint") or str(path)
        return (
            identity,
            manifest.get("model"),
            manifest.get("eps"),
            manifest.get("theta_cap"),
        )

    def engine(self, path: str | Path, *, graph=None) -> InfluenceQueryEngine:
        """Return the (cached) engine for the index at ``path``.

        ``graph`` is forwarded on open (fingerprint-verified, enables
        extension) and attached to a cached engine that was opened
        without one.  The returned engine is *not* pinned — it may be
        evicted by a later request; concurrent callers should use
        :meth:`lease` instead.
        """
        with self._lock:
            return self._get(path, graph).engine

    @contextmanager
    def lease(self, path: str | Path, *, graph=None):
        """Context-managed engine access, pinned against eviction.

        While the lease is held the entry's memmaps cannot be closed —
        eviction, :meth:`invalidate`, and republish-driven retirement all
        defer the close until the last lease releases.
        """
        with self._lock:
            entry = self._get(path, graph)
            entry.refs += 1
        try:
            yield entry.engine
        finally:
            with self._lock:
                entry.refs -= 1
                if entry.retired and entry.refs == 0:
                    entry.engine.index.close()
                    self._retired.discard(entry)

    def identity(self, path: str | Path) -> tuple:
        """The identity key the cache would use for ``path`` right now.

        A fresh read of the tiny manifest JSON — no entry is created or
        touched.  The front end folds this into its coalescing key so
        identical queries only share an execution when they target the
        same on-disk index identity, not merely the same path.
        """
        return self._key(Path(path).resolve())

    def pin(self, engine: InfluenceQueryEngine):
        """Refcount-pin the entry owning ``engine``; returns a release
        callable (a no-op when the engine is not cached).

        Unlike :meth:`lease` this resolves by engine identity, not path,
        so it pins the exact entry even after a republish re-pointed the
        path elsewhere.  The front end uses it to keep an index mapped
        while a leaked extension thread finishes after its caller's
        lease has already been released.
        """
        with self._lock:
            for entry in (*self._entries.values(), *self._retired):
                if entry.engine is engine:
                    entry.refs += 1
                    break
            else:
                return lambda: None

        def release() -> None:
            with self._lock:
                entry.refs -= 1
                if entry.retired and entry.refs == 0:
                    entry.engine.index.close()
                    self._retired.discard(entry)

        return release

    def invalidate(self, path: str | Path) -> None:
        """Drop the entry for ``path`` (hot re-open: the next request
        reopens from disk).  Pinned entries are retired, not closed."""
        path = Path(path).resolve()
        with self._lock:
            key = self._key_of_path.pop(path, None)
            if key is None:
                return
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._retire(entry)

    # -- internals (caller holds the lock) ---------------------------------

    def _get(self, path: str | Path, graph) -> _Entry:
        path = Path(path).resolve()
        key = self._key(path)
        stale = self._key_of_path.get(path)
        if stale is not None and stale != key:
            # The manifest changed since this path was cached.  If it
            # changed through the cached engine (tighten amends the
            # manifest it holds), the open memmaps are current: re-key
            # atomically.  If it changed behind the engine (republish),
            # the maps are stale: retire and reopen.
            entry = self._entries.pop(stale, None)
            del self._key_of_path[path]
            if entry is not None:
                mem_key = self._manifest_key(entry.engine.index.manifest, path)
                if mem_key == key and not entry.retired:
                    entry.key = key
                    self._entries[key] = entry
                    self._key_of_path[path] = key
                else:
                    self._retire(entry)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            if graph is not None and entry.engine.graph is None:
                entry.engine.index.verify_graph(graph)
                entry.engine.graph = graph
            return entry
        self.misses += 1
        index = FrozenRRRIndex.open(path, graph=graph)
        engine = InfluenceQueryEngine(index, graph=graph, verify=False)
        entry = _Entry(engine, path, key)
        self._entries[key] = entry
        self._key_of_path[path] = key
        self._evict_over_capacity(keep=entry)
        return entry

    def _evict_over_capacity(self, keep: _Entry | None = None) -> None:
        # Evict LRU-first among unpinned entries; pinned entries and the
        # entry being handed out (``keep``) are skipped (the cache may
        # transiently exceed capacity while every entry is leased —
        # bounded by the front end's admission limit).
        while len(self._entries) > self.capacity:
            victim_key = next(
                (
                    k for k, e in self._entries.items()
                    if e.refs == 0 and e is not keep
                ),
                None,
            )
            if victim_key is None:
                break
            victim = self._entries.pop(victim_key)
            self.evictions += 1
            self._retire(victim)
            self._key_of_path = {
                p: k for p, k in self._key_of_path.items() if k in self._entries
            }

    def _retire(self, entry: _Entry) -> None:
        if entry.refs == 0:
            entry.engine.index.close()
        else:
            entry.retired = True
            self._retired.add(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def close(self) -> None:
        """Close every open index (idempotent).  Force-closes pinned
        entries too — quiesce the front end before calling this."""
        with self._lock:
            for entry in self._entries.values():
                entry.engine.index.close()
            for entry in self._retired:
                entry.engine.index.close()
            self._entries.clear()
            self._retired.clear()
            self._key_of_path.clear()
