"""LRU of open frozen indices, keyed by ``(graph, model, eps)``.

A serving process answers queries for many instances; each open index
costs mapped address space plus the derived ``indptr`` / ``sample_of`` /
vertex-position arrays.  The cache bounds that footprint: at most
``capacity`` indices stay open, evicting the least recently used (its
memmaps are closed; the on-disk index is untouched and reopens on the
next request).

Keys are the *identity* of the frozen instance — the graph fingerprint
(falling back to the resolved path for indices frozen without a graph),
the diffusion model, and the manifest ``eps`` — read fresh from the tiny
manifest JSON on every request, so a ``tighten`` that amends the
manifest in place re-keys the entry instead of leaving a stale alias.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path

from .frozen import FrozenIndexError, FrozenRRRIndex
from .query import InfluenceQueryEngine

__all__ = ["IndexCache"]


class IndexCache:
    """Bounded pool of :class:`InfluenceQueryEngine` instances."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("cache needs capacity >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, InfluenceQueryEngine]" = OrderedDict()
        self._key_of_path: dict[Path, tuple] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(path: Path) -> tuple:
        try:
            manifest = json.loads((path / "INDEX.json").read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FrozenIndexError(
                f"unreadable index manifest under {path}: {exc}"
            ) from exc
        identity = manifest.get("graph_fingerprint") or str(path)
        return (identity, manifest.get("model"), manifest.get("eps"))

    def engine(self, path: str | Path, *, graph=None) -> InfluenceQueryEngine:
        """Return the (cached) engine for the index at ``path``.

        ``graph`` is forwarded on open (fingerprint-verified, enables
        extension) and attached to a cached engine that was opened
        without one.
        """
        path = Path(path).resolve()
        key = self._key(path)
        stale = self._key_of_path.get(path)
        if stale is not None and stale != key:
            # tighten() amended the manifest: drop the old-key alias.
            old = self._entries.pop(stale, None)
            if old is not None:
                old.index.close()
            del self._key_of_path[path]
        engine = self._entries.get(key)
        if engine is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            if graph is not None and engine.graph is None:
                engine.index.verify_graph(graph)
                engine.graph = graph
            return engine
        self.misses += 1
        index = FrozenRRRIndex.open(path, graph=graph)
        engine = InfluenceQueryEngine(index, graph=graph, verify=False)
        self._entries[key] = engine
        self._key_of_path[path] = key
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            evicted.index.close()
            self.evictions += 1
            self._key_of_path = {
                p: k for p, k in self._key_of_path.items() if k in self._entries
            }
        return engine

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        """Close every open index (idempotent)."""
        for engine in self._entries.values():
            engine.index.close()
        self._entries.clear()
        self._key_of_path.clear()
