"""Frozen RRR index: the write-ahead checkpoint spill, promoted to a
versioned, memory-mappable serving artifact.

The checkpoint sink (:mod:`repro.sampling.checkpoint`) already spills a
collection as three append-only raw buffers plus an atomic cursor; a
*frozen index* is the same binary layout with the cursor replaced by an
immutable manifest that additionally records the algorithm facts a query
engine needs to serve without resampling:

``index_dir/``
    ``INDEX.json``
        Format version; the sampling identity ``(n, model, seed)``; the
        algorithm facts ``(k, eps, l, theta, lb, theta_cap,
        coverage_history)`` of the run that froze it; the XOR-folded
        per-sample stream fingerprint of ``[0, num_samples)`` (the same
        incremental fold the checkpoint cursor and the worker handshake
        use) as the integrity seal; and the fingerprint of the graph the
        samples were drawn against, so a stale index cannot silently
        serve a mutated graph.
    ``flat.i32.bin`` / ``sizes.i64.bin`` / ``edges.i64.bin``
        Identical to the checkpoint spill: concatenated sorted vertex
        lists, per-sample lengths, per-sample examined-edge meters.

A ``layout="compressed"`` index replaces ``flat.i32.bin`` with the
frequency-ranked delta+varint section of
:mod:`repro.sampling.compressed` — ``coded.u8.bin`` (the coded byte
stream), ``offsets.i64.bin`` (per-sample end offsets) and
``perm.i64.bin`` (the pinned rank→vertex permutation) — typically a
small fraction of the flat bytes.  The manifest records the layout and
its encoding version explicitly, so an old reader meeting a newer
section fails loud with :class:`UnknownLayoutError` instead of
misdecoding; extension encodes only the appended samples under the
pinned permutation (the sealed bytes are never rewritten).

:meth:`FrozenRRRIndex.open` maps the buffers zero-copy via
``np.memmap`` — no read-then-copy — and verifies the seal: the fold of
``stream_seeds_array(seed, [0, num_samples))`` must equal the manifest's,
the byte sizes must match the manifest exactly, and the derived
``indptr`` must land on ``entries``.  Only the derived ``indptr`` /
``sample_of`` arrays (needed by the selection kernels) are materialized;
the incidence data itself — the array that grows with θ — stays on disk
until the page cache faults it in.

Because sample ``j`` is a pure function of ``(graph, model, seed, j)``,
a frozen index can be *extended* in place when a tighter ``eps`` (or a
larger ``k``) demands more samples: θ grows monotonically and the frozen
prefix stays valid byte for byte.  :meth:`FrozenRRRIndex.extend` appends
to the data files and re-seals the manifest atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from ..rng.streams import stream_seeds_array
from ..sampling.checkpoint import BlockCheckpointSink, _fsync_dir
from ..sampling.collection import SortedRRRCollection
from ..sampling.compressed import CompressedRRRCollection

__all__ = [
    "FrozenRRRIndex",
    "FrozenIndexError",
    "StaleIndexError",
    "UnknownLayoutError",
    "FrozenCollectionView",
    "graph_fingerprint",
    "INDEX_FORMAT_VERSION",
    "COMPRESSED_ENCODING_VERSION",
]

INDEX_FORMAT_VERSION = 1
#: Version of the compressed section's wire encoding (rank permutation +
#: delta/varint framing).  Bumped whenever decoded bytes would change
#: meaning; readers refuse unknown versions instead of misdecoding.
COMPRESSED_ENCODING_VERSION = 1
_KNOWN_LAYOUTS = ("flat", "compressed")
_MANIFEST = "INDEX.json"
_FLAT = "flat.i32.bin"
_SIZES = "sizes.i64.bin"
_EDGES = "edges.i64.bin"
_CODED = "coded.u8.bin"
_OFFSETS = "offsets.i64.bin"
_PERM = "perm.i64.bin"


class FrozenIndexError(RuntimeError):
    """An index directory is malformed, torn, or fails its integrity seal."""


class StaleIndexError(FrozenIndexError):
    """The graph being served does not match the graph the index was
    frozen against — answering from it would be silently wrong."""


class UnknownLayoutError(FrozenIndexError):
    """The index declares a storage layout or encoding version this
    reader does not implement — decoding would produce garbage, so the
    reader fails loud.  Distinct from :class:`StaleIndexError`: the
    index may be perfectly healthy, just newer than the code."""


def graph_fingerprint(graph) -> str:
    """Content fingerprint of a CSR graph (structure + probabilities).

    Any change to the vertex/edge sets or to an activation probability
    changes the fingerprint, which is what binds a frozen index to the
    exact influence instance its samples were drawn from.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray([graph.n, graph.m], dtype=np.int64).tobytes())
    for arr in (
        graph.out_indptr, graph.out_indices, graph.out_probs,
        graph.in_indptr, graph.in_indices, graph.in_probs,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _fold_range(seed: int, num_samples: int) -> int:
    seeds = stream_seeds_array(seed, np.arange(num_samples, dtype=np.int64))
    return int(np.bitwise_xor.reduce(seeds)) if num_samples else 0


class FrozenCollectionView(SortedRRRCollection):
    """Read-only :class:`SortedRRRCollection` facade over mapped buffers.

    The selection kernels dispatch on the collection type and consume
    only ``flattened()`` / ``len`` / ``total_entries``, all of which are
    served from the views handed in here — ``flat`` can stay an
    ``int32`` memmap (every consumer is dtype-agnostic).  Appends are
    refused: a frozen index only grows through
    :meth:`FrozenRRRIndex.extend`, which re-seals the manifest.
    """

    def __init__(
        self,
        n: int,
        flat: np.ndarray,
        indptr: np.ndarray,
        sample_of: np.ndarray,
    ) -> None:
        self.n = int(n)
        self._flat = flat
        self._sample_of = sample_of
        self._indptr = indptr
        self._num = len(indptr) - 1
        self._entries = len(flat)

    def append(self, vertices: np.ndarray) -> None:
        raise FrozenIndexError("frozen collection views are read-only")

    def append_batch(self, flat, sizes, *, total=None) -> None:
        raise FrozenIndexError("frozen collection views are read-only")


class FrozenRRRIndex:
    """One frozen, memory-mapped RRR collection plus its manifest.

    Construct through :meth:`freeze` (from an in-memory collection or by
    promoting a checkpoint run directory) or :meth:`open` (zero-copy
    load of an existing index).
    """

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self._flat: np.ndarray | None = None
        self._sizes: np.ndarray | None = None
        self._edges: np.ndarray | None = None
        self._indptr: np.ndarray | None = None
        self._sample_of: np.ndarray | None = None
        self._coded: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._perm: np.ndarray | None = None

    # -- identity / facts --------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.manifest["n"])

    @property
    def model(self) -> str:
        return str(self.manifest["model"])

    @property
    def seed(self) -> int:
        return int(self.manifest["seed"])

    @property
    def num_samples(self) -> int:
        return int(self.manifest["num_samples"])

    @property
    def entries(self) -> int:
        return int(self.manifest["entries"])

    @property
    def layout(self) -> str:
        """Storage layout — ``"flat"`` (pre-layout manifests default to
        it) or ``"compressed"``."""
        return str(self.manifest.get("layout", "flat"))

    # -- freezing ----------------------------------------------------------

    @classmethod
    def freeze(
        cls,
        source: SortedRRRCollection | str | Path,
        out_dir: str | Path,
        *,
        graph=None,
        n: int | None = None,
        model: str,
        seed: int,
        k: int,
        eps: float,
        l: float = 1.0,
        theta: int | None = None,
        lb: float | None = None,
        theta_cap: int | None = None,
        coverage_history: list | None = None,
        estimation_rounds: int | None = None,
        edges: np.ndarray | None = None,
        layout: str = "flat",
    ) -> "FrozenRRRIndex":
        """Write a frozen index from a collection or a checkpoint run dir.

        ``source`` is either a sampled collection
        (:class:`SortedRRRCollection` or
        :class:`~repro.sampling.compressed.CompressedRRRCollection`;
        ``edges`` must then carry the per-sample examined-edge meters)
        or a path to a :class:`~repro.sampling.checkpoint
        .BlockCheckpointSink` run directory, whose *certified* prefix is
        promoted — torn tail bytes beyond the cursor are ignored, and the
        reload goes through ``load_range``'s exact-length validation.

        ``layout="compressed"`` writes the frequency-ranked delta+varint
        section instead of ``flat.i32.bin``: the permutation is ranked
        over the full frozen sample set and pinned, so later extensions
        encode only their appended samples.

        The algorithm facts (``k``, ``eps``, ``theta``…) describe the run
        that produced the samples; the query engine replays the
        estimation control flow from them, so they must be the values the
        freezing run actually used.
        """
        if layout not in _KNOWN_LAYOUTS:
            raise UnknownLayoutError(
                f"cannot freeze layout {layout!r}; known: {_KNOWN_LAYOUTS}"
            )
        out_dir = Path(out_dir)
        if isinstance(source, (str, Path)):
            if n is None:
                # Identity comes from the checkpoint's own manifest.
                ck_manifest = json.loads(
                    (Path(source) / "MANIFEST.json").read_text()
                )
                n = int(ck_manifest["n"])
            sink = BlockCheckpointSink(
                source, n=n, model=model, seed=seed, readonly=True
            )
            try:
                flat32, sizes, per_edges = sink.load_range(0, sink.landed)
                n = sink.n
            finally:
                sink.close()
        else:
            coll = source
            n = coll.n
            if isinstance(coll, CompressedRRRCollection):
                # Normalize to the flat form first (id-sorted within each
                # sample, exactly the bytes a flat freeze would write);
                # the compressed writer below re-encodes from it.
                verts, sizes = coll.decode_samples(
                    np.arange(len(coll), dtype=np.int64)
                )
                local = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
                keys = local * max(n, 1) + verts
                keys.sort()
                flat32 = np.ascontiguousarray(keys % max(n, 1), dtype=np.int32)
            else:
                flat, indptr, _ = coll.flattened()
                sizes = np.diff(indptr).astype(np.int64)
                flat32 = np.ascontiguousarray(flat, dtype=np.int32)
            if edges is None:
                raise ValueError(
                    "freezing from a collection needs the per-sample "
                    "examined-edge meters (edges=)"
                )
            per_edges = np.ascontiguousarray(edges, dtype=np.int64)
        num_samples = len(sizes)
        if len(per_edges) != num_samples:
            raise ValueError(
                f"edge meters cover {len(per_edges)} samples, "
                f"collection holds {num_samples}"
            )
        if graph is not None and int(graph.n) != int(n):
            raise ValueError(
                f"graph has {graph.n} vertices, collection was sampled on {n}"
            )

        out_dir.mkdir(parents=True, exist_ok=True)
        coded_bytes = None
        if layout == "compressed":
            packer = CompressedRRRCollection(int(n))
            if num_samples:
                packer.append_batch(
                    flat32.astype(np.int64), sizes, total=len(flat32)
                )
            packer.freeze_permutation()
            coded, ends, vertex_of = packer.stream()
            coded_bytes = int(packer.coded_bytes)
            files = (
                (_CODED, coded),
                (_OFFSETS, ends),
                (_PERM, vertex_of),
                (_SIZES, sizes),
                (_EDGES, per_edges),
            )
        else:
            files = ((_FLAT, flat32), (_SIZES, sizes), (_EDGES, per_edges))
        for name, arr in files:
            tmp = out_dir / (name + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(np.ascontiguousarray(arr).tobytes())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, out_dir / name)
        manifest = {
            "format": "repro-frozen-rrr-index",
            "version": INDEX_FORMAT_VERSION,
            "n": int(n),
            "model": str(model),
            "seed": int(seed),
            "k": int(k),
            "eps": float(eps),
            "l": float(l),
            "theta": int(theta) if theta is not None else num_samples,
            "lb": float(lb) if lb is not None else None,
            "theta_cap": int(theta_cap) if theta_cap is not None else None,
            "estimation_rounds": estimation_rounds,
            "coverage_history": [
                [int(tx), float(fr)] for tx, fr in (coverage_history or [])
            ],
            "num_samples": int(num_samples),
            "entries": int(len(flat32)),
            "layout": layout,
            "encoding_version": (
                COMPRESSED_ENCODING_VERSION if layout == "compressed" else None
            ),
            "coded_bytes": coded_bytes,
            "stream_fold": _fold_range(seed, num_samples),
            "graph_fingerprint": (
                graph_fingerprint(graph) if graph is not None else None
            ),
            "created_unix": time.time(),
        }
        _write_manifest(out_dir, manifest)
        index = cls(out_dir, manifest)
        index._map()
        return index

    # -- opening -----------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, *, graph=None) -> "FrozenRRRIndex":
        """Zero-copy load: memory-map the buffers and verify the seal.

        ``graph`` (when given) is checked against the frozen
        ``graph_fingerprint`` — a mismatch raises :class:`StaleIndexError`
        rather than serving answers for a graph the samples were never
        drawn from.
        """
        path = Path(path)
        mpath = path / _MANIFEST
        try:
            manifest = json.loads(mpath.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FrozenIndexError(f"unreadable index manifest {mpath}: {exc}") from exc
        if manifest.get("format") != "repro-frozen-rrr-index":
            raise FrozenIndexError(f"{mpath} is not a frozen RRR index")
        if manifest.get("version") != INDEX_FORMAT_VERSION:
            raise FrozenIndexError(
                f"index format v{manifest.get('version')} != "
                f"supported v{INDEX_FORMAT_VERSION}"
            )
        layout = manifest.get("layout", "flat")
        if layout not in _KNOWN_LAYOUTS:
            raise UnknownLayoutError(
                f"index {path} uses layout {layout!r}; this reader knows "
                f"{_KNOWN_LAYOUTS} — refusing to misdecode a newer section"
            )
        if layout == "compressed":
            enc = manifest.get("encoding_version")
            if enc != COMPRESSED_ENCODING_VERSION:
                raise UnknownLayoutError(
                    f"compressed section encoding v{enc} != supported "
                    f"v{COMPRESSED_ENCODING_VERSION} — refusing to misdecode"
                )
        index = cls(path, manifest)
        index._verify_seal()
        index._map()
        if graph is not None:
            index.verify_graph(graph)
        return index

    def verify_graph(self, graph) -> None:
        """Raise :class:`StaleIndexError` unless ``graph`` matches the
        fingerprint the index was frozen against."""
        frozen_fp = self.manifest.get("graph_fingerprint")
        if frozen_fp is None:
            return  # frozen without a graph: nothing to bind to
        live_fp = graph_fingerprint(graph)
        if live_fp != frozen_fp:
            raise StaleIndexError(
                f"index {self.path} was frozen against graph "
                f"{frozen_fp[:12]}…, the live graph is {live_fp[:12]}… — "
                "refusing to serve a stale index after a graph change"
            )

    def _verify_seal(self) -> None:
        num, entries = self.num_samples, self.entries
        if self.layout == "compressed":
            sections = (
                (_CODED, int(self.manifest["coded_bytes"])),
                (_OFFSETS, num * 8),
                (_PERM, self.n * 8),
                (_SIZES, num * 8),
                (_EDGES, num * 8),
            )
        else:
            sections = (
                (_FLAT, entries * 4), (_SIZES, num * 8), (_EDGES, num * 8),
            )
        for name, want in sections:
            p = self.path / name
            have = p.stat().st_size if p.exists() else -1
            if have != want:
                raise FrozenIndexError(
                    f"{name} holds {have} bytes, manifest certifies {want} — "
                    "index is torn or was edited behind its manifest"
                )
        expected = _fold_range(self.seed, num)
        if int(self.manifest["stream_fold"]) != expected:
            raise FrozenIndexError(
                "stream fingerprint disagrees with the manifest's sample "
                "range — the index was frozen with a different seed or count"
            )

    def _map(self) -> None:
        num, entries = self.num_samples, self.entries
        if self.layout == "compressed":
            coded_bytes = int(self.manifest["coded_bytes"])
            if coded_bytes:
                self._coded = np.memmap(
                    self.path / _CODED, dtype=np.uint8, mode="r",
                    shape=(coded_bytes,),
                )
            else:
                self._coded = np.empty(0, dtype=np.uint8)
            if num:
                self._offsets = np.memmap(
                    self.path / _OFFSETS, dtype=np.int64, mode="r",
                    shape=(num,),
                )
            else:
                self._offsets = np.empty(0, dtype=np.int64)
            if self.n:
                self._perm = np.memmap(
                    self.path / _PERM, dtype=np.int64, mode="r",
                    shape=(self.n,),
                )
            else:
                self._perm = np.empty(0, dtype=np.int64)
            # The flat incidence array is decoded lazily on first read
            # (arrays()); resident until then: just the coded section.
            self._flat = None
        elif entries:
            self._flat = np.memmap(
                self.path / _FLAT, dtype=np.int32, mode="r", shape=(entries,)
            )
        else:
            self._flat = np.empty(0, dtype=np.int32)
        if num:
            self._sizes = np.memmap(
                self.path / _SIZES, dtype=np.int64, mode="r", shape=(num,)
            )
            self._edges = np.memmap(
                self.path / _EDGES, dtype=np.int64, mode="r", shape=(num,)
            )
        else:
            self._sizes = np.empty(0, dtype=np.int64)
            self._edges = np.empty(0, dtype=np.int64)
        indptr = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=indptr[1:])
        if int(indptr[-1]) != entries:
            raise FrozenIndexError(
                f"sizes sum to {int(indptr[-1])} entries, manifest "
                f"certifies {entries}"
            )
        self._indptr = indptr
        self._sample_of = np.repeat(
            np.arange(num, dtype=np.int64), np.asarray(self._sizes)
        )

    # -- reads -------------------------------------------------------------

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(flat, indptr, sample_of)`` — flat is the raw memmap for a
        flat index; a compressed index decodes its coded section into an
        identical int32 array once, lazily, and caches it (the query
        engine on top is therefore layout-blind and bit-identical)."""
        if self._indptr is None:
            raise FrozenIndexError("index is closed")
        if self._flat is None:
            self._flat = self._decode_flat()
        return self._flat, self._indptr, self._sample_of

    def _decode_flat(self) -> np.ndarray:
        """Decode the compressed section to the exact bytes the flat
        layout would have written: int32, id-sorted within each sample."""
        num, entries = self.num_samples, self.entries
        if num == 0:
            return np.empty(0, dtype=np.int32)
        coll = CompressedRRRCollection.from_stream(
            self.n,
            self._coded,
            self._offsets,
            np.asarray(self._perm),
            entries=entries,
        )
        ranks, counts = coll.parse_stream()
        if not np.array_equal(counts, np.asarray(self._sizes)):
            raise FrozenIndexError(
                "compressed section decodes to per-sample counts that "
                "disagree with sizes.i64.bin — index is torn or corrupt"
            )
        verts = np.asarray(self._perm)[ranks]
        keys = self._sample_of * max(self.n, 1) + verts
        keys.sort()
        return np.ascontiguousarray(keys % max(self.n, 1), dtype=np.int32)

    def per_sample_edges(self) -> np.ndarray:
        if self._edges is None:
            raise FrozenIndexError("index is closed")
        return self._edges

    def collection_view(self, num_samples: int | None = None) -> FrozenCollectionView:
        """A read-only collection over the first ``num_samples`` samples
        (default: all).  Prefix views are zero-copy slices, which is what
        lets the query engine replay the θ-estimation rounds exactly."""
        flat, indptr, sample_of = self.arrays()
        if num_samples is None or num_samples >= self.num_samples:
            return FrozenCollectionView(self.n, flat, indptr, sample_of)
        m = int(num_samples)
        e = int(indptr[m])
        return FrozenCollectionView(
            self.n, flat[:e], indptr[: m + 1], sample_of[:e]
        )

    # -- extension ---------------------------------------------------------

    def extend(
        self,
        flat: np.ndarray,
        sizes: np.ndarray,
        edges: np.ndarray,
        *,
        start: int,
    ) -> None:
        """Append samples ``[start, start + len(sizes))`` in place.

        ``start`` must equal the current sample count — extension only
        ever appends past the sealed prefix, never rewrites it (the
        deterministic streams guarantee the old samples stay valid for
        any tighter ``eps``).  Data lands and is fsync'd before the
        manifest moves, write-ahead style, so a crash mid-extend leaves
        a prefix the old manifest still certifies exactly.
        """
        if self._indptr is None:
            raise FrozenIndexError("index is closed")
        if int(start) != self.num_samples:
            raise FrozenIndexError(
                f"extension must start at the sealed sample count "
                f"{self.num_samples}, got {start}"
            )
        sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        if len(sizes) == 0:
            return
        flat32 = np.ascontiguousarray(flat, dtype=np.int32)
        edges64 = np.ascontiguousarray(edges, dtype=np.int64)
        if int(sizes.sum()) != len(flat32) or len(edges64) != len(sizes):
            raise FrozenIndexError(
                "extension payload is inconsistent (sizes vs flat/edges)"
            )
        if self.layout == "compressed":
            # Re-encode only the appended samples under the pinned
            # permutation; the sealed coded bytes are never rewritten.
            packer = CompressedRRRCollection(self.n)
            packer.adopt_permutation(np.asarray(self._perm))
            packer.append_batch(
                flat32.astype(np.int64), sizes, total=len(flat32)
            )
            coded, ends, _ = packer.stream()
            base = int(self.manifest["coded_bytes"])
            files = (
                (_CODED, np.ascontiguousarray(coded)),
                (_OFFSETS, ends + base),
                (_SIZES, sizes),
                (_EDGES, edges64),
            )
            self.manifest["coded_bytes"] = base + int(packer.coded_bytes)
        else:
            files = ((_FLAT, flat32), (_SIZES, sizes), (_EDGES, edges64))
        for name, arr in files:
            with open(self.path / name, "ab") as fh:
                fh.write(arr.tobytes())
                fh.flush()
                os.fsync(fh.fileno())
        num = self.num_samples + len(sizes)
        self.manifest["num_samples"] = num
        self.manifest["entries"] = self.entries + len(flat32)
        self.manifest["stream_fold"] = _fold_range(self.seed, num)
        _write_manifest(self.path, self.manifest)
        self._map()

    def amend(self, **facts) -> None:
        """Atomically update algorithm facts (``eps``, ``theta``, ``lb``,
        ``k``, ``coverage_history``…) after a tighten re-derivation."""
        unknown = set(facts) - {
            "k", "eps", "l", "theta", "lb", "theta_cap",
            "coverage_history", "estimation_rounds",
        }
        if unknown:
            raise ValueError(f"not amendable manifest facts: {sorted(unknown)}")
        if "coverage_history" in facts:
            facts["coverage_history"] = [
                [int(tx), float(fr)] for tx, fr in facts["coverage_history"]
            ]
        self.manifest.update(facts)
        _write_manifest(self.path, self.manifest)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop the memmaps (idempotent); the on-disk index survives."""
        for name in (
            "_flat", "_sizes", "_edges", "_indptr", "_sample_of",
            "_coded", "_offsets", "_perm",
        ):
            setattr(self, name, None)

    def __enter__(self) -> "FrozenRRRIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _write_manifest(path: Path, manifest: dict) -> None:
    tmp = path / (_MANIFEST + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(manifest, indent=2))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path / _MANIFEST)
    _fsync_dir(path)
