"""Traffic-hardened async front end over the frozen-index serving layer.

:class:`ServingFrontend` is the piece that stands between many
concurrent callers and one :class:`~repro.serving.cache.IndexCache`.
The query engine underneath is bit-identical but *trusting*: a slow
``tighten`` re-enters the sampling path, a graph republish invalidates
the open memmaps, and nothing bounds how many callers pile onto one
index.  The front end adds the traffic contracts:

**Admission control.**  At most ``max_pending`` queries are in flight
(queued + executing); the next one is shed with a typed
:class:`~repro.serving.errors.AdmissionRejected` carrying a
``retry_after`` estimate — never an unbounded pileup.  A query whose
deadline expires while still queued is shed with
:class:`~repro.serving.errors.QueryDeadlineExceeded` rather than run for
nobody.

**Coalescing + single-writer discipline.**  Identical in-prefix queries
(same index identity, same arguments) batch onto one execution — one
CELF pass, every waiter gets the same answer.  In-prefix reads run
concurrently against the shared mapped arrays: index *extension*
(tighten, out-of-prefix θ) appends strictly past the sealed prefix and
never rewrites it, so a reader's prefix views stay valid while a writer
grows the tail — but only **one** writer may append at a time, enforced
by a per-index asyncio lock (the bulkhead).  A circuit breaker counts
consecutive extension failures/timeouts; once open, extension-needing
queries degrade immediately instead of queueing behind a sick sampler.

**Deadline-bounded graceful degradation.**  When a query needs samples
beyond the frozen prefix but the extension cannot run (no deadline
budget, breaker open, no graph attached, or the attempt itself crashed),
the front end answers from the prefix it has and says so: a typed
:class:`DegradedServingResult` whose ``theta_effective`` is the frozen
sample count and whose ``epsilon_effective`` is recomputed by the same
shrink arithmetic the distributed runtime uses (λ* scales as 1/ε², so
the ε certified by the surviving ``θ_eff · LB`` budget inverts in closed
form).  Every response is therefore either bit-identical to a fresh
``imm()`` or explicitly degraded — never silently wrong.

**Fault injection.**  The ``FaultPlan`` grammar drives serving faults
(``slowquery:QxS``, ``stale:@Q``, ``extendfail:@NxK``): stragglers,
mid-flight graph republish (``StaleIndexError`` → hot re-open and
re-dispatch, at most once per query), and extension crashes.  The
``validate`` frontend oracle axis replays these against every registry
graph and asserts the response contract above.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..imm.theta import _inflated_l, lambda_star
from ..mpi.faults import FaultPlan
from .cache import IndexCache
from .errors import AdmissionRejected, QueryDeadlineExceeded
from .frozen import FrozenIndexError, StaleIndexError
from .query import MarginalGains, ServingResult

__all__ = [
    "ServingFrontend",
    "DegradedServingResult",
    "CircuitBreaker",
    "FrontendStats",
    "shrink_epsilon",
    "ewma_update",
]

# EWMA smoothing for latency / extension-cost estimates.
_EWMA = 0.8


def ewma_update(
    prev: float | None, sample: float, alpha: float = _EWMA
) -> float:
    """One exponentially-weighted moving-average step.

    ``None`` seeds the estimate with the first sample.  Shared by the
    front end's latency/extension-cost estimators and the cluster
    router's per-replica latency tracking, so every smoothed estimate in
    the serving stack decays identically.
    """
    return sample if prev is None else alpha * prev + (1.0 - alpha) * sample


def shrink_epsilon(n: int, k: int, l: float, theta_effective: int, lb: float) -> float:
    """The ε certified by a ``theta_effective · lb`` sample budget.

    Exactly the arithmetic of the MPI shrink policy and the supervised
    deadline path (``repro.imm.imm._degraded_result``): λ*(n, k, ε, l)
    scales as 1/ε² at fixed ``(n, k, l)``, so the ε a surviving budget
    certifies inverts in closed form.
    """
    return math.sqrt(
        lambda_star(n, k, 1.0, _inflated_l(n, l))
        / max(theta_effective * lb, 1.0)
    )


@dataclass
class DegradedServingResult(ServingResult):
    """A typed, honest partial answer from the frozen prefix.

    ``theta_effective`` is the sample count actually selected over;
    ``epsilon_effective`` the guarantee that budget certifies via
    :func:`shrink_epsilon`; ``theta`` keeps the θ the query *wanted*
    (when known), so ``theta - theta_effective`` is the shortfall.
    """

    theta_effective: int = 0
    epsilon_effective: float = float("inf")
    degraded_reason: str = ""

    @property
    def degraded(self) -> bool:
        return True


@dataclass
class FrontendStats:
    """Traffic counters, one instance per front end."""

    admitted: int = 0
    rejected: int = 0
    deadline_shed: int = 0
    coalesced: int = 0
    completed: int = 0
    degraded: int = 0
    republishes: int = 0
    extension_attempts: int = 0
    extension_failures: int = 0
    breaker_trips: int = 0
    peak_inflight: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class CircuitBreaker:
    """Consecutive-failure breaker guarding the extension bulkhead.

    ``closed`` → extensions run; ``threshold`` consecutive failures →
    ``open`` (extensions degrade immediately); after ``cooldown``
    seconds one probe is allowed (``half-open``) — its success closes
    the breaker, its failure re-opens it for another cooldown.
    """

    def __init__(
        self, threshold: int = 3, cooldown: float = 30.0, clock=time.monotonic
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self.trips = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        if self.state == "open":
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = "half-open"
                return True
            return False
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"

    def remaining_cooldown(self) -> float:
        """Seconds until an open breaker admits its half-open probe
        (0.0 when not open) — the router's retry-after estimate."""
        if self.state != "open":
            return 0.0
        return max(self.cooldown - (self._clock() - self._opened_at), 0.0)

    def record_failure(self) -> bool:
        """Count one failure; ``True`` when this one trips the breaker."""
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            already_open = self.state == "open"
            self.state = "open"
            self._opened_at = self._clock()
            if not already_open:
                self.trips += 1
                return True
        return False


class ServingFrontend:
    """Asyncio front end owning an :class:`IndexCache`.

    Queries are submitted with an index ``path``; engines are leased
    from the cache (refcounted, so eviction can never unmap an index
    mid-query) and CPU-bound work runs in worker threads, at most
    ``concurrency`` at a time.  ``max_pending`` bounds total in-flight
    queries (executing + queued); ``default_deadline`` applies to
    queries submitted without one (``None`` = no deadline).

    The ``_mutate_*`` flags are test hooks for the mutation suite: they
    re-introduce, deliberately, the dishonest-degradation and
    breaker-bypass bugs the frontend oracle axis must detect.
    """

    def __init__(
        self,
        cache: IndexCache | None = None,
        *,
        capacity: int = 4,
        max_pending: int = 64,
        concurrency: int = 4,
        default_deadline: float | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        fault_plan: FaultPlan | str | None = None,
        _mutate_dishonest_degrade: bool = False,
        _mutate_breaker_bypass: bool = False,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.cache = cache if cache is not None else IndexCache(capacity=capacity)
        self.max_pending = max_pending
        self.concurrency = concurrency
        self.default_deadline = default_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self.injector = (fault_plan or FaultPlan()).injector()
        self.stats = FrontendStats()
        self._sem = asyncio.Semaphore(concurrency)
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._qseq = 0
        self._closed = False
        self._coalesced: dict[tuple, asyncio.Future] = {}
        # Reapers adopt extension threads that outlived their caller's
        # deadline: each holds the writer lock (and a cache pin) until
        # the thread actually exits.  close() joins them.
        self._reapers: set[asyncio.Task] = set()
        self._writer_locks: dict[Path, asyncio.Lock] = {}
        self._breakers: dict[Path, CircuitBreaker] = {}
        self._lat_ewma: float | None = None
        self._ext_ewma: float | None = None
        self._mutate_dishonest_degrade = _mutate_dishonest_degrade
        self._mutate_breaker_bypass = _mutate_breaker_bypass

    # -- public queries ----------------------------------------------------

    async def top_k(
        self,
        path: str | Path,
        k: int | None = None,
        eps: float | None = None,
        *,
        graph=None,
        deadline: float | None = None,
    ) -> ServingResult:
        """``k`` best seeds — bit-identical to fresh ``imm`` when the
        answer fits the index (or the extension runs), typed-degraded
        otherwise."""
        path = Path(path).resolve()
        return await self._submit(
            path, graph, deadline,
            ckey=("top_k", path, k, eps),
            call=lambda eng: eng.top_k(k, eps, allow_extend=False),
            extend=lambda eng: eng.top_k(k, eps, allow_extend=True),
            k=k, eps=eps,
        )

    async def what_if(
        self,
        path: str | Path,
        k: int | None = None,
        *,
        forced=(),
        excluded=(),
        graph=None,
        deadline: float | None = None,
    ) -> ServingResult:
        """Constrained selection — a pure index read, never extends."""
        path = Path(path).resolve()
        f = tuple(int(v) for v in forced)
        x = tuple(int(v) for v in excluded)
        return await self._submit(
            path, graph, deadline,
            ckey=("what_if", path, k, f, x),
            call=lambda eng: eng.what_if(k, forced=f, excluded=x),
            extend=None,
        )

    async def marginal_gain(
        self,
        path: str | Path,
        seed_set,
        candidates=None,
        *,
        graph=None,
        deadline: float | None = None,
    ) -> MarginalGains:
        """Spread + per-vertex marginals — a pure index read."""
        path = Path(path).resolve()
        s = tuple(int(v) for v in seed_set)
        c = None if candidates is None else tuple(int(v) for v in candidates)
        return await self._submit(
            path, graph, deadline,
            ckey=("marginal", path, s, c),
            call=lambda eng: eng.marginal_gain(
                s, None if c is None else np.asarray(c, dtype=np.int64)
            ),
            extend=None,
        )

    async def tighten(
        self,
        path: str | Path,
        eps: float,
        k: int | None = None,
        *,
        graph=None,
        deadline: float | None = None,
    ) -> ServingResult:
        """Re-derive at a tighter ε and amend the manifest.

        A write by definition: runs behind the bulkhead (never
        coalesced).  When the extension cannot run, the answer degrades
        from the prefix and the manifest is *not* amended.
        """
        path = Path(path).resolve()
        return await self._submit(
            path, graph, deadline,
            ckey=None,
            call=None,
            extend=lambda eng: eng.tighten(eps, k=k),
            k=k, eps=eps,
        )

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Quiesce: refuse new queries, drain in-flight ones, join any
        leaked extension threads, close every cached index.  Afterwards
        no engines, memmaps, or tasks leak."""
        self._closed = True
        await self._idle.wait()
        while self._reapers:
            # A leaked extension thread is still appending — closing its
            # memmaps under it would tear the index.  Wait it out.
            await asyncio.gather(*list(self._reapers), return_exceptions=True)
        self.cache.close()

    async def __aenter__(self) -> "ServingFrontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- admission ---------------------------------------------------------

    def _admit(self) -> int:
        if self._closed:
            self.stats.rejected += 1
            raise AdmissionRejected(
                "shutdown", 0.0, self._inflight, self.max_pending
            )
        if self._inflight >= self.max_pending:
            self.stats.rejected += 1
            raise AdmissionRejected(
                "queue-full", self._retry_after(), self._inflight,
                self.max_pending,
            )
        self._inflight += 1
        self._idle.clear()
        self.stats.admitted += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight, self._inflight)
        qid = self._qseq
        self._qseq += 1
        return qid

    def _retry_after(self) -> float:
        """Backlog depth × observed per-query latency, per worker."""
        per_query = self._lat_ewma if self._lat_ewma is not None else 0.05
        backlog = max(self._inflight - self.concurrency + 1, 1)
        return max(per_query * backlog / max(self.concurrency, 1), 1e-3)

    def _release(self, started: float) -> None:
        self._lat_ewma = ewma_update(
            self._lat_ewma, time.perf_counter() - started
        )
        self._inflight -= 1
        if self._inflight <= 0:
            self._idle.set()

    # -- submission / coalescing -------------------------------------------

    async def _submit(
        self, path, graph, deadline, *, ckey, call, extend, k=None, eps=None
    ):
        qid = self._admit()
        started = time.perf_counter()
        try:
            loop = asyncio.get_running_loop()
            dl = self.default_deadline if deadline is None else deadline
            expires = None if dl is None else loop.time() + dl
            if ckey is not None:
                # Same arguments is not enough to share an answer: the
                # key carries the on-disk index *identity*, so a query
                # admitted after a republish never rides an execution
                # started against the old index (it would get a stale
                # answer with no StaleIndexError re-dispatch).
                ckey = (*ckey, self.cache.identity(path))
                shared = self._coalesced.get(ckey)
                if shared is not None:
                    # An identical query is already running: ride it —
                    # under *this* caller's deadline, not the owner's.
                    self.stats.coalesced += 1
                    try:
                        if expires is None:
                            result = await asyncio.shield(shared)
                        else:
                            result = await asyncio.wait_for(
                                asyncio.shield(shared),
                                timeout=expires - loop.time(),
                            )
                        self.stats.completed += 1
                        return result
                    except asyncio.TimeoutError:
                        self.stats.deadline_shed += 1
                        raise QueryDeadlineExceeded(
                            waited=dl + max(loop.time() - expires, 0.0),
                            deadline=dl,
                        ) from None
                    except (QueryDeadlineExceeded, StaleIndexError):
                        # The owner's budget or republish retry, not a
                        # property of the query itself: traffic outcomes
                        # don't transfer between callers with different
                        # budgets — run the query ourselves.
                        pass
                    except asyncio.CancelledError:
                        if not shared.done():
                            raise  # our own cancellation, owner lives on
                        pass  # owner was cancelled: owner-specific too
                    result = await self._execute(
                        qid, path, graph, expires, dl, call, extend, k, eps
                    )
                    self.stats.completed += 1
                    return result
                fut: asyncio.Future = loop.create_future()
                self._coalesced[ckey] = fut
                try:
                    result = await self._execute(
                        qid, path, graph, expires, dl, call, extend, k, eps
                    )
                except BaseException as exc:
                    if not fut.done():
                        fut.set_exception(exc)
                        fut.exception()  # mark retrieved: waiters re-raise
                    raise
                else:
                    if not fut.done():
                        fut.set_result(result)
                    self.stats.completed += 1
                    return result
                finally:
                    if self._coalesced.get(ckey) is fut:
                        del self._coalesced[ckey]
            result = await self._execute(
                qid, path, graph, expires, dl, call, extend, k, eps
            )
            self.stats.completed += 1
            return result
        finally:
            self._release(started)

    # -- execution ---------------------------------------------------------

    async def _execute(self, qid, path, graph, expires, dl, call, extend, k, eps):
        async with self._sem:
            loop = asyncio.get_running_loop()
            if expires is not None and loop.time() > expires:
                self.stats.deadline_shed += 1
                raise QueryDeadlineExceeded(
                    waited=dl + (loop.time() - expires), deadline=dl
                )
            delay = self.injector.query_delay(qid)
            if delay:
                await asyncio.sleep(delay)
            redispatched = False
            while True:
                try:
                    with self.cache.lease(path, graph=graph) as eng:
                        if self.injector.stale_due(qid):
                            raise StaleIndexError(
                                f"graph republished under query {qid}"
                            )
                        if call is None:
                            # Pure write (tighten): straight to the bulkhead.
                            return await self._extended(
                                path, eng, expires, extend, k, eps, None
                            )
                        try:
                            return await asyncio.to_thread(call, eng)
                        except StaleIndexError:
                            raise
                        except FrozenIndexError as exc:
                            needed = getattr(exc, "needed", None)
                            if needed is None or extend is None:
                                raise
                            # Out-of-prefix: the replay wants `needed`
                            # samples the index does not hold.
                            return await self._extended(
                                path, eng, expires, extend, k, eps, needed
                            )
                except StaleIndexError:
                    if redispatched:
                        raise
                    # Mid-flight republish: hot re-open, re-dispatch once.
                    redispatched = True
                    self.stats.republishes += 1
                    self.cache.invalidate(path)

    # -- the extension bulkhead --------------------------------------------

    def _writer_lock(self, path: Path) -> asyncio.Lock:
        lock = self._writer_locks.get(path)
        if lock is None:
            lock = self._writer_locks[path] = asyncio.Lock()
        return lock

    def breaker(self, path: str | Path) -> CircuitBreaker:
        path = Path(path).resolve()
        brk = self._breakers.get(path)
        if brk is None:
            brk = self._breakers[path] = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown
            )
        return brk

    def _breaker_allows(self, brk: CircuitBreaker) -> bool:
        # Mutation hook: the bulkhead-bypass bug ignores the breaker.
        return brk.allow() or self._mutate_breaker_bypass

    async def _extended(self, path, eng, expires, extend, k, eps, needed):
        """Run the single-writer extension path, or degrade honestly."""
        loop = asyncio.get_running_loop()
        brk = self.breaker(path)
        if eng.graph is None:
            return await self._degrade(eng, k, eps, "no-graph", needed)
        if not self._breaker_allows(brk):
            return await self._degrade(eng, k, eps, "breaker-open", needed)
        if expires is not None:
            remaining = expires - loop.time()
            if remaining <= 0.0 or (
                self._ext_ewma is not None and remaining < self._ext_ewma
            ):
                return await self._degrade(eng, k, eps, "deadline", needed)
        lock = self._writer_lock(path)
        await lock.acquire()
        handed_off = False
        try:
            # Waiting may have consumed the budget or tripped the
            # breaker — re-check both before touching the sampler.
            if not self._breaker_allows(brk):
                return await self._degrade(eng, k, eps, "breaker-open", needed)
            remaining = None if expires is None else expires - loop.time()
            if remaining is not None and remaining <= 0.0:
                return await self._degrade(eng, k, eps, "deadline", needed)
            self.stats.extension_attempts += 1
            if self.injector.extend_failure():
                self.stats.extension_failures += 1
                if brk.record_failure():
                    self.stats.breaker_trips += 1
                return await self._degrade(
                    eng, k, eps, "extension-failed", needed
                )
            t0 = time.perf_counter()
            task = asyncio.ensure_future(asyncio.to_thread(extend, eng))
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(task), timeout=remaining
                )
            except asyncio.TimeoutError:
                # The worker thread cannot be cancelled: it is still
                # appending.  Ownership of the writer lock (and a cache
                # pin on the engine) moves to a reaper that holds both
                # until the thread actually exits — a second extension
                # can never interleave with the leaked one, and eviction
                # cannot unmap the index under it.
                self.stats.extension_failures += 1
                if brk.record_failure():
                    self.stats.breaker_trips += 1
                handed_off = True
                self._adopt_leaked_writer(task, lock, brk, eng, t0)
                return await self._degrade(
                    eng, k, eps, "extension-timeout", needed
                )
            except asyncio.CancelledError:
                # Caller cancelled mid-extend: same leak, same handoff.
                handed_off = True
                self._adopt_leaked_writer(task, lock, brk, eng, t0)
                raise
            self._ext_ewma = ewma_update(
                self._ext_ewma, time.perf_counter() - t0
            )
            brk.record_success()
            return result
        finally:
            if not handed_off:
                lock.release()

    def _adopt_leaked_writer(self, task, lock, brk, eng, t0) -> None:
        """Own a still-running extension thread until it exits.

        The adopting reaper keeps the single-writer bulkhead closed and
        the engine's cache entry pinned, so the leaked append can never
        interleave with a later extension or lose its memmaps to
        eviction.  A late *success* is real — the index grew durably and
        the sampler proved healthy — so it closes the breaker and feeds
        the cost EWMA; a late crash adds nothing the timeout's failure
        record didn't already say.
        """
        unpin = self.cache.pin(eng)

        async def reap() -> None:
            try:
                await task
            except BaseException:
                pass
            else:
                brk.record_success()
                self._ext_ewma = ewma_update(
                    self._ext_ewma, time.perf_counter() - t0
                )
            finally:
                unpin()
                lock.release()

        reaper = asyncio.ensure_future(reap())
        self._reapers.add(reaper)
        reaper.add_done_callback(self._reapers.discard)

    # -- degradation -------------------------------------------------------

    async def _degrade(
        self, eng, k, eps, reason: str, needed: int | None
    ) -> DegradedServingResult:
        """Answer from the frozen prefix with honest accounting."""

        def run() -> DegradedServingResult:
            t0 = time.perf_counter()
            mf = eng.index.manifest
            kk = int(mf["k"]) if k is None else int(k)
            ee = float(mf["eps"]) if eps is None else float(eps)
            n = eng.index.n
            m = eng.index.num_samples
            lb = float(mf["lb"]) if mf.get("lb") is not None else 1.0
            l = float(mf["l"])
            seeds, covered = eng._celf_select(m, kk)
            if self._mutate_dishonest_degrade:
                # Mutation hook: report the requested ε as achieved.
                eps_eff = ee
            else:
                eps_eff = shrink_epsilon(n, kk, l, m, lb)
            return DegradedServingResult(
                seeds=seeds,
                k=kk,
                epsilon=ee,
                model=eng.index.model,
                theta=int(needed) if needed else m,
                num_samples_used=m,
                coverage=covered / max(m, 1),
                lb=lb,
                estimation_rounds=0,
                coverage_history=[],
                samples_added=0,
                samples_reused=m,
                edges_examined=0,
                seconds=time.perf_counter() - t0,
                theta_effective=m,
                epsilon_effective=eps_eff,
                degraded_reason=reason,
            )

        result = await asyncio.to_thread(run)
        self.stats.degraded += 1
        return result
