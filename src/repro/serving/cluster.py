"""Replicated serving cluster: health-checked routing over N front ends.

One :class:`~repro.serving.frontend.ServingFrontend` is a single point
of failure: its process pauses, its host partitions, its queue fills —
and every caller stalls with it.  :class:`ClusterRouter` fronts ``N``
replicas (in-process asyncio replicas, each owning its own
:class:`~repro.serving.cache.IndexCache` and memmaps over the shared
frozen index) and adds the cluster contracts:

**Consistent-hash routing.**  Each query is routed by rendezvous
(highest-random-weight) hashing of the index *identity* — the same
``(graph_fingerprint, model, eps, theta_cap)`` key the cache uses — over
the replica set, with a deterministic ``blake2b`` score (never Python's
salted ``hash``).  The same identity always lands on the same primary
replica across routers and processes, and the rest of the rendezvous
order *is* the failover order.

**Health-checked failover.**  Every replica carries a consecutive-
failure score and its own :class:`CircuitBreaker`; unreachable dispatch
attempts (injected crashes, partitions) feed it, and an open breaker
takes the replica out of the rotation until its cooldown admits a
half-open probe.  A failed dispatch falls over to the next replica in
rendezvous order, with capped exponential backoff between attempts.

**Tail-latency hedging.**  Read queries that outlive the hedge delay —
an EWMA-smoothed p99 of observed cluster latency, or an explicit
``hedge_after`` — get a duplicate dispatch on the next healthy replica.
First answer wins; the loser is cancelled and counted.  Extension and
write traffic (``tighten``, and any query submitted with a graph, i.e.
able to extend the index) is **never** hedged and always routes to the
identity's single *writer* replica — the rendezvous primary — so the
PR 8 single-writer bulkhead stays single cluster-wide.

**Honest unavailability.**  When every replica is down, a selection
query is answered from the router's own stale local prefix as a typed
:class:`~repro.serving.frontend.DegradedServingResult` with
``theta_effective`` / ``epsilon_effective`` from the same shrink
arithmetic as everywhere else, and anything that cannot be served that
way is refused with a typed
:class:`~repro.serving.errors.ClusterUnavailable` carrying a
``retry_after`` — never a hang, never silently wrong data.

Cluster faults (``replicacrash:R@Q``, ``replicaslow:RxS``,
``partition:R@Q[xD]``) are driven by the same declarative
:class:`~repro.mpi.faults.FaultPlan` grammar as the SPMD runtime and the
single front end, addressed by the router's admission sequence number.
The ``validate`` cluster oracle axis replays them on every run.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..mpi.faults import FaultPlan
from .cache import IndexCache
from .errors import AdmissionRejected, ClusterUnavailable, ServingFrontendError
from .frontend import (
    CircuitBreaker,
    DegradedServingResult,
    ServingFrontend,
    ewma_update,
    shrink_epsilon,
)
from .frozen import _MANIFEST
from .query import MarginalGains, ServingResult

__all__ = [
    "ClusterRouter",
    "ClusterStats",
    "ReplicaUnreachableError",
]


class ReplicaUnreachableError(ServingFrontendError):
    """A dispatch found its replica crashed or partitioned (internal to
    the router's failover loop; callers see it only from :meth:`probe`
    summaries, never from query methods)."""

    def __init__(self, replica: int, qid: int) -> None:
        super().__init__(f"replica {replica} unreachable for query {qid}")
        self.replica = replica
        self.qid = qid


@dataclass
class ClusterStats:
    """Router-level traffic counters (replica front ends keep their own
    :class:`~repro.serving.frontend.FrontendStats`)."""

    routed: int = 0
    failovers: int = 0
    write_retries: int = 0
    writer_fallbacks: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    replica_failures: int = 0
    probes: int = 0
    unavailable: int = 0
    degraded_local: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class _Replica:
    """One replica plus its health accounting."""

    idx: int
    frontend: ServingFrontend
    breaker: CircuitBreaker
    dispatched: int = 0
    consecutive_failures: int = 0
    lat_ewma: float | None = field(default=None)


class ClusterRouter:
    """Health-checked, hedging router over ``num_replicas`` front ends.

    The public query surface mirrors :class:`ServingFrontend` exactly
    (``top_k`` / ``what_if`` / ``marginal_gain`` / ``tighten``), so a
    caller — or the ``repro-imm serve`` driver — swaps one for the other
    without changing call sites.

    ``_mutate_*`` flags are deliberate-bug hooks for the mutation suite:
    ``_mutate_stale_as_fresh`` makes the all-replicas-down fallback claim
    full fidelity instead of degrading, ``_mutate_hedge_writes`` makes
    write traffic double-dispatch (two writers).  Both must be killed by
    the cluster oracle axis.
    """

    def __init__(
        self,
        num_replicas: int = 2,
        *,
        capacity: int = 4,
        max_pending: int = 64,
        concurrency: int = 2,
        default_deadline: float | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        replica_breaker_threshold: int = 3,
        replica_breaker_cooldown: float = 5.0,
        failover_retries: int = 2,
        backoff_base: float = 0.005,
        backoff_cap: float = 0.25,
        hedge: bool = True,
        hedge_after: float | None = None,
        degrade_on_unavailable: bool = True,
        fault_plan: FaultPlan | str | None = None,
        _mutate_stale_as_fresh: bool = False,
        _mutate_hedge_writes: bool = False,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if failover_retries < 0:
            raise ValueError(
                f"failover_retries must be >= 0, got {failover_retries}"
            )
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self.injector = (fault_plan or FaultPlan()).injector()
        self.failover_retries = failover_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.hedge = hedge
        self.hedge_after = hedge_after
        self.degrade_on_unavailable = degrade_on_unavailable
        self.stats = ClusterStats()
        self._replicas = [
            _Replica(
                idx=i,
                # No fault plan on the replicas: cluster faults live in
                # the router's injector, addressed by *its* sequence.
                frontend=ServingFrontend(
                    capacity=capacity,
                    max_pending=max_pending,
                    concurrency=concurrency,
                    default_deadline=default_deadline,
                    breaker_threshold=breaker_threshold,
                    breaker_cooldown=breaker_cooldown,
                ),
                breaker=CircuitBreaker(
                    replica_breaker_threshold, replica_breaker_cooldown
                ),
            )
            for i in range(num_replicas)
        ]
        # The router's own small cache: identity reads for routing, and
        # the stale-local-prefix fallback when every replica is down.
        self._local = IndexCache(capacity=max(2, capacity))
        # Routing-order memo, invalidated by the manifest's stat
        # signature (republish replaces it by atomic rename).
        self._order_cache: dict[Path, tuple[tuple, list[_Replica]]] = {}
        self._lats: deque[float] = deque(maxlen=64)
        self._p99_ewma: float | None = None
        self._qseq = 0
        self._closed = False
        self._mutate_stale_as_fresh = _mutate_stale_as_fresh
        self._mutate_hedge_writes = _mutate_hedge_writes

    # -- public queries (mirror ServingFrontend) ---------------------------

    async def top_k(
        self,
        path: str | Path,
        k: int | None = None,
        eps: float | None = None,
        *,
        graph=None,
        deadline: float | None = None,
    ) -> ServingResult:
        path = Path(path).resolve()
        if graph is not None:
            # Extension-capable: single-writer traffic, never hedged.
            return await self._write(
                "top_k", path, (k, eps), {"deadline": deadline},
                graph=graph, k=k, eps=eps,
            )
        return await self._read(
            "top_k", path, (k, eps), {"deadline": deadline}, k=k, eps=eps
        )

    async def what_if(
        self,
        path: str | Path,
        k: int | None = None,
        *,
        forced=(),
        excluded=(),
        graph=None,
        deadline: float | None = None,
    ) -> ServingResult:
        path = Path(path).resolve()
        return await self._read(
            "what_if", path, (k,),
            {"forced": forced, "excluded": excluded, "graph": graph,
             "deadline": deadline},
            k=k,
        )

    async def marginal_gain(
        self,
        path: str | Path,
        seed_set,
        candidates=None,
        *,
        graph=None,
        deadline: float | None = None,
    ) -> MarginalGains:
        path = Path(path).resolve()
        return await self._read(
            "marginal_gain", path, (seed_set, candidates),
            {"graph": graph, "deadline": deadline},
        )

    async def tighten(
        self,
        path: str | Path,
        eps: float,
        k: int | None = None,
        *,
        graph=None,
        deadline: float | None = None,
    ) -> ServingResult:
        path = Path(path).resolve()
        return await self._write(
            "tighten", path, (eps,), {"k": k, "deadline": deadline},
            graph=graph, k=k, eps=eps,
        )

    # -- health ------------------------------------------------------------

    async def probe(self, path: str | Path) -> dict[int, str]:
        """One cheap probe query per replica; returns ``idx -> "ok"`` or
        the failure type name.  Successes close the replica breaker, so
        probing accelerates recovery of healed replicas."""
        path = Path(path).resolve()
        out: dict[int, str] = {}
        for rep in self._replicas:
            qid = self._admit()
            self.stats.probes += 1
            try:
                await self._dispatch(rep, qid, "what_if", path, 1)
                out[rep.idx] = "ok"
            except ServingFrontendError as exc:
                out[rep.idx] = type(exc).__name__
        return out

    def replica_stats(self) -> list[dict]:
        """Per-replica health snapshot (dispatch counts, failure score,
        breaker state, smoothed latency)."""
        return [
            {
                "replica": rep.idx,
                "dispatched": rep.dispatched,
                "consecutive_failures": rep.consecutive_failures,
                "breaker_state": rep.breaker.state,
                "lat_ewma": rep.lat_ewma,
            }
            for rep in self._replicas
        ]

    @property
    def replicas(self) -> int:
        return len(self._replicas)

    def frontends(self) -> list[ServingFrontend]:
        return [rep.frontend for rep in self._replicas]

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Quiesce every replica front end and the router's local cache.
        Afterwards new queries are refused with a typed rejection."""
        self._closed = True
        await asyncio.gather(*(rep.frontend.close() for rep in self._replicas))
        self._local.close()

    async def __aenter__(self) -> "ClusterRouter":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- routing -----------------------------------------------------------

    def _admit(self) -> int:
        if self._closed:
            raise AdmissionRejected("shutdown", 0.0, 0, 0)
        qid = self._qseq
        self._qseq += 1
        return qid

    def _order(self, path: Path) -> list[_Replica]:
        """Rendezvous (HRW) order of replicas for this index identity.

        Deterministic across routers and processes: the score is a
        ``blake2b`` of ``identity|replica``, so the same frozen instance
        always elects the same primary (= writer) and the same failover
        sequence, no matter which router computes it.

        The identity itself is a manifest read; paying a JSON parse per
        routed query would be most of the routing tax.  Since a
        republish replaces the manifest by atomic rename, its stat
        signature ``(inode, mtime_ns, size)`` is a faithful proxy for
        "identity unchanged", and the computed order is memoized
        against it.
        """
        resolved = Path(path).resolve()
        try:
            st = os.stat(resolved / _MANIFEST)
            stamp = (st.st_ino, st.st_mtime_ns, st.st_size)
        except OSError:
            stamp = None
        hit = self._order_cache.get(resolved)
        if hit is not None and stamp is not None and hit[0] == stamp:
            return hit[1]
        ident = repr(self._local.identity(resolved))

        def score(rep: _Replica) -> int:
            digest = hashlib.blake2b(
                f"{ident}|{rep.idx}".encode(), digest_size=8
            ).digest()
            return int.from_bytes(digest, "big")

        order = sorted(self._replicas, key=score, reverse=True)
        if stamp is not None:
            if len(self._order_cache) >= 64:
                self._order_cache.pop(next(iter(self._order_cache)))
            self._order_cache[resolved] = (stamp, order)
        return order

    def _hedge_delay(self) -> float:
        if self.hedge_after is not None:
            return self.hedge_after
        if self._p99_ewma is not None:
            return max(self._p99_ewma, 1e-4)
        return 0.05

    def _observe(self, lat: float) -> None:
        self._lats.append(lat)
        p99 = float(np.percentile(self._lats, 99))
        self._p99_ewma = ewma_update(self._p99_ewma, p99)

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2 ** max(attempt, 0)))

    def _retry_after(self) -> float:
        waits = [rep.breaker.remaining_cooldown() for rep in self._replicas]
        return max(min(waits) if waits else 0.0, 1e-3)

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, rep: _Replica, qid: int, op: str, path, *args,
                        **kwargs):
        """One attempt against one replica, health-accounted."""
        inj = self.injector
        if inj.replica_crashed(rep.idx, qid) or inj.replica_partitioned(
            rep.idx, qid
        ):
            rep.consecutive_failures += 1
            self.stats.replica_failures += 1
            rep.breaker.record_failure()
            raise ReplicaUnreachableError(rep.idx, qid)
        delay = inj.replica_delay(rep.idx)
        if delay:
            await asyncio.sleep(delay)
        t0 = time.perf_counter()
        result = await getattr(rep.frontend, op)(path, *args, **kwargs)
        lat = time.perf_counter() - t0
        rep.lat_ewma = ewma_update(rep.lat_ewma, lat)
        self._observe(lat)
        rep.dispatched += 1
        rep.consecutive_failures = 0
        rep.breaker.record_success()
        return result

    # -- reads: failover + hedging -----------------------------------------

    async def _read(self, op, path, args, kwargs, *, k=None, eps=None):
        qid = self._admit()
        self.stats.routed += 1
        order = self._order(path)
        attempts = 0
        for rep in order:
            if attempts > self.failover_retries:
                break
            if not rep.breaker.allow():
                continue
            if attempts:
                self.stats.failovers += 1
                await asyncio.sleep(self._backoff(attempts - 1))
            attempts += 1
            try:
                return await self._hedged(rep, order, qid, op, path, args,
                                          kwargs)
            except ReplicaUnreachableError:
                continue
            except AdmissionRejected as exc:
                if exc.reason == "queue-full":
                    # This replica's queue is full, not the cluster's:
                    # spill to the next one.
                    continue
                raise
        return await self._unavailable(op, path, k, eps)

    async def _hedged(self, rep, order, qid, op, path, args, kwargs):
        """Dispatch with tail-latency hedging: first answer wins, the
        loser is cancelled and counted."""
        primary = asyncio.ensure_future(
            self._dispatch(rep, qid, op, path, *args, **kwargs)
        )
        alt = next(
            (r for r in order if r is not rep and r.breaker.allow()), None
        )
        if not self.hedge or alt is None:
            return await primary
        try:
            await asyncio.wait({primary}, timeout=self._hedge_delay())
        except asyncio.CancelledError:
            primary.cancel()
            raise
        if primary.done():
            return primary.result()
        self.stats.hedges += 1
        secondary = asyncio.ensure_future(
            self._dispatch(alt, qid, op, path, *args, **kwargs)
        )
        pending = {primary, secondary}
        last_exc: BaseException | None = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    if task.exception() is None:
                        for loser in pending:
                            loser.cancel()
                        if pending:
                            await asyncio.gather(
                                *pending, return_exceptions=True
                            )
                        if task is secondary:
                            self.stats.hedge_wins += 1
                        return task.result()
                    last_exc = task.exception()
        except asyncio.CancelledError:
            for task in (primary, secondary):
                task.cancel()
            raise
        assert last_exc is not None
        raise last_exc

    # -- writes: single writer, capped retry, read-only fallback -----------

    async def _write(self, op, path, args, kwargs, *, graph, k=None, eps=None):
        qid = self._admit()
        self.stats.routed += 1
        order = self._order(path)
        writer = order[0]
        if self._mutate_hedge_writes and len(order) > 1:
            # Deliberate bug (mutation suite): duplicate-dispatch the
            # write to two replicas — two writers on one index.
            self.stats.hedges += 1
            tasks = [
                asyncio.ensure_future(
                    self._dispatch(r, qid, op, path, *args, graph=graph,
                                   **kwargs)
                )
                for r in order[:2]
            ]
            done, pending = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
            for loser in pending:
                loser.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            return next(iter(done)).result()
        for attempt in range(self.failover_retries + 1):
            if attempt:
                self.stats.write_retries += 1
                await asyncio.sleep(self._backoff(attempt - 1))
            if not writer.breaker.allow():
                break
            try:
                return await self._dispatch(
                    writer, qid, op, path, *args, graph=graph, **kwargs
                )
            except ReplicaUnreachableError:
                continue
        # The writer is down.  Failing the write over to another replica
        # would mint a second writer — instead serve the *read-only*
        # version from the failover order (the frontend degrades
        # honestly when the answer would need an extension).
        self.stats.writer_fallbacks += 1
        for rep in order[1:]:
            if not rep.breaker.allow():
                continue
            try:
                return await self._dispatch(
                    rep, qid, op, path, *args, graph=None, **kwargs
                )
            except ReplicaUnreachableError:
                continue
            except AdmissionRejected as exc:
                if exc.reason == "queue-full":
                    continue
                raise
        return await self._unavailable(op, path, k, eps)

    # -- every replica down: stale local prefix or typed refusal -----------

    async def _unavailable(self, op, path, k, eps):
        self.stats.unavailable += 1
        if self.degrade_on_unavailable and op in ("top_k", "tighten"):
            try:
                return await self._degrade_local(path, k, eps)
            except Exception:
                pass  # fall through to the typed refusal
        raise ClusterUnavailable(
            "no-healthy-replica", self._retry_after(), len(self._replicas)
        )

    async def _degrade_local(self, path, k, eps):
        """Answer a selection query from the router's own mapped prefix,
        typed degraded with the shrink-arithmetic accounting."""
        with self._local.lease(path) as eng:

            def run():
                t0 = time.perf_counter()
                mf = eng.index.manifest
                kk = int(mf["k"]) if k is None else int(k)
                ee = float(mf["eps"]) if eps is None else float(eps)
                n = eng.index.n
                m = eng.index.num_samples
                lb = float(mf["lb"]) if mf.get("lb") is not None else 1.0
                l = float(mf["l"])
                seeds, covered = eng._celf_select(m, kk)
                common = dict(
                    seeds=seeds,
                    k=kk,
                    epsilon=ee,
                    model=eng.index.model,
                    theta=m,
                    num_samples_used=m,
                    coverage=covered / max(m, 1),
                    lb=lb,
                    estimation_rounds=0,
                    coverage_history=[],
                    samples_added=0,
                    samples_reused=m,
                    edges_examined=0,
                    seconds=time.perf_counter() - t0,
                )
                if self._mutate_stale_as_fresh:
                    # Deliberate bug (mutation suite): the stale prefix
                    # served as a full-fidelity, untyped answer.
                    return ServingResult(**common)
                return DegradedServingResult(
                    **common,
                    theta_effective=m,
                    epsilon_effective=shrink_epsilon(n, kk, l, m, lb),
                    degraded_reason="cluster-unavailable",
                )

            result = await asyncio.to_thread(run)
        self.stats.degraded_local += 1
        return result
