"""Influence queries against a frozen RRR index — no resampling.

The paper's premise is that RRR sampling dominates IMM cost; the serving
layer amortizes it.  :func:`freeze_index` runs the sampling once —
exactly Algorithm 1's control flow — and freezes the collection with its
algorithm facts; :class:`InfluenceQueryEngine` then answers ``top_k``,
``marginal_gain``, ``what_if`` and ``tighten`` queries from the mapped
bytes.

**Bit-identity by prefix replay.**  A fresh ``imm(graph, k, eps)`` is a
deterministic function of its arguments: the θ-estimation doubling
search selects over the *first* ``θ_x`` samples each round, accepts at
some coverage, and the final selection runs over ``max(θ_x_last, θ)``
samples — where sample ``j`` is itself a pure function of ``(graph,
model, seed, j)``.  The engine therefore replays that exact control flow
against *prefix views* of the frozen collection: every per-round
selection happens over the same samples the fresh run would have drawn,
so the answer is bit-identical for **any** ``(k, eps)`` — not just the
pair the index was frozen with.  When a query's ``θ_x`` or ``θ`` exceeds
the frozen sample count, the deterministic streams let the engine extend
the index tail in place (old samples stay valid; θ grows monotonically);
queries that fit inside the index touch **zero** graph edges, which the
oracle's edge-meter assertion enforces.

**CELF lazy selection.**  Per-query greedy re-selection uses
Leskovec-style lazy evaluation over ``select_seeds_sorted``'s coverage
structures (the vertex→positions index, the alive-sample mask): a
max-heap of stale upper bounds, re-evaluating only the popped vertex.
Coverage gains are monotone non-increasing as seeds are added
(submodularity), so a re-evaluated top-of-heap is the true argmax; the
heap orders ties by vertex id, reproducing the argmax selector's
smallest-id tie-break exactly — a property the test suite asserts
against :func:`~repro.imm.select.select_seeds_sorted` directly.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..diffusion import DiffusionModel
from ..imm.select import select_seeds
from ..imm.theta import (
    _inflated_l,
    estimate_theta,
    lambda_prime,
    lambda_star,
    validate_eps,
)
from ..sampling import BatchedRRRSampler, SortedRRRCollection, sample_batch
from .frozen import FrozenIndexError, FrozenRRRIndex

__all__ = ["InfluenceQueryEngine", "ServingResult", "MarginalGains", "freeze_index"]


@dataclass
class ServingResult:
    """Answer to one serving query, with its no-resampling accounting.

    ``edges_examined`` and ``samples_added`` are both zero when the query
    was answered entirely from the frozen index — the serving layer's
    core claim, asserted by the oracle's edge meter.  ``samples_reused``
    counts how many of the samples the answer used were already frozen
    before the query ran (for a ``tighten``, all previously landed
    samples by construction).
    """

    seeds: np.ndarray
    k: int
    epsilon: float
    model: str
    theta: int
    num_samples_used: int
    coverage: float
    lb: float
    estimation_rounds: int
    coverage_history: list[tuple[int, float]] = field(default_factory=list)
    samples_added: int = 0
    samples_reused: int = 0
    edges_examined: int = 0
    seconds: float = 0.0

    @property
    def served_from_index(self) -> bool:
        return self.samples_added == 0

    @property
    def degraded(self) -> bool:
        """``True`` only on the front end's typed degraded subclass."""
        return False


@dataclass
class MarginalGains:
    """Coverage-estimated spread of a seed set plus per-vertex marginals.

    ``spread`` is the standard RRR estimator ``n · F_R(S)``; ``gains[v]``
    is the estimated spread *increase* from adding ``v`` to the set.
    """

    spread: float
    covered_samples: int
    num_samples: int
    gains: np.ndarray  # n-length float64, 0 for vertices already in the set


def freeze_index(
    graph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    theta_cap: int | None = None,
    out_dir: str | Path,
    compress: bool = False,
) -> tuple[FrozenRRRIndex, ServingResult]:
    """Sample once (Algorithm 1's exact control flow) and freeze.

    The frozen manifest records everything the replay needs — ``(n,
    model, seed, k, eps, l, theta_cap)`` plus the derived ``(theta, lb,
    coverage_history)`` — and the per-sample examined-edge meters ride
    along so serving-time extensions account work the same way fresh
    sampling does.  ``compress=True`` writes the frequency-ranked
    delta+varint section instead of the flat incidence file (see
    :mod:`repro.serving.frozen`); served answers are bit-identical.
    """
    model = DiffusionModel.parse(model)
    t0 = time.perf_counter()
    collection = SortedRRRCollection(graph.n)
    trace: list = []
    est = estimate_theta(
        graph, k, eps, model, seed, l,
        collection=collection, theta_cap=theta_cap, trace=trace,
    )
    batch = sample_batch(graph, model, collection, est.theta, seed)
    per_edges = np.concatenate(
        [np.asarray(b.per_sample_edges, dtype=np.int64)
         for kind, b in trace if kind == "sample"]
        + [np.asarray(batch.per_sample_edges, dtype=np.int64)]
    ) if trace or batch.count else np.empty(0, dtype=np.int64)
    if len(per_edges) != len(collection):
        raise RuntimeError(
            f"edge-meter capture covers {len(per_edges)} samples, "
            f"collection holds {len(collection)}"
        )
    sel = select_seeds(collection, graph.n, k)
    index = FrozenRRRIndex.freeze(
        collection, out_dir,
        graph=graph, model=model.value, seed=seed,
        k=k, eps=eps, l=l,
        theta=est.theta, lb=est.lb, theta_cap=theta_cap,
        coverage_history=est.coverage_history,
        estimation_rounds=est.rounds,
        edges=per_edges,
        layout="compressed" if compress else "flat",
    )
    res = ServingResult(
        seeds=sel.seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        theta=est.theta,
        num_samples_used=len(collection),
        coverage=sel.coverage_fraction(len(collection)),
        lb=est.lb,
        estimation_rounds=est.rounds,
        coverage_history=list(est.coverage_history),
        samples_added=len(collection),
        samples_reused=0,
        edges_examined=int(per_edges.sum()),
        seconds=time.perf_counter() - t0,
    )
    return index, res


def _validate_vertex_ids(ids, n: int, what: str) -> tuple[int, ...]:
    """Range-check query vertex ids before any coverage structure is
    touched.

    Without this, an out-of-range id surfaces as a numpy ``IndexError``
    deep inside CELF — and a *negative* id silently wraps around and
    answers about the wrong vertex, which is worse than crashing.
    """
    checked = []
    for v in np.asarray(list(ids), dtype=np.int64).tolist():
        if not 0 <= v < n:
            raise ValueError(
                f"{what} vertex {v} out of range for a graph with "
                f"{n} vertices (valid ids: 0..{n - 1})"
            )
        checked.append(int(v))
    return tuple(checked)


class InfluenceQueryEngine:
    """Serve influence queries from one frozen index.

    Parameters
    ----------
    index:
        An open :class:`FrozenRRRIndex`.
    graph:
        The graph the index was frozen against.  Verified against the
        frozen fingerprint (raising
        :class:`~repro.serving.frozen.StaleIndexError` on mismatch) and
        required only when a query must extend the index; pure in-index
        queries work without it.
    """

    def __init__(self, index: FrozenRRRIndex, graph=None, *, verify: bool = True,
                 _mutate_stream_restart: bool = False) -> None:
        if graph is not None and verify:
            index.verify_graph(graph)
        self.index = index
        self.graph = graph
        self._sampler = None
        # (vert_order, vert_indptr) as ONE attribute: the front end runs
        # concurrent queries against a shared engine in worker threads,
        # and a single tuple assignment is atomic where a pair of
        # attribute writes can be observed half-built.
        self._vert_cache: tuple[np.ndarray, np.ndarray] | None = None
        #: cumulative edges examined by serving-time extensions.
        self.edges_examined = 0
        # Test hook for the tighten-reuses-wrong-stream-offset mutant:
        # extension draws streams [0, count) instead of [start, target).
        self._mutate_stream_restart = _mutate_stream_restart

    # -- coverage structures ----------------------------------------------

    def _vertex_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertex → flat-entry positions, grouped (stable, so positions
        ascend within each vertex — prefix cuts are one searchsorted)."""
        cache = self._vert_cache
        if cache is None:
            flat, _, _ = self.index.arrays()
            order = np.argsort(flat, kind="stable")
            counts = np.bincount(flat, minlength=self.index.n)
            vert_indptr = np.zeros(self.index.n + 1, dtype=np.int64)
            np.cumsum(counts, out=vert_indptr[1:])
            cache = self._vert_cache = (order, vert_indptr)
        return cache

    def _invalidate(self) -> None:
        self._vert_cache = None

    # -- sampling-on-demand ------------------------------------------------

    def _ensure_samples(self, target: int, allow_extend: bool) -> tuple[int, int]:
        """Grow the index to ``target`` samples; return (added, edges)."""
        idx = self.index
        if target <= idx.num_samples:
            return 0, 0
        if not allow_extend or self.graph is None:
            why = (
                "extension is disabled"
                if self.graph is not None
                else "no graph is attached to extend it"
            )
            exc = FrozenIndexError(
                f"query needs {target} samples but the index holds "
                f"{idx.num_samples} and {why}"
            )
            # The front end's degradation path reads these to report an
            # honest theta_effective/theta target pair.
            exc.needed = int(target)
            exc.have = int(idx.num_samples)
            raise exc
        start = idx.num_samples
        if self._sampler is None:
            self._sampler = BatchedRRRSampler(self.graph, idx.model)
        coll = SortedRRRCollection(idx.n)
        if self._mutate_stream_restart:
            indices = np.arange(0, target - start, dtype=np.int64)
        else:
            indices = np.arange(start, target, dtype=np.int64)
        per_sample = self._sampler.sample_into(coll, indices, idx.seed)
        flat, indptr, _ = coll.flattened()
        idx.extend(
            flat.astype(np.int32), np.diff(indptr), per_sample, start=start
        )
        self._invalidate()
        edges = int(per_sample.sum())
        self.edges_examined += edges
        return target - start, edges

    # -- CELF lazy greedy --------------------------------------------------

    def _celf_select(
        self,
        num_samples: int,
        k: int,
        *,
        forced: tuple[int, ...] = (),
        excluded: tuple[int, ...] = (),
    ) -> tuple[np.ndarray, int]:
        """Greedy max-cover over the first ``num_samples`` samples.

        Bit-identical to :func:`~repro.imm.select.select_seeds_sorted`
        on the same prefix (same seeds, same covered count, same
        smallest-id tie-break), but lazy: only popped vertices are
        re-evaluated, so a warm query touches a tiny fraction of the
        counter array.  ``forced`` vertices are seated first (in the
        given order); ``excluded`` vertices never enter the heap.
        """
        n = self.index.n
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        flat, indptr, sample_of = self.index.arrays()
        # Clamp to the mapped prefix: a concurrent extension commits the
        # manifest count before the remap lands, so a racing caller's
        # ``num_samples`` snapshot can momentarily exceed ``indptr``.
        m = min(int(num_samples), len(indptr) - 1)
        entries_m = int(indptr[m])
        vert_order, vert_indptr = self._vertex_index()
        alive = np.ones(m, dtype=bool)
        taken = np.zeros(n, dtype=bool)
        seeds: list[int] = []
        covered = 0

        def hits_of(v: int) -> np.ndarray:
            pos = vert_order[vert_indptr[v] : vert_indptr[v + 1]]
            cut = int(np.searchsorted(pos, entries_m))
            return sample_of[pos[:cut]]

        forced = _validate_vertex_ids(forced, n, "forced")
        excluded = _validate_vertex_ids(excluded, n, "excluded")
        for v in forced:
            if taken[v]:
                continue
            taken[v] = True
            seeds.append(v)
            hits = hits_of(v)
            killed = hits[alive[hits]]
            covered += len(killed)
            alive[killed] = False
        if len(seeds) > k:
            raise ValueError(f"{len(seeds)} forced vertices exceed k={k}")

        for v in excluded:
            if taken[v]:
                raise ValueError(f"vertex {v} is both forced and excluded")
            taken[v] = True  # never enters the heap

        if len(seeds) < k:
            # Initial gains: membership counts over the prefix, minus
            # anything the forced set already covered.
            if covered:
                mask = alive[sample_of[:entries_m]]
                counters = np.bincount(flat[:entries_m][mask], minlength=n)
            else:
                counters = np.bincount(flat[:entries_m], minlength=n)
            stamp0 = len(seeds)
            heap = [
                (-int(counters[v]), v, stamp0)
                for v in range(n)
                if not taken[v]
            ]
            heapq.heapify(heap)
            while len(seeds) < k:
                if not heap:
                    raise ValueError(
                        f"cannot seat {k} seeds: only {len(seeds)} candidates"
                    )
                neg_gain, v, stamp = heapq.heappop(heap)
                if taken[v]:
                    continue
                hits = hits_of(v)
                if stamp != len(seeds):
                    # Stale bound: re-evaluate and re-queue.  Gains only
                    # shrink, so a fresh top-of-heap is the true argmax.
                    gain = int(np.count_nonzero(alive[hits]))
                    heapq.heappush(heap, (-gain, v, len(seeds)))
                    continue
                taken[v] = True
                seeds.append(v)
                killed = hits[alive[hits]]
                covered += len(killed)
                alive[killed] = False
        return np.asarray(seeds, dtype=np.int64), covered

    # -- the estimation replay ---------------------------------------------

    def _replay(self, k: int, eps: float, *, allow_extend: bool) -> dict:
        """Replay ``imm``'s θ-estimation + final selection over prefixes.

        Mirrors :func:`repro.imm.theta._estimate_theta_loop` exactly —
        same constants, same acceptance test, same cap semantics — with
        the sampling calls replaced by index-prefix materialization.
        Keeping the two in lockstep is what the serving oracle's
        bit-identity axis checks on every registry graph.
        """
        idx = self.index
        n = idx.n
        if n < 2:
            raise ValueError(f"IMM needs at least 2 vertices, got n={n}")
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        validate_eps(eps)
        l = float(idx.manifest["l"])
        cap = idx.manifest.get("theta_cap")
        l_eff = _inflated_l(n, l)
        eps_p = math.sqrt(2.0) * eps
        lam_p = lambda_prime(n, k, eps, l_eff)
        lam_s = lambda_star(n, k, eps, l_eff)

        lb = 1.0
        history: list[tuple[int, float]] = []
        rounds = 0
        added = edges = 0
        theta_x = 0
        max_x = max(1, int(math.ceil(math.log2(n))) - 1)
        for x in range(1, max_x + 1):
            rounds += 1
            y = n / (2.0**x)
            theta_x = int(math.ceil(lam_p / y))
            if cap is not None:
                theta_x = min(theta_x, cap)
            a, e = self._ensure_samples(theta_x, allow_extend)
            added += a
            edges += e
            _, covered = self._celf_select(theta_x, k)
            frac = covered / max(theta_x, 1)
            history.append((theta_x, frac))
            if n * frac >= (1.0 + eps_p) * y:
                lb = n * frac / (1.0 + eps_p)
                break
            if cap is not None and theta_x >= cap:
                break

        theta = int(math.ceil(lam_s / lb))
        if cap is not None:
            theta = min(theta, cap)
        num_used = max(theta_x, theta)
        a, e = self._ensure_samples(num_used, allow_extend)
        added += a
        edges += e
        seeds, covered = self._celf_select(num_used, k)
        return {
            "seeds": seeds,
            "theta": theta,
            "lb": lb,
            "rounds": rounds,
            "history": history,
            "num_used": num_used,
            "covered": covered,
            "added": added,
            "edges": edges,
        }

    # -- queries -----------------------------------------------------------

    def top_k(
        self,
        k: int | None = None,
        eps: float | None = None,
        *,
        allow_extend: bool | None = None,
    ) -> ServingResult:
        """The ``k`` best seeds, bit-identical to ``imm(graph, k, eps)``.

        Defaults to the frozen ``(k, eps)``; any other pair replays the
        estimation over index prefixes, extending the tail only when the
        new pair genuinely demands more samples (requires ``graph``).
        ``allow_extend=False`` forbids extension even with a graph
        attached — the front end uses it to keep in-prefix queries out of
        the single-writer bulkhead; an out-of-prefix query then raises
        :class:`FrozenIndexError` with ``needed``/``have`` attributes.
        """
        t0 = time.perf_counter()
        mf = self.index.manifest
        k = int(mf["k"]) if k is None else int(k)
        eps = float(mf["eps"]) if eps is None else float(eps)
        before = self.index.num_samples
        if allow_extend is None:
            allow_extend = self.graph is not None
        r = self._replay(k, eps, allow_extend=allow_extend)
        return ServingResult(
            seeds=r["seeds"],
            k=k,
            epsilon=eps,
            model=self.index.model,
            theta=r["theta"],
            num_samples_used=r["num_used"],
            coverage=r["covered"] / max(r["num_used"], 1),
            lb=r["lb"],
            estimation_rounds=r["rounds"],
            coverage_history=r["history"],
            samples_added=r["added"],
            samples_reused=min(before, r["num_used"]),
            edges_examined=r["edges"],
            seconds=time.perf_counter() - t0,
        )

    def tighten(self, eps: float, k: int | None = None) -> ServingResult:
        """Re-derive at a tighter ``eps``, extending the index in place.

        All previously landed samples are reused verbatim — the
        deterministic per-sample streams mean the tail the tighter θ
        demands is appended after the sealed prefix, never resampled.
        The manifest is amended to the new facts, so subsequent default
        queries serve the tightened guarantee.
        """
        res = self.top_k(k=k, eps=eps)
        self.index.amend(
            k=res.k,
            eps=res.epsilon,
            theta=res.theta,
            lb=res.lb,
            coverage_history=res.coverage_history,
            estimation_rounds=res.estimation_rounds,
        )
        return res

    def what_if(
        self,
        k: int | None = None,
        *,
        forced: tuple[int, ...] = (),
        excluded: tuple[int, ...] = (),
    ) -> ServingResult:
        """Constrained selection over the frozen samples.

        ``forced`` vertices are seated first; ``excluded`` vertices are
        never picked.  Serves from the index as-is (no resampling, no
        approximation-guarantee claim — this is the scenario-exploration
        query).
        """
        t0 = time.perf_counter()
        mf = self.index.manifest
        k = int(mf["k"]) if k is None else int(k)
        m = self.index.num_samples
        seeds, covered = self._celf_select(
            m, k, forced=tuple(forced), excluded=tuple(excluded)
        )
        return ServingResult(
            seeds=seeds,
            k=k,
            epsilon=float(mf["eps"]),
            model=self.index.model,
            theta=int(mf["theta"]),
            num_samples_used=m,
            coverage=covered / max(m, 1),
            lb=float(mf["lb"]) if mf.get("lb") is not None else 1.0,
            estimation_rounds=int(mf.get("estimation_rounds") or 0),
            coverage_history=[],
            samples_added=0,
            samples_reused=m,
            edges_examined=0,
            seconds=time.perf_counter() - t0,
        )

    def marginal_gain(
        self, seed_set, candidates: np.ndarray | None = None
    ) -> MarginalGains:
        """Spread estimate of ``seed_set`` and marginal gains on top of it.

        Pure index read: covers the seed set's samples, then counts every
        vertex's membership among the still-alive samples.  ``gains[v]``
        is the estimated spread increase of adding ``v``; vertices in
        ``seed_set`` report 0.  ``candidates`` restricts the returned
        array to those vertices (same order) without changing values.
        """
        idx = self.index
        n, m = idx.n, idx.num_samples
        seed_set = _validate_vertex_ids(seed_set, n, "seed")
        if candidates is not None:
            candidates = np.asarray(
                _validate_vertex_ids(candidates, n, "candidate"), dtype=np.int64
            )
        flat, indptr, sample_of = idx.arrays()
        vert_order, vert_indptr = self._vertex_index()
        # Snapshot the prefix: the front end runs pure reads concurrently
        # with a single extension writer, so the mapped arrays (and the
        # vertex index) may already cover samples past ``m`` — every read
        # below is cut to the first ``m`` samples, exactly like
        # ``_celf_select``'s prefix replay.
        m = min(m, len(indptr) - 1)
        entries = int(indptr[m])
        alive = np.ones(m, dtype=bool)
        covered = 0
        for v in seed_set:
            pos = vert_order[vert_indptr[v] : vert_indptr[v + 1]]
            pos = pos[: int(np.searchsorted(pos, entries))]
            hits = sample_of[pos]
            killed = hits[alive[hits]]
            covered += len(killed)
            alive[killed] = False
        mask = alive[sample_of[:entries]]
        gains_count = np.bincount(flat[:entries][mask], minlength=n)
        scale = n / m if m else 0.0
        gains = gains_count.astype(np.float64) * scale
        for v in seed_set:
            gains[v] = 0.0
        if candidates is not None:
            gains = gains[candidates]
        return MarginalGains(
            spread=covered * scale,
            covered_samples=covered,
            num_samples=m,
            gains=gains,
        )
