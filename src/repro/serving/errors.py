"""Typed failure surface of the serving front end.

Every way the front end refuses or abandons a query is a distinct
exception type carrying the numbers a caller needs to react — retry
delay, elapsed vs. budget, which extension attempt died — so traffic
policy lives in the caller (back off, re-route, accept a degraded
answer) instead of being guessed from string matching.  Index-integrity
failures keep their own hierarchy
(:class:`~repro.serving.frozen.FrozenIndexError`); these errors are
about *traffic*, not bytes.
"""

from __future__ import annotations

__all__ = [
    "ServingFrontendError",
    "AdmissionRejected",
    "QueryDeadlineExceeded",
    "ExtensionFailedError",
    "ClusterUnavailable",
]


class ServingFrontendError(RuntimeError):
    """Base class for front-end traffic failures."""


class AdmissionRejected(ServingFrontendError):
    """The query was shed at the door — the bounded queue is full (or the
    front end is shutting down).  ``retry_after`` is the front end's
    estimate of when capacity frees up, derived from the observed
    per-query latency and the current backlog depth.
    """

    def __init__(
        self, reason: str, retry_after: float, inflight: int, limit: int
    ) -> None:
        super().__init__(
            f"admission rejected ({reason}): {inflight}/{limit} queries "
            f"in flight, retry after {retry_after:.3f}s"
        )
        self.reason = reason
        self.retry_after = float(retry_after)
        self.inflight = inflight
        self.limit = limit


class QueryDeadlineExceeded(ServingFrontendError):
    """The query's deadline expired while it was still queued — running
    it would only return an answer nobody is waiting for."""

    def __init__(self, waited: float, deadline: float) -> None:
        super().__init__(
            f"deadline of {deadline:.3f}s expired after {waited:.3f}s in queue"
        )
        self.waited = float(waited)
        self.deadline = float(deadline)


class ExtensionFailedError(ServingFrontendError):
    """An index extension (tighten / out-of-prefix θ) crashed or timed
    out.  Queries normally never see this — the front end converts it
    into a degraded answer and feeds the circuit breaker — but it is
    raised to the caller when degradation is impossible (no prefix to
    answer from)."""

    def __init__(self, attempt: int, cause: str) -> None:
        super().__init__(f"index extension attempt {attempt} failed: {cause}")
        self.attempt = attempt
        self.cause = cause


class ClusterUnavailable(ServingFrontendError):
    """Every replica that could answer the query is down (crashed,
    partitioned, or breaker-open) and the query cannot be served from a
    local stale prefix.  ``retry_after`` estimates when a replica comes
    back — the soonest breaker cooldown expiry the router knows about.
    Never a hang, never a silent wrong answer."""

    def __init__(self, reason: str, retry_after: float, replicas: int) -> None:
        super().__init__(
            f"cluster unavailable ({reason}): 0/{replicas} replicas "
            f"reachable, retry after {retry_after:.3f}s"
        )
        self.reason = reason
        self.retry_after = float(retry_after)
        self.replicas = replicas
