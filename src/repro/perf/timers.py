"""Phase timing in the paper's four-phase decomposition.

Figures 3–8 all present runtime split into **EstimateTheta**, **Sample**,
**SelectSeeds** and **Other**.  Two conventions from the paper are
honored here:

* The ``Sample`` phase only accounts the *final* invocation from
  Algorithm 1's skeleton; the sampling performed inside ``EstimateTheta``
  is charged to the estimation phase ("the cost of the calls to Sample
  from within the Estimation function are included as part of the
  'Estimation' bars").
* ``Other`` is the remainder: total minus the three named phases.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["PhaseTimer", "PhaseBreakdown", "PHASES", "side_by_side"]

#: Canonical phase names, in the order the paper's figure legends use.
PHASES = ("EstimateTheta", "Sample", "SelectSeeds", "Other")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Immutable snapshot of a run's per-phase seconds."""

    estimate_theta: float
    sample: float
    select_seeds: float
    other: float

    @property
    def total(self) -> float:
        return self.estimate_theta + self.sample + self.select_seeds + self.other

    def as_dict(self) -> dict[str, float]:
        return {
            "EstimateTheta": self.estimate_theta,
            "Sample": self.sample,
            "SelectSeeds": self.select_seeds,
            "Other": self.other,
        }

    def scaled(self, factor: float) -> "PhaseBreakdown":
        """A breakdown with every phase multiplied by ``factor``."""
        return PhaseBreakdown(
            self.estimate_theta * factor,
            self.sample * factor,
            self.select_seeds * factor,
            self.other * factor,
        )

    def __add__(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        return PhaseBreakdown(
            self.estimate_theta + other.estimate_theta,
            self.sample + other.sample,
            self.select_seeds + other.select_seeds,
            self.other + other.other,
        )


class PhaseTimer:
    """Accumulates seconds per phase; wall-clock or charged explicitly.

    Usage::

        timer = PhaseTimer()
        with timer.phase("EstimateTheta"):
            ...
        timer.charge("Sample", simulated_seconds)   # modeled time
        breakdown = timer.breakdown()

    Nested phases are rejected — the paper's decomposition is flat, and
    accidental nesting would double-count.
    """

    def __init__(self) -> None:
        self._acc: dict[str, float] = {name: 0.0 for name in PHASES}
        self._active: str | None = None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of real execution under phase ``name``."""
        self._check(name)
        if self._active is not None:
            raise RuntimeError(
                f"phase {name!r} started while {self._active!r} is active"
            )
        self._active = name
        start = time.perf_counter()
        try:
            yield
        finally:
            self._acc[name] += time.perf_counter() - start
            self._active = None

    def charge(self, name: str, seconds: float) -> None:
        """Add modeled (simulated) seconds to phase ``name``."""
        self._check(name)
        if seconds < 0:
            raise ValueError(f"cannot charge negative time ({seconds}) to {name!r}")
        self._acc[name] += seconds

    def seconds(self, name: str) -> float:
        self._check(name)
        return self._acc[name]

    def breakdown(self) -> PhaseBreakdown:
        return PhaseBreakdown(
            estimate_theta=self._acc["EstimateTheta"],
            sample=self._acc["Sample"],
            select_seeds=self._acc["SelectSeeds"],
            other=self._acc["Other"],
        )

    @staticmethod
    def _check(name: str) -> None:
        if name not in PHASES:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")


def side_by_side(
    measured: PhaseBreakdown,
    modeled: PhaseBreakdown,
    *,
    measured_label: str = "measured",
    modeled_label: str = "modeled",
) -> str:
    """Render two breakdowns as one aligned per-phase table.

    Used by the real-parallel drivers, which carry both a measured
    wall-clock breakdown (the process pool actually ran) and the cost
    model's prediction for the same phases — the paper's figures are
    modeled, the reproduction's speedups are measured, and printing them
    side by side is how the substitution stays inspectable.
    """
    rows = [f"{'phase':<15} {measured_label:>12} {modeled_label:>12}"]
    md, sd = measured.as_dict(), modeled.as_dict()
    for name in PHASES:
        rows.append(f"{name:<15} {md[name]:>11.4f}s {sd[name]:>11.4f}s")
    rows.append(f"{'total':<15} {measured.total:>11.4f}s {modeled.total:>11.4f}s")
    return "\n".join(rows)
