"""Instrumentation: phase timers, work counters and memory accounting.

Every runtime figure in the paper decomposes execution into four phases —
*EstimateTheta*, *Sample*, *SelectSeeds* and *Other* — and Table 2 adds a
peak-memory column.  This subpackage provides the measurement plumbing:

* :class:`PhaseTimer` accumulates wall-clock and/or simulated seconds per
  named phase (the parallel implementations charge modeled time, the
  serial ones measure real time; both flow through the same object).
* :class:`WorkCounters` tallies algorithmic work (edges examined,
  counter updates) that the machine cost models convert to time.
* :mod:`repro.perf.memory` accounts the resident bytes of the RRR
  layouts and of graph replicas, standing in for the paper's Valgrind
  Massif instrumentation.
"""

from .counters import WorkCounters
from .layoutmodel import modeled_serial_breakdown
from .memory import MemoryModel, collection_bytes, graph_bytes, peak_rss_bytes
from .profiling import profile_run
from .timers import PHASES, PhaseBreakdown, PhaseTimer, side_by_side

__all__ = [
    "PhaseTimer",
    "PhaseBreakdown",
    "PHASES",
    "side_by_side",
    "WorkCounters",
    "MemoryModel",
    "collection_bytes",
    "graph_bytes",
    "peak_rss_bytes",
    "profile_run",
    "modeled_serial_breakdown",
]
