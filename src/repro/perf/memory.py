"""Memory accounting: the reproduction's stand-in for Valgrind Massif.

Table 2 compares the peak memory of the reference hypergraph layout
(IMM) against the paper's one-directional layout (IMM\\ :sup:`OPT`),
measured with Massif on the C++ codes.  Re-measuring Python heap bytes
would mostly measure CPython object overhead, so the comparison here is
*analytic*: each collection layout knows the bytes its C++ equivalent
would hold (see :mod:`repro.sampling.collection`), and the distributed
memory model adds the per-rank graph replica — which is what determines
the OOM-killed configurations visible as gaps in Figure 7.

:func:`peak_rss_bytes` is also provided for callers who want the real
interpreter-level number (via ``tracemalloc``), clearly separated from
the modeled one.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..graph import CSRGraph
from ..sampling.collection import RRRCollection

__all__ = ["MemoryModel", "collection_bytes", "graph_bytes", "peak_rss_bytes"]


def collection_bytes(collection: RRRCollection) -> int:
    """Modeled bytes of an RRR collection (layout-specific)."""
    return collection.nbytes_model()


def graph_bytes(graph: CSRGraph) -> int:
    """Modeled bytes of one full CSR graph replica.

    Models the C++ CSR with 8-byte offsets, 4-byte vertex ids and 4-byte
    ``float`` edge weights, both directions — the replica every MPI rank
    holds in the paper's distributed design.
    """
    per_direction = 8 * (graph.n + 1) + (4 + 4) * graph.m
    return 2 * per_direction


@dataclass(frozen=True)
class MemoryModel:
    """Per-rank resident-set model for a distributed IMM run.

    ``rank_bytes = graph_replica + local_collection + counters`` where
    the counter arrays are the ``n``-element local and global tallies of
    the distributed seed selection (8 bytes each).
    """

    graph_replica: int
    collection: int
    counters: int

    @property
    def total(self) -> int:
        return self.graph_replica + self.collection + self.counters

    @classmethod
    def for_rank(
        cls, graph: CSRGraph, collection: RRRCollection
    ) -> "MemoryModel":
        return cls(
            graph_replica=graph_bytes(graph),
            collection=collection_bytes(collection),
            counters=2 * 8 * graph.n,
        )


@contextmanager
def peak_rss_bytes() -> Iterator[list[int]]:
    """Measure real interpreter peak allocation over a block.

    Yields a single-element list whose value after the block is the peak
    traced bytes::

        with peak_rss_bytes() as peak:
            run()
        print(peak[0])

    Uses ``tracemalloc``; the overhead is significant (the paper makes
    the same observation about Massif, marking unmeasurable runs with a
    circle in Table 2).
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    out = [0]
    try:
        yield out
    finally:
        _, peak = tracemalloc.get_traced_memory()
        out[0] = peak
        if not was_tracing:
            tracemalloc.stop()
