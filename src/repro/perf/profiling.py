"""Lightweight cProfile wrapper for the CLI's ``--profile`` option.

The HPC-Python guidance this project follows is explicit: *no
optimization without measuring*.  :func:`profile_run` wraps any callable
with ``cProfile`` and returns the top-N cumulative-time rows as text, so
``repro-imm run --profile`` can show where an IMM invocation spends its
time (on every input we profiled, sampling dominates — matching the
paper's observation that the Sample phase is the scaling bottleneck).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable

__all__ = ["profile_run"]


def profile_run(
    fn: Callable[..., Any],
    *args: Any,
    top: int = 20,
    sort: str = "cumulative",
    **kwargs: Any,
) -> tuple[Any, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the ``pstats`` text
    for the ``top`` hottest entries sorted by ``sort``.
    """
    if top <= 0:
        raise ValueError("top must be positive")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return result, buf.getvalue()
