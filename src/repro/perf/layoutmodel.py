"""Serial layout cost model: why the hypergraph layout loses.

The paper attributes IMM\\ :sup:`OPT`'s 2.4–4.2× serial advantage to the
compact one-directional RRR representation (Section 3.1 + Table 2).
The mechanism is memory traffic, not instruction count:

* the hypergraph layout **writes every incidence twice** at insertion —
  once into the sample's vertex list (streaming) and once into the
  vertex's sample list (a random-access write into one of ``n``
  growing containers: a cache miss per entry);
* its seed selection walks the inverted index — again one dependent
  random access per incidence — whereas the sorted layout streams
  contiguous vertex lists in cache order (the paper's stated design
  goal) at streaming cost;
* the reference sampler tracks visited vertices in a hash set (one
  probe per examined edge, ~two dependent accesses), where the
  optimized sampler uses an epoch-stamped flat array (streaming-class
  check) — the per-edge cost gap that dominates because sampling
  examines an order of magnitude more edges than it stores vertices.

This module prices both layouts with the same per-operation constants
used by every parallel model in :mod:`repro.parallel.machine`
(``t_edge`` ≈ a DRAM-latency access, ``t_update`` ≈ a streaming
update), so the Table 2 *time* comparison can be reproduced on modeled
seconds even though vectorized Python execution hides cache behaviour
(the wall-clock columns are reported alongside; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from .timers import PhaseBreakdown

if TYPE_CHECKING:  # avoid a circular package import at runtime
    from ..imm.result import IMMResult
    from ..parallel.machine import MachineSpec

__all__ = ["modeled_serial_breakdown"]


def modeled_serial_breakdown(result: IMMResult, machine: MachineSpec) -> PhaseBreakdown:
    """Modeled single-thread phase seconds for a serial :func:`~repro.imm.imm` run.

    Uses the run's work counters; the layout stored in
    ``result.layout`` selects the pricing rules described in the module
    docstring.  The model total is distributed over the four phases in
    the proportions the run actually measured, preserving the paper's
    attribution convention.

    Raises
    ------
    ValueError
        If the result does not come from a serial run (``ranks != 1``)
        or carries an unknown layout tag.
    """
    if result.ranks != 1:
        raise ValueError("layout model prices serial runs only")
    c = result.counters
    t_edge, t_update = machine.t_edge, machine.t_update
    samples = max(c.samples_generated, 1)
    # entries_scanned counts the counting pass plus purges (~2x the
    # stored incidences), so half of it approximates insertion volume.
    stored_entries = c.entries_scanned / 2.0
    avg_size = max(stored_entries / samples, 1.0)

    if result.layout == "hypergraph":
        # Reference sampler: every examined edge pays the traversal
        # access plus a hash-set visited probe (~two dependent DRAM
        # accesses: bucket + node chase).
        sampling = c.edges_examined * (3.0 * t_edge)
        # Double insertion: streaming write + random-access inverted write.
        insertion = stored_entries * (t_update + t_edge)
        # Selection walks the inverted index: random access per entry.
        selection = c.counter_updates * t_edge
    elif result.layout == "sorted":
        # Optimized sampler: traversal access plus an epoch-stamp check
        # in a flat array (streaming-class).
        sampling = c.edges_examined * (t_edge + t_update)
        # Single streaming write plus the per-sample sort.
        insertion = stored_entries * t_update * (1.0 + math.log2(avg_size))
        # Cache-ordered counting and purging.
        selection = c.counter_updates * t_update
    else:
        raise ValueError(f"unknown layout {result.layout!r}")
    # k argmax scans over the n counters per selection invocation.
    invocations = result.extra.get("estimation_rounds", 0) + 1
    n = int(result.extra.get("n", 0))
    argmax = invocations * result.k * n * t_update

    measured = result.breakdown
    total_measured = max(measured.total, 1e-12)
    total_model = sampling + insertion + selection + argmax
    return PhaseBreakdown(
        estimate_theta=total_model * (measured.estimate_theta / total_measured),
        sample=total_model * (measured.sample / total_measured),
        select_seeds=total_model * (measured.select_seeds / total_measured),
        other=total_model * (measured.other / total_measured),
    )
