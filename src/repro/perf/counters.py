"""Algorithmic work counters.

The parallel implementations in this reproduction execute the real
algorithms but charge *modeled* time derived from hardware-independent
work measures.  :class:`WorkCounters` is the ledger: the sampling kernels
report edges examined, the seed-selection kernels report counter
updates and entries scanned, and the machine models in
:mod:`repro.parallel.machine` convert the totals to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkCounters"]


@dataclass
class WorkCounters:
    """Mutable tally of algorithmic work for one run.

    Attributes
    ----------
    edges_examined:
        In-edges touched by ``GenerateRR`` traversals (sampling work).
    samples_generated:
        Number of RRR sets produced.
    entries_scanned:
        RRR incidence entries read during seed selection (counting +
        purge scans).
    counter_updates:
        Increment/decrement operations applied to the per-vertex
        counters of Algorithm 4.
    allreduce_calls / allreduce_elements:
        Collective-communication volume of the distributed variant
        (``O(k * n * lg p)`` total traffic).
    """

    edges_examined: int = 0
    samples_generated: int = 0
    entries_scanned: int = 0
    counter_updates: int = 0
    allreduce_calls: int = 0
    allreduce_elements: int = 0

    def merge(self, other: "WorkCounters") -> None:
        """Accumulate ``other`` into this ledger (used when combining
        per-rank meters into a run total)."""
        self.edges_examined += other.edges_examined
        self.samples_generated += other.samples_generated
        self.entries_scanned += other.entries_scanned
        self.counter_updates += other.counter_updates
        self.allreduce_calls += other.allreduce_calls
        self.allreduce_elements += other.allreduce_elements

    def as_dict(self) -> dict[str, int]:
        return {
            "edges_examined": self.edges_examined,
            "samples_generated": self.samples_generated,
            "entries_scanned": self.entries_scanned,
            "counter_updates": self.counter_updates,
            "allreduce_calls": self.allreduce_calls,
            "allreduce_elements": self.allreduce_elements,
        }
