"""Figure 1: activated nodes vs seed-set size at two accuracy levels.

The paper's motivating figure: the "state of the art" arc (eps = 0.5,
k up to 100) against the parallel implementation's arc (eps = 0.13,
k up to 200) — better accuracy *and* twice the seeds, showing more
activated nodes across the board.  The reproduction runs IMM at the
two accuracies over a k grid and measures the expected spread of each
seed set by forward Monte-Carlo simulation.
"""

from __future__ import annotations

from ..datasets import load
from ..diffusion import estimate_spread
from ..imm import imm
from .common import CI, ExperimentResult, Scale

__all__ = ["run"]

COLUMNS = ["k", "eps", "Activated (mean)", "Activated (stderr)", "theta"]


def run(scale: Scale = CI, seed: int = 0, dataset: str = "cit-HepTh") -> ExperimentResult:
    """Regenerate the Figure 1 series on ``dataset``.

    The loose accuracy runs the full k grid; the tight accuracy
    additionally doubles each k (the paper's red arc extends to 2x the
    seed budget) — so the two series are directly comparable to the
    blue/red arcs.
    """
    result = ExperimentResult(
        experiment="Figure 1 — activated nodes vs seed set size",
        scale=scale.name,
        columns=COLUMNS,
        notes=f"dataset={dataset}, IC model, {scale.fig1_trials} MC trials per point",
    )
    graph = load(dataset, "IC")
    eps_loose, eps_tight = scale.fig1_eps_pair
    for eps, k_multiplier in ((eps_loose, 1), (eps_tight, 2)):
        for k in scale.fig1_k_grid:
            kk = min(k * k_multiplier, graph.n)
            res = imm(graph, k=kk, eps=eps, seed=seed, theta_cap=scale.theta_cap)
            spread = estimate_spread(
                graph, res.seeds, "IC", trials=scale.fig1_trials, seed=seed + 1
            )
            result.rows.append(
                [kk, eps, round(spread.mean, 1), round(spread.stderr, 2), res.theta]
            )
    return result
