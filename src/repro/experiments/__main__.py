"""Run experiments from the command line.

Usage::

    python -m repro.experiments                 # everything, CI scale
    python -m repro.experiments table2 fig5     # a subset
    python -m repro.experiments --scale paper fig2
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL
from .common import CI, PAPER


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"which to run (default: all). Choices: {', '.join(ALL)}",
    )
    parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="parameter scale (default: ci; 'paper' is very slow in pure Python)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's rows as CSV into this directory",
    )
    args = parser.parse_args(argv)

    chosen = args.experiments or list(ALL)
    unknown = [name for name in chosen if name not in ALL]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    scale = PAPER if args.scale == "paper" else CI
    if args.csv_dir:
        import pathlib

        pathlib.Path(args.csv_dir).mkdir(parents=True, exist_ok=True)
    for name in chosen:
        start = time.perf_counter()
        result = ALL[name].run(scale=scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        if args.csv_dir:
            import pathlib

            result.to_csv(pathlib.Path(args.csv_dir) / f"{name}_{scale.name}.csv")
    return 0


if __name__ == "__main__":
    sys.exit(main())
