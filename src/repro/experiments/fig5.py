"""Figure 5: multithreaded strong scaling under the LT model."""

from __future__ import annotations

from .common import CI, ExperimentResult, Scale
from .mtscaling import mt_scaling

__all__ = ["run"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate the Figure 5 thread sweep (LT)."""
    return mt_scaling(
        "Figure 5 — multithreaded strong scaling (LT)",
        model="LT",
        scale=scale,
        seed=seed,
    )
