"""Table 3: the speedup ladder relative to the reference IMM.

Paper (com-Orkut / soc-LiveJournal1):

    IMM     (eps=0.5,  k=100)  1.00x
    IMMopt  (eps=0.5,  k=100)  3.10x / 4.16x
    IMMmt   (eps=0.5,  k=100)  21.2x / 16.0x      (20 threads, Puma)
    IMMdist (eps=0.13, k=200)  586x  / 298x       (1024/512 Edison nodes)

The headline property: the distributed row beats everything **while
doubling k and tightening eps** — more work, better accuracy, less
time.  The reproduction keeps the same structure: the dist row runs at
twice the k and a tighter eps than the serial rows.
"""

from __future__ import annotations

from ..datasets import load
from ..imm import imm
from ..mpi import imm_dist
from ..parallel import EDISON, PUMA, imm_mt
from ..perf import modeled_serial_breakdown
from .common import CI, ExperimentResult, Scale

__all__ = ["run"]

COLUMNS = ["Graph", "Variant", "eps", "k", "Time (s)", "Speedup"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 3 on the two largest stand-ins.

    Serial rows report wall-clock; the mt/dist rows report modeled
    seconds on the paper's machines (Puma node for mt, Edison cluster
    for dist) — the same convention the paper's own comparison uses
    across systems.
    """
    result = ExperimentResult(
        experiment="Table 3 — speedup ladder vs reference IMM",
        scale=scale.name,
        columns=COLUMNS,
        notes=(
            "dist rows run at double k and tighter eps, as in the paper; "
            "mt/dist times are modeled machine seconds"
        ),
    )
    dist_nodes = scale.edison_nodes[-1]
    for name in ("com-Orkut", "soc-LiveJournal1"):
        graph = load(name, "IC")
        ref = imm(
            graph,
            k=scale.k_serial,
            eps=scale.eps_serial,
            seed=seed,
            layout="hypergraph",
            theta_cap=scale.theta_cap,
        )
        opt = imm(
            graph,
            k=scale.k_serial,
            eps=scale.eps_serial,
            seed=seed,
            layout="sorted",
            theta_cap=scale.theta_cap,
        )
        mt = imm_mt(
            graph,
            k=scale.k_serial,
            eps=scale.eps_serial,
            num_threads=20,
            machine=PUMA,
            seed=seed,
            theta_cap=scale.theta_cap,
        )
        dist = imm_dist(
            graph,
            k=2 * scale.k_serial,
            eps=scale.eps_dist,
            num_nodes=dist_nodes,
            machine=EDISON,
            seed=seed,
            theta_cap=scale.theta_cap,
        )
        # All four rows in modeled machine seconds so they sit on one
        # axis: the serial rows come from the layout cost model (the
        # same pricing Table 2 uses).
        base = modeled_serial_breakdown(ref, PUMA).total
        t_opt_model = modeled_serial_breakdown(opt, PUMA).total
        rows = [
            ("IMM", scale.eps_serial, scale.k_serial, base),
            ("IMMopt", scale.eps_serial, scale.k_serial, t_opt_model),
            ("IMMmt", scale.eps_serial, scale.k_serial, mt.total_time),
            ("IMMdist", scale.eps_dist, 2 * scale.k_serial, dist.total_time),
        ]
        for variant, eps, k, seconds in rows:
            result.rows.append(
                [
                    name,
                    variant,
                    eps,
                    k,
                    round(seconds, 4),
                    round(base / seconds, 2),
                ]
            )
    return result
