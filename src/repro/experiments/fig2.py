"""Figure 2: θ as a function of the approximation factor and k.

Paper (cit-HepTh): θ grows nonlinearly as ε decreases (higher
precision) and as k grows, quickly exceeding n — the observation that
motivates both the compact RRR layout (memory) and the distributed
sampling (θ ≫ n means sample parallelism dominates).
"""

from __future__ import annotations

from ..datasets import load
from ..imm import estimate_theta
from .common import CI, ExperimentResult, Scale

__all__ = ["run"]

COLUMNS = ["eps", "k", "theta", "theta/n"]


def run(scale: Scale = CI, seed: int = 0, dataset: str = "cit-HepTh") -> ExperimentResult:
    """Regenerate the Figure 2 sweep (θ per (ε, k) grid point)."""
    result = ExperimentResult(
        experiment="Figure 2 — theta vs approximation factor and k",
        scale=scale.name,
        columns=COLUMNS,
        notes=f"dataset={dataset}, IC model",
    )
    graph = load(dataset, "IC")
    for eps in scale.fig2_eps_grid:
        for k in scale.fig2_k_grid:
            if k > graph.n:
                continue
            est = estimate_theta(
                graph, k, eps, "IC", seed=seed, theta_cap=scale.theta_cap
            )
            result.rows.append([eps, k, est.theta, round(est.theta / graph.n, 2)])
    return result
