"""Figure 8: distributed strong scaling on 64-1024 Edison nodes.

Paper: with hyper-threading the largest run uses 49,152 threads; IC
scales reasonably well to 1024 nodes, while LT flattens early — the
small LT RRR sets leave too little work per thread.  The per-node
memory on Edison is far smaller than Puma's, but at ≥64 nodes the
partitioned collection fits everywhere (no OOM gaps in the paper's
Figure 8 either).
"""

from __future__ import annotations

from ..parallel import EDISON
from .common import CI, ExperimentResult, Scale
from .distscaling import dist_scaling

__all__ = ["run"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate the Figure 8 sweep (Edison, IC and LT)."""
    return dist_scaling(
        "Figure 8 — distributed strong scaling (Edison, 64-1024 nodes)",
        machine=EDISON,
        node_counts=scale.edison_nodes,
        scale=scale,
        seed=seed,
        apply_oom_model=False,
    )
