"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(scale=CI, seed=0) -> ExperimentResult``
returning the rows/series the paper reports, plus a text rendering.
Two parameter scales exist:

* :data:`CI` — reduced parameters sized for a pure-Python single-core
  run (minutes for the full suite).  The *shapes* the paper reports —
  orderings, ratios, crossovers, saturations — are all expected to hold
  at this scale and are what EXPERIMENTS.md records.
* :data:`PAPER` — the paper's actual parameters (ε down to 0.13,
  k up to 200, 20 threads, 1024 nodes).  Provided for completeness;
  the sampling volume makes some of these configurations impractical
  without native code, exactly the gap the calibration note for this
  reproduction anticipated.

Run everything from the command line::

    python -m repro.experiments            # all experiments, CI scale
    python -m repro.experiments table2 fig5
"""

from .common import CI, PAPER, ExperimentResult, Scale
from . import bio as bio_experiment
from . import fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table2, table3

ALL = {
    "table2": table2,
    "table3": table3,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "bio": bio_experiment,
}

__all__ = ["CI", "PAPER", "Scale", "ExperimentResult", "ALL"]
