"""Shared experiment scaffolding: parameter scales and result records."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Scale", "CI", "PAPER", "ExperimentResult", "render_table"]


@dataclass(frozen=True)
class Scale:
    """One consistent set of experiment parameters.

    The attribute names mirror where the paper uses each value; the CI
    scale divides the sampling volume by roughly two orders of magnitude
    while keeping every comparison structurally identical.
    """

    name: str
    #: Table 2 / serial comparisons.
    k_serial: int
    eps_serial: float
    #: Figure 1 spread curves: seed set sizes and the two accuracies.
    fig1_k_grid: tuple[int, ...]
    fig1_eps_pair: tuple[float, float]
    fig1_trials: int
    #: Figure 2 θ sweeps.
    fig2_eps_grid: tuple[float, ...]
    fig2_k_grid: tuple[int, ...]
    #: Figures 3–4 phase breakdowns.
    fig34_eps_grid: tuple[float, ...]
    fig34_k_grid: tuple[int, ...]
    fig34_k_fixed: int
    fig34_eps_fixed: float
    #: Figures 5–6 multithreaded scaling.
    mt_threads: tuple[int, ...]
    k_mt: int
    eps_mt: float
    #: Figures 7–8 distributed scaling.
    puma_nodes: tuple[int, ...]
    edison_nodes: tuple[int, ...]
    k_dist: int
    eps_dist: float
    #: Datasets used by the heavyweight sweeps (Table 2 always uses all).
    sweep_datasets: tuple[str, ...]
    big_datasets: tuple[str, ...]
    #: Safety cap on θ (None = uncapped, the paper's regime).
    theta_cap: int | None
    #: Bio case study ranking size.
    bio_k: int


#: Reduced parameters for single-core pure-Python runs (EXPERIMENTS.md).
CI = Scale(
    name="ci",
    k_serial=20,
    eps_serial=0.5,
    fig1_k_grid=(5, 10, 20, 30, 40, 60, 80),
    fig1_eps_pair=(0.5, 0.25),
    fig1_trials=200,
    fig2_eps_grid=(0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6),
    fig2_k_grid=(10, 20, 40, 60, 80, 100),
    fig34_eps_grid=(0.3, 0.35, 0.4, 0.45, 0.5),
    fig34_k_grid=(10, 20, 30, 40, 50),
    fig34_k_fixed=20,
    fig34_eps_fixed=0.5,
    mt_threads=(2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    k_mt=20,
    eps_mt=0.5,
    puma_nodes=(1, 2, 4, 8, 16),
    edison_nodes=(64, 128, 256, 512, 1024),
    k_dist=20,
    eps_dist=0.3,
    sweep_datasets=("cit-HepTh", "com-Amazon", "soc-Pokec", "com-Orkut"),
    big_datasets=("com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"),
    theta_cap=60_000,
    bio_k=80,
)

#: The paper's parameters (Section 4).  Running these in pure Python is
#: possible but extremely slow for the tight-ε configurations — see the
#: substitution notes in DESIGN.md.
PAPER = Scale(
    name="paper",
    k_serial=50,
    eps_serial=0.5,
    fig1_k_grid=(10, 25, 50, 75, 100, 150, 200),
    fig1_eps_pair=(0.5, 0.13),
    fig1_trials=10_000,
    fig2_eps_grid=(0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6),
    fig2_k_grid=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    fig34_eps_grid=(0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5),
    fig34_k_grid=tuple(range(10, 101, 5)),
    fig34_k_fixed=50,
    fig34_eps_fixed=0.5,
    mt_threads=tuple(range(2, 21)),
    k_mt=100,
    eps_mt=0.5,
    puma_nodes=(2, 4, 6, 8, 10, 12, 14, 16),
    edison_nodes=(64, 128, 256, 512, 1024),
    k_dist=200,
    eps_dist=0.13,
    sweep_datasets=(
        "cit-HepTh",
        "soc-Epinions1",
        "com-Amazon",
        "com-DBLP",
        "com-YouTube",
        "soc-Pokec",
        "soc-LiveJournal1",
        "com-Orkut",
    ),
    big_datasets=("com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"),
    theta_cap=None,
    bio_k=200,
)


@dataclass
class ExperimentResult:
    """Rows plus metadata for one experiment run."""

    experiment: str
    scale: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        """Plain-text table (the same rows a figure would plot)."""
        out = [f"== {self.experiment} (scale={self.scale}) =="]
        if self.notes:
            out.append(self.notes)
        out.append(render_table(self.columns, self.rows))
        return "\n".join(out)

    def to_csv(self, path) -> None:
        """Write the rows as CSV (empty cell for the paper's ◦ marker),
        for plotting the figure from the regenerated data."""
        import csv

        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow(["" if v is None else v for v in row])


def _fmt(value) -> str:
    if value is None:
        return "◦"  # the paper's marker for unmeasurable entries
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(columns: list[str], rows: list[list]) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join([header, sep] + body)
