"""Figure 7: distributed strong scaling on up to 16 Puma nodes.

Paper: IC and LT both scale (up to ~8×); the soc-LiveJournal1 and
com-Orkut IC runs at small node counts were killed by the Linux OOM
killer — the aggregate RRR collection needs several fat nodes — which
appear as missing points.  The reproduction's memory model recreates
those gaps (marked ``◦``).
"""

from __future__ import annotations

from ..parallel import PUMA
from .common import CI, ExperimentResult, Scale
from .distscaling import dist_scaling

__all__ = ["run"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate the Figure 7 sweep (Puma, IC and LT, OOM model on)."""
    return dist_scaling(
        "Figure 7 — distributed strong scaling (Puma, 1-16 nodes)",
        machine=PUMA,
        node_counts=scale.puma_nodes,
        scale=scale,
        seed=seed,
        apply_oom_model=True,
    )
