"""Shared driver for the phase-breakdown figures (3 and 4).

Both figures run the 20-thread multithreaded IMM on every dataset and
decompose the modeled runtime into the four phases; Figure 3 sweeps ε
at fixed k, Figure 4 sweeps k at fixed ε.
"""

from __future__ import annotations

from ..datasets import load
from ..parallel import PUMA, imm_mt
from .common import CI, ExperimentResult, Scale

__all__ = ["phase_sweep"]

COLUMNS = [
    "Graph",
    "eps",
    "k",
    "EstimateTheta",
    "Sample",
    "SelectSeeds",
    "Other",
    "Total (s)",
]


def phase_sweep(
    experiment: str,
    vary: str,
    scale: Scale = CI,
    seed: int = 0,
    model: str = "IC",
) -> ExperimentResult:
    """Run the sweep with ``vary`` in ``{"eps", "k"}``.

    Returns one row per (dataset, grid point) holding the modeled
    per-phase seconds at 20 threads of Puma — the configuration of
    Figures 3 and 4.
    """
    if vary not in ("eps", "k"):
        raise ValueError(f"vary must be 'eps' or 'k', got {vary!r}")
    result = ExperimentResult(
        experiment=experiment,
        scale=scale.name,
        columns=COLUMNS,
        notes=f"{model} model, 20 threads (Puma), modeled seconds",
    )
    for name in scale.sweep_datasets:
        graph = load(name, model)
        if vary == "eps":
            grid = [(eps, scale.fig34_k_fixed) for eps in scale.fig34_eps_grid]
        else:
            grid = [(scale.fig34_eps_fixed, k) for k in scale.fig34_k_grid]
        for eps, k in grid:
            res = imm_mt(
                graph,
                k=k,
                eps=eps,
                model=model,
                num_threads=20,
                machine=PUMA,
                seed=seed,
                theta_cap=scale.theta_cap,
            )
            b = res.breakdown
            result.rows.append(
                [
                    name,
                    eps,
                    k,
                    round(b.estimate_theta, 4),
                    round(b.sample, 4),
                    round(b.select_seeds, 4),
                    round(b.other, 4),
                    round(b.total, 4),
                ]
            )
    return result
