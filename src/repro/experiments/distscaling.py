"""Shared driver for the distributed strong-scaling figures (7 and 8).

Executing the live SPMD runtime (:func:`repro.mpi.imm_dist`) once per
(dataset, model, node-count) would repeat the identical sampling work
for every node count — under per-sample RNG streams the algorithm's
output and total work are invariant in ``p``.  This driver therefore
runs **one metered serial execution** per (dataset, model) and *prices*
every node count from the meters:

* per-rank sampling work: the per-sample edge counts are assigned to
  ranks by the same strided partition ``j mod p`` the distributed
  implementation uses, giving the exact per-rank makespan;
* per-rank selection work: local RRR entries per rank (same partition);
* communication: ``(k+1)`` allreduces of the ``n`` counters plus one
  scalar per selection invocation, priced by the α–β model;
* memory: the per-rank RRR bytes under the partition, fed to the
  simulated OOM killer for Figure 7.

A unit test (``tests/test_experiments.py``) verifies this replay prices
a configuration identically (within rounding) to the live SPMD run.

The OOM boundary needs one calibration: the stand-ins are thousands of
times smaller than the SNAP originals, so absolute bytes cannot be
compared with 768 GB directly.  For the two graphs the paper reports
OOM kills on (soc-LiveJournal1, com-Orkut, IC model), the node memory
is scaled so that the *total* RRR collection exceeds it below
``OOM_BOUNDARY_NODES`` nodes — reproducing "the biggest inputs need
several nodes' aggregate memory", which is the figure's point.
"""

from __future__ import annotations

import numpy as np

from ..datasets import load
from ..diffusion import DiffusionModel
from ..imm.theta import estimate_theta
from ..mpi.costmodel import collective_seconds
from ..parallel.machine import MachineSpec
from ..sampling import BatchedRRRSampler, SortedRRRCollection, sample_batch
from .common import CI, ExperimentResult, Scale

__all__ = ["dist_scaling", "MeteredRun", "meter_run", "price_run", "OOM_BOUNDARY_NODES"]

COLUMNS = ["Graph", "Model", "Nodes", "Total (s)", "EstimateTheta", "Sample", "SelectSeeds", "Comm (s)"]

#: Node count below which the paper's two biggest IC configurations die
#: of OOM on Puma (the calibrated boundary; see module docstring).
OOM_BOUNDARY_NODES = 8

#: Datasets whose Figure 7 IC runs hit the OOM killer in the paper.
OOM_DATASETS = ("soc-LiveJournal1", "com-Orkut")


class MeteredRun:
    """Work meters of one full IMM execution, reusable for any p.

    Attributes
    ----------
    per_sample_edges:
        Edge count of every sample, indexed by global sample id.
    per_sample_entries:
        Vertex-list length of every sample (per-rank memory / selection
        work under any partition).
    round_theta:
        The θ_x targets of the estimation rounds (prefix sums of the
        sample index space: round r generated samples
        ``[round_theta[r-1], round_theta[r])``).
    theta, k, n:
        Final sample count and run shape.
    selections:
        Number of distributed-selection invocations (estimation rounds
        plus the final one), each costing ``k+1`` vector allreduces.
    """

    def __init__(
        self,
        per_sample_edges: np.ndarray,
        per_sample_entries: np.ndarray,
        round_theta: list[int],
        theta: int,
        k: int,
        n: int,
    ) -> None:
        self.per_sample_edges = per_sample_edges
        self.per_sample_entries = per_sample_entries
        self.round_theta = round_theta
        self.theta = theta
        self.k = k
        self.n = n
        self.selections = len(round_theta) + 1


def meter_run(
    graph, k: int, eps: float, model: str, seed: int, theta_cap: int | None
) -> MeteredRun:
    """Execute IMM once, keeping per-sample meters for later pricing."""
    model = DiffusionModel.parse(model)
    collection = SortedRRRCollection(graph.n)
    sampler = BatchedRRRSampler(graph, model)
    trace: list = []
    est = estimate_theta(
        graph,
        k,
        eps,
        model,
        seed,
        collection=collection,
        sampler=sampler,
        theta_cap=theta_cap,
        trace=trace,
    )
    final = sample_batch(graph, model, collection, est.theta, seed, sampler=sampler)
    edges_parts = [ev.per_sample_edges for kind, ev in trace if kind == "sample"]
    edges_parts.append(final.per_sample_edges)
    per_sample_edges = np.concatenate(edges_parts) if edges_parts else np.empty(0, np.int64)
    per_sample_entries = np.fromiter(
        (len(s) for s in collection), dtype=np.int64, count=len(collection)
    )
    round_theta = []
    running = 0
    for kind, ev in trace:
        if kind == "sample":
            running += ev.count
            round_theta.append(running)
    return MeteredRun(
        per_sample_edges=per_sample_edges,
        per_sample_entries=per_sample_entries,
        round_theta=round_theta,
        theta=len(collection),
        k=k,
        n=graph.n,
    )


def price_run(
    run: MeteredRun,
    machine: MachineSpec,
    num_nodes: int,
    threads_per_node: int | None = None,
    *,
    graph_bytes_value: int = 0,
    mem_per_node: int | None = None,
) -> dict:
    """Price a metered run for ``num_nodes`` ranks of ``machine``.

    Returns a dict with per-phase seconds, the communication total and
    the peak per-rank memory; ``oom=True`` when the memory model
    exceeds ``mem_per_node``.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if threads_per_node is None:
        threads_per_node = machine.threads_per_node
    eff = machine.effective_threads(threads_per_node)
    p = num_nodes
    rank_of_sample = (
        np.arange(len(run.per_sample_edges), dtype=np.int64) % p
        if len(run.per_sample_edges)
        else np.empty(0, np.int64)
    )

    def sample_makespan(lo: int, hi: int) -> float:
        if hi <= lo:
            return 0.0
        edges = np.bincount(
            rank_of_sample[lo:hi], weights=run.per_sample_edges[lo:hi], minlength=p
        )
        return float(edges.max()) * machine.t_edge / eff + threads_per_node * machine.thread_overhead

    def select_seconds(hi: int) -> tuple[float, float]:
        entries = np.bincount(
            rank_of_sample[:hi], weights=run.per_sample_entries[:hi], minlength=p
        )
        # Counting pass + expected purge work (every sample is scanned
        # once when counted and once when purged at coverage).
        local = 2.0 * float(entries.max()) * machine.t_update / eff
        argmax = run.k * (run.n / eff) * machine.t_update
        comm = (run.k + 1) * collective_seconds(machine, p, 8 * run.n)
        comm += collective_seconds(machine, p, 8)
        return local + argmax, comm

    est_seconds = 0.0
    comm_seconds = 0.0
    prev = 0
    for theta_x in run.round_theta:
        est_seconds += sample_makespan(prev, theta_x)
        local, comm = select_seconds(theta_x)
        est_seconds += local + comm
        comm_seconds += comm
        prev = theta_x
    sample_seconds = sample_makespan(prev, run.theta)
    sel_local, sel_comm = select_seconds(run.theta)
    comm_seconds += sel_comm

    entries_per_rank = np.bincount(
        rank_of_sample, weights=run.per_sample_entries, minlength=p
    )
    from ..sampling.collection import VECTOR_HEADER_BYTES, VERTEX_ID_BYTES

    samples_per_rank = np.bincount(rank_of_sample, minlength=p)
    rank_bytes = (
        graph_bytes_value
        + VECTOR_HEADER_BYTES
        + samples_per_rank.max(initial=0) * VECTOR_HEADER_BYTES
        + entries_per_rank.max(initial=0) * VERTEX_ID_BYTES
        + 2 * 8 * run.n
    )
    oom = mem_per_node is not None and rank_bytes > mem_per_node
    total = est_seconds + sample_seconds + sel_local + sel_comm
    return {
        "estimate_theta": est_seconds,
        "sample": sample_seconds,
        "select_seeds": sel_local + sel_comm,
        "comm": comm_seconds,
        "total": total,
        "rank_bytes": int(rank_bytes),
        "oom": bool(oom),
    }


def dist_scaling(
    experiment: str,
    machine: MachineSpec,
    node_counts: tuple[int, ...],
    scale: Scale = CI,
    seed: int = 0,
    *,
    apply_oom_model: bool = False,
) -> ExperimentResult:
    """Run the distributed scaling sweep for both models.

    ``apply_oom_model=True`` (Figure 7) activates the calibrated memory
    boundary on the paper's OOM datasets: the node-memory limit is set
    so that the IC collection needs at least :data:`OOM_BOUNDARY_NODES`
    nodes' aggregate memory — killed runs appear as ``◦`` rows.
    """
    result = ExperimentResult(
        experiment=experiment,
        scale=scale.name,
        columns=COLUMNS,
        notes=(
            f"{machine.name}, eps={scale.eps_dist}, k={scale.k_dist}; modeled seconds; "
            "◦ = killed by the simulated OOM model (Figure 7 gaps)"
            if apply_oom_model
            else f"{machine.name}, eps={scale.eps_dist}, k={scale.k_dist}; modeled seconds"
        ),
    )
    for name in scale.big_datasets:
        for model in ("IC", "LT"):
            graph = load(name, model)
            run = meter_run(
                graph, scale.k_dist, scale.eps_dist, model, seed, scale.theta_cap
            )
            mem_limit = None
            if apply_oom_model and name in OOM_DATASETS and model == "IC":
                # Total collection bytes must need >= OOM_BOUNDARY_NODES
                # nodes: limit = total_bytes / OOM_BOUNDARY_NODES, with a
                # 30 % headroom so the boundary count itself survives
                # (per-rank fixed overheads sit on top of the entries).
                total_bytes = int(run.per_sample_entries.sum()) * 4
                mem_limit = max(int(1.3 * total_bytes / OOM_BOUNDARY_NODES), 1)
            for p in node_counts:
                priced = price_run(
                    run,
                    machine,
                    p,
                    mem_per_node=mem_limit,
                )
                if priced["oom"]:
                    result.rows.append([name, model, p, None, None, None, None, None])
                else:
                    result.rows.append(
                        [
                            name,
                            model,
                            p,
                            round(priced["total"], 4),
                            round(priced["estimate_theta"], 4),
                            round(priced["sample"], 4),
                            round(priced["select_seeds"], 4),
                            round(priced["comm"], 4),
                        ]
                    )
    return result
