"""Figure 6: multithreaded strong scaling under the IC model."""

from __future__ import annotations

from .common import CI, ExperimentResult, Scale
from .mtscaling import mt_scaling

__all__ = ["run"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate the Figure 6 thread sweep (IC)."""
    return mt_scaling(
        "Figure 6 — multithreaded strong scaling (IC)",
        model="IC",
        scale=scale,
        seed=seed,
    )
