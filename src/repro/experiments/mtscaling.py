"""Shared driver for the multithreaded strong-scaling figures (5 and 6).

Sweeps the thread count on one Puma node (2–20 in the paper) for every
dataset under a fixed (ε, k).  Figure 5 uses the LT model, Figure 6
IC.  The paper's findings to reproduce: speedups improve with input
size (up to 12.55× vs the 2-thread run for com-Orkut under IC);
LT runs are 5–6× faster than IC in absolute time but scale worse
because the tiny LT RRR sets leave too little parallel work.
"""

from __future__ import annotations

from ..datasets import load
from ..parallel import PUMA, imm_mt
from .common import CI, ExperimentResult, Scale

__all__ = ["mt_scaling"]

COLUMNS = ["Graph", "Threads", "Total (s)", "Speedup vs 2t", "Sample (s)", "SelectSeeds (s)"]


def mt_scaling(
    experiment: str,
    model: str,
    scale: Scale = CI,
    seed: int = 0,
) -> ExperimentResult:
    """Run the thread sweep for ``model`` over the sweep datasets."""
    result = ExperimentResult(
        experiment=experiment,
        scale=scale.name,
        columns=COLUMNS,
        notes=(
            f"{model} model, eps={scale.eps_mt}, k={scale.k_mt}, one Puma node; "
            "modeled seconds; speedups relative to the 2-thread run as in the paper"
        ),
    )
    for name in scale.sweep_datasets:
        graph = load(name, model)
        base = None
        for threads in scale.mt_threads:
            res = imm_mt(
                graph,
                k=scale.k_mt,
                eps=scale.eps_mt,
                model=model,
                num_threads=threads,
                machine=PUMA,
                seed=seed,
                theta_cap=scale.theta_cap,
            )
            if base is None:
                base = res.total_time
            result.rows.append(
                [
                    name,
                    threads,
                    round(res.total_time, 4),
                    round(base / res.total_time, 2),
                    round(res.breakdown.sample, 4),
                    round(res.breakdown.select_seeds, 4),
                ]
            )
    return result
