"""Figure 4: phase breakdown as k varies (ε fixed, IC model).

Paper: runtime grows with k (θ grows and the greedy selection runs
more iterations), with the same Estimation/Sample dominance as
Figure 3.
"""

from __future__ import annotations

from .common import CI, ExperimentResult, Scale
from .phases import phase_sweep

__all__ = ["run"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate the Figure 4 sweep."""
    return phase_sweep(
        "Figure 4 — runtime vs k (phase breakdown)",
        vary="k",
        scale=scale,
        seed=seed,
        model="IC",
    )
