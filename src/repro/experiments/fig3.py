"""Figure 3: phase breakdown as ε varies (k fixed, IC model).

Paper: runtime rises steeply as ε decreases; Estimation and Sample
dominate everywhere, and the Sample fraction grows with input size.
"""

from __future__ import annotations

from .common import CI, ExperimentResult, Scale
from .phases import phase_sweep

__all__ = ["run"]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate the Figure 3 sweep."""
    return phase_sweep(
        "Figure 3 — runtime vs eps (phase breakdown)",
        vary="eps",
        scale=scale,
        seed=seed,
        model="IC",
    )
