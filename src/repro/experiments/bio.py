"""Section 5: the biology case-study comparison.

Paper findings to reproduce in shape (cancer network): degree enriches
the most pathways (614), IMM fewer (372), betweenness fewest (159) at
adjusted p < 0.05 — but IMM's *top* pathways are the cancer-relevant
ones while degree's and betweenness's are generic.  On the soil
network, 30 % of the top-degree nodes were also picked by IMM.
"""

from __future__ import annotations

from ..bio import run_case_study
from .common import CI, ExperimentResult, Scale

__all__ = ["run"]

COLUMNS = [
    "Dataset",
    "Ranking",
    "Enriched (adj p<0.05)",
    "Top-8 response fraction",
    "Overlap with degree",
]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Run both case studies and tabulate the three-way comparison."""
    result = ExperimentResult(
        experiment="Section 5 — biology case study",
        scale=scale.name,
        columns=COLUMNS,
        notes=(
            f"k={scale.bio_k} (tumor) — synthetic co-expression networks with "
            "planted response/housekeeping modules (see repro.bio)"
        ),
    )
    for name in ("tumor", "soil"):
        k = scale.bio_k if name == "tumor" else max(20, scale.bio_k // 2)
        cs = run_case_study(name, k=k, seed=seed, theta_cap=scale.theta_cap)
        counts = cs.counts()
        fracs = cs.top_response_fraction(8)
        overlap = cs.overlap_with_degree()
        for ranking in ("IMM", "degree", "betweenness"):
            result.rows.append(
                [
                    name,
                    ranking,
                    counts[ranking],
                    round(fracs[ranking], 3),
                    round(overlap, 2) if ranking == "IMM" else "",
                ]
            )
    return result
