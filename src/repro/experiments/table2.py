"""Table 2: serial IMM (hypergraph layout) vs IMM\\ :sup:`OPT` (sorted).

Paper: on every input, IMM\\ :sup:`OPT` is 2.4–4.2× faster and uses
18–58 % less memory, attributed to the one-directional compact RRR
representation.  The reproduction runs both layouts on every stand-in
(same seed ⇒ identical θ and seed sets) and reports

* wall-clock seconds of this Python run — which come out near parity,
  because vectorized NumPy execution hides the cache behaviour that
  separates the layouts in compiled code;
* **modeled seconds** from the machine cost model, which prices the
  hypergraph layout's real extra memory traffic (double incidence
  writes, random-access inverted-index walks) and reproduces the
  paper's speedup band — see :mod:`repro.perf.layoutmodel`;
* the modeled layout bytes (the paper's Massif column).
"""

from __future__ import annotations

import time

from ..datasets import load, names
from ..graph import graph_stats
from ..imm import imm
from ..parallel.machine import PUMA
from ..perf import modeled_serial_breakdown
from .common import CI, ExperimentResult, Scale

__all__ = ["run"]

COLUMNS = [
    "Graph",
    "Nodes",
    "Edges",
    "Avg.Deg",
    "Max.Deg",
    "IMM wall (s)",
    "OPT wall (s)",
    "IMM model (s)",
    "OPT model (s)",
    "Speedup",
    "IMM (MB)",
    "OPT (MB)",
    "% savings",
]


def run(scale: Scale = CI, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 2 on the stand-in datasets.

    Both layouts consume the identical sample sequence, so the
    comparison isolates storage and selection costs, as the paper's
    did.  ``Speedup`` is the modeled-seconds ratio (see module
    docstring).
    """
    result = ExperimentResult(
        experiment="Table 2 — serial IMM vs IMMOPT",
        scale=scale.name,
        columns=COLUMNS,
        notes=(
            f"eps={scale.eps_serial}, k={scale.k_serial}, IC model; modeled "
            "seconds price the layouts' memory traffic on Puma constants; "
            "memory is the modeled RRR-layout footprint"
        ),
    )
    for name in names():
        graph = load(name, "IC")
        stats = graph_stats(graph)
        t0 = time.perf_counter()
        ref = imm(
            graph,
            k=scale.k_serial,
            eps=scale.eps_serial,
            model="IC",
            seed=seed,
            layout="hypergraph",
            theta_cap=scale.theta_cap,
        )
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        opt = imm(
            graph,
            k=scale.k_serial,
            eps=scale.eps_serial,
            model="IC",
            seed=seed,
            layout="sorted",
            theta_cap=scale.theta_cap,
        )
        t_opt = time.perf_counter() - t0
        model_ref = modeled_serial_breakdown(ref, PUMA).total
        model_opt = modeled_serial_breakdown(opt, PUMA).total
        mb_ref = ref.memory_bytes / 2**20
        mb_opt = opt.memory_bytes / 2**20
        result.rows.append(
            [
                name,
                stats.nodes,
                stats.edges,
                round(stats.avg_degree, 2),
                stats.max_degree,
                round(t_ref, 3),
                round(t_opt, 3),
                round(model_ref, 4),
                round(model_opt, 4),
                round(model_ref / model_opt, 2),
                round(mb_ref, 2),
                round(mb_opt, 2),
                round(100.0 * (1.0 - mb_opt / mb_ref), 2),
            ]
        )
    return result
