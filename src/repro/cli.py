"""``repro-imm``: the command-line front end.

Subcommands mirror the tool surface the paper's framework exposes:

* ``repro-imm datasets`` — list the registered stand-ins with their
  Table 2 metadata;
* ``repro-imm run`` — run a chosen IMM variant on a dataset or edge
  list, printing seeds, θ, phase breakdown and optional spread; with
  ``--supervise`` the process pool self-heals (``--spares``,
  ``--deadline``, ``--checkpoint-out``/``--resume-from``);
* ``repro-imm spread`` — Monte-Carlo spread of an explicit seed set;
* ``repro-imm sweep`` — IMM across several k values with one shared RRR
  collection (the "multiple k values" workflow of the paper's intro);
* ``repro-imm community`` — the community-decomposed extension;
* ``repro-imm dist`` — the distributed driver with fault injection
  (``--fault-plan``), recovery policies (``--policy``) and
  checkpoint/restart (``--checkpoint-out``/``--resume-from``);
* ``repro-imm experiment`` — same as ``python -m repro.experiments``;
* ``repro-imm validate`` — the cross-implementation equivalence oracle
  (``--quick``/``--full``, shardable via ``--shard i/m``) and its
  mutation-test mode (``--mutate``);
* ``repro-imm freeze`` — sample once and freeze a persistent RRR index
  (``--out DIR``) that later queries serve from without resampling;
* ``repro-imm query`` — influence queries against a frozen index:
  ``top_k`` (any ``--k``/``--eps``, bit-identical to a fresh run),
  ``--tighten``, ``--forced``/``--excluded`` what-ifs and ``--marginal``
  spread estimates.

Graphs come from the dataset registry (``--dataset``), SNAP edge lists
(``--edgelist``), METIS files (``--metis``) or MatrixMarket coordinate
files (``--mtx``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .community import community_imm
from .datasets import load, names, spec
from .diffusion import estimate_spread
from .graph import graph_stats, lt_normalize, read_edgelist, read_matrix_market, read_metis
from .imm import imm, imm_sweep
from .mpi import imm_dist
from .parallel import EDISON, LAPTOP, PUMA, imm_mt
from .perf import profile_run

_MACHINES = {"puma": PUMA, "edison": EDISON, "laptop": LAPTOP}


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load(args.dataset, args.model)
    if getattr(args, "metis", None):
        graph = read_metis(args.metis)
    elif getattr(args, "mtx", None):
        graph = read_matrix_market(args.mtx)
    else:
        graph = read_edgelist(args.edgelist)
    if args.model.upper() == "LT":
        graph = lt_normalize(graph)
    return graph


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':18s} {'paper n':>10s} {'paper m':>12s} {'standin n':>10s} {'standin m':>10s}")
    for name in names():
        s = spec(name)
        g = s.build()
        print(
            f"{name:18s} {s.paper_nodes:>10,d} {s.paper_edges:>12,d}"
            f" {g.n:>10,d} {g.m:>10,d}"
        )
    return 0


def _supervisor_opts(args: argparse.Namespace) -> dict | None:
    """Collect the supervision knobs of ``run`` into ``supervisor_opts``."""
    opts: dict = {}
    if args.spares is not None:
        opts["spares"] = args.spares
    if args.deadline is not None:
        opts["deadline"] = args.deadline
    if args.checkpoint_out:
        opts["checkpoint_dir"] = args.checkpoint_out
    if args.resume_from:
        opts["resume_from"] = args.resume_from
    if opts and not args.supervise:
        raise SystemExit(
            "--spares/--deadline/--checkpoint-out/--resume-from require --supervise"
        )
    return opts or None


def _cmd_run(args: argparse.Namespace) -> int:
    if args.supervise and args.variant != "serial":
        raise SystemExit(
            "--supervise applies to the serial variant (the real process-pool "
            "sampling path); the dist variant has its own --fault-plan/--policy "
            "resilience under `repro-imm dist`"
        )
    graph = _load_graph(args)
    stats = graph_stats(graph)
    print(f"graph: n={stats.nodes} m={stats.edges} avg_deg={stats.avg_degree:.2f}")

    def execute():
        if args.variant == "serial":
            return imm(
                graph,
                k=args.k,
                eps=args.eps,
                model=args.model,
                seed=args.seed,
                layout=args.layout,
                theta_cap=args.theta_cap,
                workers=args.workers,
                supervise=args.supervise,
                supervisor_opts=_supervisor_opts(args),
            )
        if args.variant == "mt":
            return imm_mt(
                graph,
                k=args.k,
                eps=args.eps,
                model=args.model,
                num_threads=args.threads,
                machine=_MACHINES[args.machine],
                seed=args.seed,
                theta_cap=args.theta_cap,
                real_parallel=args.workers > 1,
                workers=args.workers if args.workers > 1 else None,
            )
        return imm_dist(
            graph,
            k=args.k,
            eps=args.eps,
            model=args.model,
            num_nodes=args.nodes,
            machine=_MACHINES[args.machine],
            seed=args.seed,
            theta_cap=args.theta_cap,
        )

    if args.profile:
        result, report = profile_run(execute)
        print(report)
    else:
        result = execute()
    print(result.summary())
    if "time_report" in result.extra:
        for line in result.extra["time_report"].splitlines():
            print(f"  {line}")
    else:
        b = result.breakdown
        for phase, seconds in b.as_dict().items():
            print(f"  {phase:13s} {seconds:.4f}s")
    if result.extra.get("workers", 0) > 1 or result.extra.get("engine_workers", 0) > 1:
        w = result.extra.get("engine_workers") or result.extra["workers"]
        print(f"  (sampling + counting executed on a {w}-worker process pool)")
    eng = result.extra.get("engine")
    if eng and eng.get("blocks_landed"):
        print(
            f"  engine: blocks={eng['blocks_landed']}"
            f" arena_segments={eng['arena_segments']}"
            f" overflows={eng['arena_overflows']}"
            f" fused_merges={eng['fused_count_merges']}"
            f" ipc_bytes={eng['ipc_descriptor_bytes']}"
            f" chunk={eng['chunk_initial']}->{eng['chunk_final']}"
        )
    sup = result.extra.get("supervisor")
    if sup:
        print(
            f"  supervisor: crashes={sup['crashes_observed']}"
            f" rebuilds={sup['rebuilds']} replayed={sup['blocks_replayed']}"
            f" speculative_wins={sup['speculative_wins']}"
            f" resumed={sup['resumed_samples']}"
            f" count_fallbacks={sup['count_fallbacks']}"
        )
        if sup["checkpoint_bytes"]:
            print(
                f"  checkpoint: {sup['checkpoint_bytes']} bytes in"
                f" {sup['checkpoint_seconds']:.4f}s -> {args.checkpoint_out}"
            )
    if result.extra.get("degraded"):
        print(
            f"DEGRADED: deadline expired with theta_effective="
            f"{result.extra['theta_effective']} of theta={result.theta}"
            f" (epsilon_effective={result.extra['epsilon_effective']:.4f})"
        )
    print(f"seeds: {' '.join(map(str, result.seeds.tolist()))}")
    if args.evaluate:
        sp = estimate_spread(
            graph, result.seeds, args.model, trials=args.trials, seed=args.seed + 1
        )
        print(f"expected spread: {sp.mean:.1f} ± {sp.stderr:.2f} ({sp.trials} trials)")
    return 0


def _cmd_spread(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    seeds = np.asarray([int(s) for s in args.seeds.split(",")], dtype=np.int64)
    sp = estimate_spread(graph, seeds, args.model, trials=args.trials, seed=args.seed)
    print(f"expected spread of {len(seeds)} seeds: {sp.mean:.1f} ± {sp.stderr:.2f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    ks = [int(x) for x in args.ks.split(",")]
    results = imm_sweep(
        graph,
        ks,
        args.eps,
        model=args.model,
        seed=args.seed,
        theta_cap=args.theta_cap,
        workers=args.workers,
        supervise=args.supervise,
    )
    print(f"{'k':>5s} {'theta':>8s} {'samples':>8s} {'reused':>8s} {'est.spread':>11s}")
    for res in results:
        print(
            f"{res.k:>5d} {res.theta:>8d} {res.num_samples:>8d}"
            f" {res.extra['samples_reused']:>8d}"
            f" {res.coverage * graph.n:>11.1f}"
        )
    return 0


def _cmd_community(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    res = community_imm(
        graph, k=args.k, eps=args.eps, model=args.model, seed=args.seed,
        theta_cap=args.theta_cap,
    )
    print(f"communities used: {res.num_communities}")
    print(f"allocation: {res.allocation}")
    print(f"seeds: {' '.join(map(str, res.seeds.tolist()))}")
    if args.evaluate:
        sp = estimate_spread(
            graph, res.seeds, args.model, trials=args.trials, seed=args.seed + 1
        )
        print(f"expected spread: {sp.mean:.1f} ± {sp.stderr:.2f}")
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    try:
        i, m = (int(part) for part in text.split("/"))
    except ValueError:
        raise SystemExit(f"--shard expects i/m (e.g. 2/4), got {text!r}")
    return i, m


def _cmd_validate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .validate import (
        SMOKE_MUTANTS,
        full_config,
        quick_config,
        run_mutation_suite,
        run_oracle,
    )

    status = 0
    if args.mutate or args.mutate_smoke:
        names = SMOKE_MUTANTS if args.mutate_smoke else None
        scope = "smoke subset" if args.mutate_smoke else "every failure class"
        print(f"mutation suite: injecting one fault per class ({scope}) ...")
        results = run_mutation_suite(
            seed=1 if args.seed is None else args.seed, names=names
        )
        for res in results:
            print(f"  {res}")
        survivors = [res for res in results if not res.detected]
        if survivors:
            print(f"{len(survivors)} mutant(s) SURVIVED — the oracle has blind spots")
            status = 1
        else:
            print(f"all {len(results)} mutants killed")
        if not (args.quick or args.full):
            return status

    cfg = full_config() if args.full else quick_config()
    if args.dataset:
        cfg = replace(cfg, datasets=tuple(args.dataset))
    if args.seed is not None:
        cfg = replace(cfg, seed=args.seed)
    if args.faults:
        cfg = replace(cfg, check_faults=True)
    elif args.no_faults:
        cfg = replace(cfg, check_faults=False)
    shard = _parse_shard(args.shard) if args.shard else None
    mode = "full" if args.full else "quick"
    print(
        f"equivalence oracle ({mode}"
        + (f", shard {shard[0]}/{shard[1]}" if shard else "")
        + f"): {len(cfg.datasets)} dataset(s) x "
        f"{len(cfg.models)} model(s), theta_cap={cfg.theta_cap}"
    )
    report = run_oracle(cfg, progress=lambda line: print(f"  {line}"), shard=shard)
    print(report.summary())
    return 1 if (status or not report.ok) else 0


def _cmd_freeze(args: argparse.Namespace) -> int:
    from .serving import freeze_index

    graph = _load_graph(args)
    index, res = freeze_index(
        graph, args.k, args.eps, args.model, args.seed,
        theta_cap=args.theta_cap, out_dir=args.out,
        compress=args.compress,
    )
    try:
        mf = index.manifest
        if mf.get("layout") == "compressed":
            nbytes = mf["coded_bytes"] + mf["num_samples"] * 24
            flat_bytes = mf["entries"] * 4 + mf["num_samples"] * 16
            extra = (
                f", layout=compressed"
                f" ({nbytes / max(flat_bytes, 1):.2f}x of flat)"
            )
        else:
            nbytes = mf["entries"] * 4 + mf["num_samples"] * 16
            extra = ""
        print(
            f"frozen: {mf['num_samples']} samples, {mf['entries']} entries "
            f"({nbytes / 1e6:.2f} MB{extra}) -> {index.path}"
        )
        print(
            f"  theta={res.theta} rounds={res.estimation_rounds}"
            f" edges_examined={res.edges_examined}"
            f" sample_seconds={res.seconds:.4f}"
        )
        print(f"seeds: {' '.join(map(str, res.seeds.tolist()))}")
    finally:
        index.close()
    return 0


def _parse_ids(text: str | None) -> tuple[int, ...]:
    return tuple(int(x) for x in text.split(",")) if text else ()


def _cmd_query(args: argparse.Namespace) -> int:
    from .serving import FrozenRRRIndex, InfluenceQueryEngine

    graph = _load_graph(args) if (args.dataset or args.edgelist
                                  or args.metis or args.mtx) else None
    index = FrozenRRRIndex.open(args.index, graph=graph)
    try:
        engine = InfluenceQueryEngine(index, graph=graph, verify=False)
        mf = index.manifest
        print(
            f"index: {mf['num_samples']} samples, model={mf['model']}"
            f" seed={mf['seed']} frozen at k={mf['k']} eps={mf['eps']}"
        )
        if args.marginal:
            seed_set = np.asarray(_parse_ids(args.marginal), dtype=np.int64)
            mg = engine.marginal_gain(seed_set)
            print(
                f"spread({seed_set.tolist()}) = {mg.spread:.1f}"
                f" ({mg.covered_samples}/{mg.num_samples} samples covered)"
            )
            best = np.argsort(mg.gains)[::-1][: args.k or 10]
            print("top marginal gains:")
            for v in best:
                print(f"  +{int(v):8d}  {mg.gains[v]:10.1f}")
            return 0
        if args.forced or args.excluded:
            res = engine.what_if(
                args.k, forced=_parse_ids(args.forced),
                excluded=_parse_ids(args.excluded),
            )
        elif args.tighten is not None:
            res = engine.tighten(args.tighten, k=args.k)
        else:
            res = engine.top_k(args.k, args.eps)
        print(
            f"k={res.k} eps={res.epsilon:g} theta={res.theta}"
            f" samples_used={res.num_samples_used}"
            f" coverage={res.coverage:.4f} in {res.seconds:.4f}s"
        )
        if res.served_from_index:
            print("  served entirely from the frozen index (0 edges examined)")
        else:
            print(
                f"  extended the index: +{res.samples_added} samples"
                f" ({res.samples_reused} reused),"
                f" {res.edges_examined} edges examined"
            )
        print(f"seeds: {' '.join(map(str, res.seeds.tolist()))}")
    finally:
        index.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from .serving import (
        AdmissionRejected,
        ClusterRouter,
        ClusterUnavailable,
        FrozenRRRIndex,
        QueryDeadlineExceeded,
        ServingFrontend,
    )

    graph = _load_graph(args) if (args.dataset or args.edgelist
                                  or args.metis or args.mtx) else None
    index = FrozenRRRIndex.open(args.index)
    mf = dict(index.manifest)
    index.close()
    print(
        f"index: {mf['num_samples']} samples, model={mf['model']}"
        f" seed={mf['seed']} frozen at k={mf['k']} eps={mf['eps']}"
    )
    k = args.k if args.k is not None else int(mf["k"])
    # Synthetic mix: repeated top_k (exercises coalescing), an alternate
    # k, a what-if seat, and a marginal-gain scan, round-robin.
    kinds = ("top_k", "top_k", "alt_k", "what_if", "marginal")

    async def _one(fe: ServingFrontend, i: int, kind: str):
        t0 = time.perf_counter()
        try:
            if kind == "top_k":
                r = await fe.top_k(args.index, k, graph=graph)
            elif kind == "alt_k":
                r = await fe.top_k(args.index, max(1, k // 2), graph=graph)
            elif kind == "what_if":
                r = await fe.what_if(args.index, k, forced=(0,))
            else:
                r = await fe.marginal_gain(args.index, [0])
            out = (
                f"degraded({r.degraded_reason})"
                if getattr(r, "degraded", False) else "ok"
            )
        except AdmissionRejected as exc:
            out = f"shed(retry_after={exc.retry_after:.3f}s)"
        except QueryDeadlineExceeded:
            out = "deadline"
        except ClusterUnavailable as exc:
            out = f"unavailable(retry_after={exc.retry_after:.3f}s)"
        return i, kind, out, time.perf_counter() - t0

    async def _drive():
        if args.replicas > 1:
            fe = ClusterRouter(
                num_replicas=args.replicas,
                max_pending=args.max_pending,
                concurrency=args.concurrency,
                default_deadline=args.deadline,
                fault_plan=args.fault_plan,
                hedge_after=args.hedge_after,
            )
        else:
            fe = ServingFrontend(
                max_pending=args.max_pending,
                concurrency=args.concurrency,
                default_deadline=args.deadline,
                fault_plan=args.fault_plan,
            )
        try:
            rows = await asyncio.gather(
                *[
                    _one(fe, i, kinds[i % len(kinds)])
                    for i in range(args.requests)
                ]
            )
        finally:
            await fe.close()
        if isinstance(fe, ClusterRouter):
            # Aggregate the per-replica front-end ledgers for the shared
            # summary lines; the router's own ledger prints separately.
            agg: dict[str, int] = {}
            for f in fe.frontends():
                for key, val in f.stats.as_dict().items():
                    agg[key] = agg.get(key, 0) + val
            agg["peak_inflight"] = max(
                f.stats.peak_inflight for f in fe.frontends()
            )
            return rows, agg, fe.stats.as_dict()
        return rows, fe.stats.as_dict(), None

    rows, stats, cluster = asyncio.run(_drive())
    for i, kind, out, dt in rows:
        print(f"  q{i:03d} {kind:9s} {out:32s} {dt * 1e3:8.2f} ms")
    ok_lat = [
        dt for _, _, out, dt in rows
        if not out.startswith(("shed", "unavailable"))
    ]
    shed = sum(1 for _, _, out, _ in rows if out.startswith("shed"))
    degraded = sum(1 for _, _, out, _ in rows if out.startswith("degraded"))
    print(
        f"served {stats['completed']}/{args.requests}"
        f" (coalesced {stats['coalesced']}, degraded {degraded},"
        f" shed {shed}, deadline_shed {stats['deadline_shed']})"
    )
    if cluster is not None:
        print(
            f"cluster: {args.replicas} replicas,"
            f" routed={cluster['routed']} failovers={cluster['failovers']}"
            f" hedges={cluster['hedges']} hedge_wins={cluster['hedge_wins']}"
            f" degraded_local={cluster['degraded_local']}"
            f" unavailable={cluster['unavailable']}"
        )
    if ok_lat:
        print(
            f"latency p50={np.percentile(ok_lat, 50) * 1e3:.2f} ms"
            f" p99={np.percentile(ok_lat, 99) * 1e3:.2f} ms"
            f" peak_inflight={stats['peak_inflight']}"
        )
    if args.fault_plan:
        print(
            f"faults: republishes={stats['republishes']}"
            f" extension_failures={stats['extension_failures']}"
            f" breaker_trips={stats['breaker_trips']}"
        )
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    import json

    graph = _load_graph(args)
    resume = None
    if args.resume_from:
        with open(args.resume_from) as fh:
            payload = json.load(fh)
        # a sink file holds the whole checkpoint trail; resume from the last
        resume = payload[-1] if isinstance(payload, list) else payload
    sink: list | None = [] if args.checkpoint_out else None
    result = imm_dist(
        graph,
        k=args.k,
        eps=args.eps,
        model=args.model,
        num_nodes=args.nodes,
        machine=_MACHINES[args.machine],
        seed=args.seed,
        theta_cap=args.theta_cap,
        fault_plan=args.fault_plan,
        policy=args.policy,
        max_retries=args.max_retries,
        resume_from=resume,
        checkpoint_sink=sink,
    )
    print(result.summary())
    extra = result.extra
    print(f"policy: {extra['policy']}   alive ranks: {extra['alive_ranks']}")
    if extra.get("fault_plan"):
        print(f"fault plan: {extra['fault_plan']}")
    if extra["degraded"]:
        print(
            f"DEGRADED: theta_effective={extra['theta_effective']}"
            f" (lost {extra['lost_samples']} samples),"
            f" epsilon_effective={extra['epsilon_effective']:.4f}"
        )
    rec = extra.get("recovery")
    if rec:
        print(
            f"recovery: retries={rec['retries']} respawns={rec['respawns']}"
            f" shrinks={rec['shrinks']} replayed_calls={rec['replayed_calls']}"
            f" (+{extra['recovery_seconds']:.4f}s modeled)"
        )
    print(f"seeds: {' '.join(map(str, result.seeds.tolist()))}")
    if args.checkpoint_out:
        with open(args.checkpoint_out, "w") as fh:
            json.dump(sink, fh, indent=2)
        print(f"wrote {len(sink)} checkpoint(s) to {args.checkpoint_out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    forwarded = list(args.names)
    if args.scale != "ci":
        forwarded = ["--scale", args.scale] + forwarded
    return experiments_main(forwarded)


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", choices=names(), help="registered stand-in")
    src.add_argument("--edgelist", help="path to a SNAP-style edge list")
    src.add_argument("--metis", help="path to a METIS graph file")
    src.add_argument("--mtx", help="path to a MatrixMarket coordinate file")
    p.add_argument("--model", choices=("IC", "LT"), default="IC")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-imm",
        description="Fast and scalable influence maximization (CLUSTER 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ds = sub.add_parser("datasets", help="list registered datasets")
    p_ds.set_defaults(func=_cmd_datasets)

    p_run = sub.add_parser("run", help="run an IMM variant")
    _add_graph_args(p_run)
    p_run.add_argument("--k", type=int, default=20)
    p_run.add_argument("--eps", type=float, default=0.5)
    p_run.add_argument(
        "--variant", choices=("serial", "mt", "dist"), default="serial"
    )
    p_run.add_argument(
        "--layout", choices=("sorted", "compressed", "hypergraph"),
        default="sorted",
        help="RRR storage: 'sorted' (flat IMM-OPT buffers), 'compressed' "
        "(frequency-ranked delta+varint coding, selection off the coded "
        "stream), or 'hypergraph' (reference); seeds are bit-identical",
    )
    p_run.add_argument("--threads", type=int, default=20, help="mt threads")
    p_run.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for real multicore sampling (serial and mt "
        "variants; >1 turns the mt cost model's run into measured parallel "
        "execution, output stays bit-identical). Results land through a "
        "zero-copy shared-memory output arena with adaptive chunk sizing "
        "and fused in-worker counting by default",
    )
    p_run.add_argument("--nodes", type=int, default=8, help="dist nodes")
    p_run.add_argument("--machine", choices=tuple(_MACHINES), default="puma")
    p_run.add_argument("--theta-cap", type=int, default=None)
    p_run.add_argument(
        "--supervise", action="store_true",
        help="run the sampling pool under the self-healing supervisor "
        "(crash replay, spare workers, straggler speculation); serial "
        "variant only, output stays bit-identical",
    )
    p_run.add_argument(
        "--spares", type=int, default=None, metavar="N",
        help="pre-spawned idle spare pools promoted on worker crash "
        "(with --supervise; default 1)",
    )
    p_run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="overall run deadline; on expiry the run degrades gracefully "
        "to the landed samples and reports theta_effective/epsilon_effective "
        "(with --supervise)",
    )
    p_run.add_argument(
        "--checkpoint-out", default=None, metavar="DIR",
        help="spill landed sample blocks to a durable checkpoint under DIR "
        "(with --supervise)",
    )
    p_run.add_argument(
        "--resume-from", default=None, metavar="DIR",
        help="resume sampling from a checkpoint directory written by "
        "--checkpoint-out (with --supervise)",
    )
    p_run.add_argument("--evaluate", action="store_true", help="MC-evaluate the seeds")
    p_run.add_argument("--trials", type=int, default=500)
    p_run.add_argument("--profile", action="store_true", help="cProfile the run")
    p_run.set_defaults(func=_cmd_run)

    p_sp = sub.add_parser("spread", help="Monte-Carlo spread of a seed set")
    _add_graph_args(p_sp)
    p_sp.add_argument("--seeds", required=True, help="comma-separated vertex ids")
    p_sp.add_argument("--trials", type=int, default=1000)
    p_sp.set_defaults(func=_cmd_spread)

    p_sw = sub.add_parser(
        "sweep", help="IMM for several k values, sharing one RRR collection"
    )
    _add_graph_args(p_sw)
    p_sw.add_argument("--ks", required=True, help="comma-separated k values")
    p_sw.add_argument("--eps", type=float, default=0.5)
    p_sw.add_argument("--theta-cap", type=int, default=None)
    p_sw.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size shared across all sweep points",
    )
    p_sw.add_argument(
        "--supervise", action="store_true",
        help="run the shared pool under the self-healing supervisor",
    )
    p_sw.set_defaults(func=_cmd_sweep)

    p_co = sub.add_parser(
        "community", help="community-decomposed IMM (future-work extension)"
    )
    _add_graph_args(p_co)
    p_co.add_argument("--k", type=int, default=20)
    p_co.add_argument("--eps", type=float, default=0.5)
    p_co.add_argument("--theta-cap", type=int, default=None)
    p_co.add_argument("--evaluate", action="store_true")
    p_co.add_argument("--trials", type=int, default=500)
    p_co.set_defaults(func=_cmd_community)

    p_va = sub.add_parser(
        "validate",
        help="cross-implementation equivalence oracle + invariant checks",
    )
    mode = p_va.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="seconds-scale sweep (default; the CI/regress.py gate)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="every registry graph x every driver/layout/cohort/rank axis",
    )
    p_va.add_argument(
        "--mutate", action="store_true",
        help="inject deliberate faults and demand the oracle kills each "
        "(combinable with --quick/--full; alone it runs only the mutants)",
    )
    p_va.add_argument(
        "--mutate-smoke", action="store_true",
        help="like --mutate but only the cheap smoke subset (the tier-1 set)",
    )
    faults = p_va.add_mutually_exclusive_group()
    faults.add_argument(
        "--faults", action="store_true",
        help="force the fault-injection x recovery-policy axes on",
    )
    faults.add_argument(
        "--no-faults", action="store_true",
        help="skip the fault-injection axes (faster sweep)",
    )
    p_va.add_argument(
        "--shard", default=None, metavar="I/M",
        help="run the I-th of M interleaved subject slices (1-based), "
        "e.g. --shard 2/4; RNG laws run on shard 1 only",
    )
    p_va.add_argument(
        "--dataset", action="append", choices=names(),
        help="restrict the oracle to specific registry graphs (repeatable)",
    )
    p_va.add_argument("--seed", type=int, default=None, help="oracle master seed")
    p_va.set_defaults(func=_cmd_validate)

    p_fr = sub.add_parser(
        "freeze", help="sample once and freeze a persistent RRR query index"
    )
    _add_graph_args(p_fr)
    p_fr.add_argument("--k", type=int, default=20)
    p_fr.add_argument("--eps", type=float, default=0.5)
    p_fr.add_argument("--theta-cap", type=int, default=None)
    p_fr.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory to write the frozen index into",
    )
    p_fr.add_argument(
        "--compress", action="store_true",
        help="write the frequency-ranked delta+varint section instead of "
        "the flat incidence file; served answers stay bit-identical",
    )
    p_fr.set_defaults(func=_cmd_freeze)

    p_qu = sub.add_parser(
        "query", help="influence queries against a frozen index (no resampling)"
    )
    p_qu.add_argument(
        "--index", required=True, metavar="DIR",
        help="frozen index directory written by `repro-imm freeze`",
    )
    qsrc = p_qu.add_mutually_exclusive_group()
    qsrc.add_argument(
        "--dataset", choices=names(),
        help="attach the graph (fingerprint-verified; enables queries "
        "that must extend the index)",
    )
    qsrc.add_argument("--edgelist", help="path to a SNAP-style edge list")
    qsrc.add_argument("--metis", help="path to a METIS graph file")
    qsrc.add_argument("--mtx", help="path to a MatrixMarket coordinate file")
    p_qu.add_argument(
        "--model", choices=("IC", "LT"), default="IC",
        help="diffusion model for --edgelist/--metis/--mtx loading",
    )
    p_qu.add_argument("--k", type=int, default=None, help="default: frozen k")
    p_qu.add_argument(
        "--eps", type=float, default=None, help="default: frozen eps"
    )
    p_qu.add_argument(
        "--tighten", type=float, default=None, metavar="EPS",
        help="re-derive at a tighter eps, extending the index in place",
    )
    p_qu.add_argument(
        "--forced", default=None, metavar="IDS",
        help="comma-separated vertices seated first (what-if query)",
    )
    p_qu.add_argument(
        "--excluded", default=None, metavar="IDS",
        help="comma-separated vertices never picked (what-if query)",
    )
    p_qu.add_argument(
        "--marginal", default=None, metavar="IDS",
        help="estimate the spread of this seed set and per-vertex gains",
    )
    p_qu.set_defaults(func=_cmd_query)

    p_sv = sub.add_parser(
        "serve",
        help="drive a query batch through the async serving front end",
    )
    p_sv.add_argument(
        "--index", required=True, metavar="DIR",
        help="frozen index directory written by `repro-imm freeze`",
    )
    ssrc = p_sv.add_mutually_exclusive_group()
    ssrc.add_argument(
        "--dataset", choices=names(),
        help="attach the graph (enables extension past the frozen prefix)",
    )
    ssrc.add_argument("--edgelist", help="path to a SNAP-style edge list")
    ssrc.add_argument("--metis", help="path to a METIS graph file")
    ssrc.add_argument("--mtx", help="path to a MatrixMarket coordinate file")
    p_sv.add_argument(
        "--model", choices=("IC", "LT"), default="IC",
        help="diffusion model for --edgelist/--metis/--mtx loading",
    )
    p_sv.add_argument("--k", type=int, default=None, help="default: frozen k")
    p_sv.add_argument(
        "--requests", type=int, default=16,
        help="number of queries in the synthetic batch",
    )
    p_sv.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query deadline; late queries degrade or shed",
    )
    p_sv.add_argument("--max-pending", type=int, default=64)
    p_sv.add_argument("--concurrency", type=int, default=4)
    p_sv.add_argument(
        "--replicas", type=int, default=1,
        help="serve through a replicated cluster of this many front ends "
        "(health-checked routing, failover, hedged reads); 1 = single "
        "front end",
    )
    p_sv.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="cluster hedge delay override (default: adaptive EWMA p99)",
    )
    p_sv.add_argument(
        "--fault-plan", default=None,
        help="serving fault spec, e.g. 'slowquery:0x0.05;stale:@1;"
        "extendfail:@0x2' (slowquery:QxS, stale:@Q, extendfail:@NxK); "
        "with --replicas also replicacrash:R@Q, replicaslow:RxS, "
        "partition:R@Q[xD]",
    )
    p_sv.set_defaults(func=_cmd_serve)

    p_di = sub.add_parser(
        "dist",
        help="distributed IMM with fault injection, recovery and checkpointing",
    )
    _add_graph_args(p_di)
    p_di.add_argument("--k", type=int, default=20)
    p_di.add_argument("--eps", type=float, default=0.5)
    p_di.add_argument("--nodes", type=int, default=8)
    p_di.add_argument("--machine", choices=tuple(_MACHINES), default="puma")
    p_di.add_argument("--theta-cap", type=int, default=None)
    p_di.add_argument(
        "--fault-plan", default=None,
        help="fault spec, e.g. 'crash:1@3;straggler:0x4' "
        "(crash:R@N, crash:R@phase=NAME, oom:R@N, straggler:RxF, "
        "transient:@N[xK], corrupt:R@N)",
    )
    p_di.add_argument(
        "--policy", choices=("abort", "retry", "respawn", "shrink"),
        default="abort", help="recovery policy when a fault fires",
    )
    p_di.add_argument("--max-retries", type=int, default=3)
    p_di.add_argument(
        "--checkpoint-out", default=None, metavar="FILE",
        help="write the per-round checkpoint trail to FILE as JSON",
    )
    p_di.add_argument(
        "--resume-from", default=None, metavar="FILE",
        help="resume from a checkpoint file written by --checkpoint-out",
    )
    p_di.set_defaults(func=_cmd_dist)

    p_ex = sub.add_parser("experiment", help="regenerate tables/figures")
    p_ex.add_argument("names", nargs="*", default=[])
    p_ex.add_argument("--scale", choices=("ci", "paper"), default="ci")
    p_ex.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into `head` etc. closed early — exit quietly the
        # way well-behaved Unix tools do.
        import os

        os.close(sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
