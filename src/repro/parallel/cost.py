"""Cost model: converting work meters into simulated seconds.

One :class:`CostModel` instance binds a :class:`MachineSpec` and a
thread count and prices the three kinds of work the IMM phases perform:

* **Sampling** — per-thread makespan over measured per-sample edge
  counts (LPT schedule), at ``t_edge`` seconds per edge.
* **Counting/purging** — Algorithm 4's interval-partitioned counter
  updates: the slowest rank's updates at ``t_update`` plus its binary
  searches at ``t_search``.
* **Max-reductions** — each greedy iteration scans ``n / p`` counters
  per rank then combines partial maxima in a ``log2 p`` tree.

Every phase additionally pays the fork/join ``thread_overhead`` and an
Amdahl ``serial_fraction`` of its single-thread work — the two terms
that flatten the Figure 5/6 curves for small inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..imm.select import SelectionResult
from ..sampling.sampler import SampleBatch
from .machine import MachineSpec
from .metering import lpt_makespan

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Prices metered work for ``threads`` workers on ``machine``."""

    machine: MachineSpec
    threads: int

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("need at least one thread")

    # -- phase pricing -------------------------------------------------------

    def sample_seconds(self, batch: SampleBatch) -> float:
        """Simulated seconds for one parallel sampling batch."""
        m = self.machine
        eff = m.effective_threads(self.threads)
        serial_work = batch.edges_examined * m.t_edge
        if self.threads == 1:
            return serial_work + self._region_overhead()
        per_thread = lpt_makespan(
            batch.per_sample_edges.astype(np.float64) * m.t_edge,
            # Makespan over *physical* workers; SMT discount applied as a
            # throughput factor below.
            self.threads,
        )
        parallel = per_thread * (self.threads / eff)
        return (
            m.serial_fraction * serial_work
            + (1.0 - m.serial_fraction) * parallel
            + self._region_overhead()
        )

    def select_seconds(self, sel: SelectionResult, n: int, k: int) -> float:
        """Simulated seconds for one seed-selection invocation.

        Uses the per-rank meters produced with ``num_ranks ==
        self.threads``; when the meters were produced for a different
        rank count (e.g. a serial selection), the totals are re-priced
        under an even split — a safe approximation because counter work
        is near-uniform across vertex intervals.
        """
        m = self.machine
        eff = m.effective_threads(self.threads)
        if sel.num_ranks == self.threads:
            update_work = float(sel.per_rank_entries.max(initial=0)) * m.t_update
            search_work = float(sel.per_rank_searches.max(initial=0)) * m.t_search
        else:
            update_work = sel.counter_updates / self.threads * m.t_update
            search_work = float(sel.per_rank_searches.sum()) * m.t_search
        per_rank = (update_work + search_work) * (self.threads / eff)
        # Greedy max reduction: k rounds of (n/p scan + log2 p combine).
        argmax = k * (
            (n / eff) * m.t_update
            + np.log2(max(self.threads, 2)) * m.thread_overhead
        )
        serial_work = (
            sel.counter_updates * m.t_update
            + float(sel.per_rank_searches.max(initial=0)) * m.t_search
        )
        if self.threads == 1:
            return serial_work + k * n * m.t_update + self._region_overhead()
        return (
            m.serial_fraction * serial_work
            + (1.0 - m.serial_fraction) * per_rank
            + argmax
            + self._region_overhead()
        )

    def _region_overhead(self) -> float:
        """Fork/join cost of one parallel region."""
        return self.threads * self.machine.thread_overhead
