"""``imm_mt``: the multithreaded IMM of Section 3.1.

By default the implementation executes the identical sequential kernels
(so the selected seeds are bit-identical to :func:`repro.imm.imm` —
per-sample counter-based RNG streams make the samples independent of the
thread count) and charges *modeled* phase time from the per-rank work
meters through a :class:`~repro.parallel.cost.CostModel`.  See the
package docstring and DESIGN.md for why this substitution is faithful.

``real_parallel=True`` replaces the sequential execution with the
shared-memory process-pool engine
(:class:`~repro.sampling.parallel_engine.ParallelSamplingEngine`):
sampling and the selection counting pass actually run on ``workers``
cores, and the result carries the **measured** wall-clock breakdown next
to the cost model's prediction for the same run (both are reported; the
modeled figures remain what the paper's plots are reproduced from).  The
seeds, θ and all work meters are unchanged either way — that is the
engine's bit-identical contract, enforced by ``repro-imm validate``.

What the model reproduces from the paper:

* speedups grow with input size (Figures 5 and 6): big inputs are
  dominated by the embarrassingly parallel sampling, small inputs by
  the greedy selection's ``k`` max-reductions and fork/join overheads;
* LT runs are 5–6x cheaper than IC but scale worse (tiny RRR sets ⇒
  little parallel work per region).
"""

from __future__ import annotations

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..imm.result import IMMResult
from ..imm.select import select_seeds
from ..imm.theta import estimate_theta
from ..perf.counters import WorkCounters
from ..perf.timers import PhaseTimer, side_by_side
from ..sampling import (
    BatchedRRRSampler,
    ParallelSamplingEngine,
    SortedRRRCollection,
    sample_batch,
)
from .cost import CostModel
from .machine import PUMA, MachineSpec

__all__ = ["imm_mt"]


def imm_mt(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    num_threads: int = 2,
    machine: MachineSpec = PUMA,
    seed: int = 0,
    l: float = 1.0,
    *,
    theta_cap: int | None = None,
    real_parallel: bool = False,
    workers: int | None = None,
    start_method: str | None = None,
) -> IMMResult:
    """Run the multithreaded IMM and return modeled-time results.

    Parameters
    ----------
    graph, k, eps, model, seed, l, theta_cap:
        As in :func:`repro.imm.imm`.
    num_threads:
        OpenMP thread count being modeled (the paper sweeps 2–20 on one
        Puma node).  Must not exceed ``machine.threads_per_node``.
    machine:
        Hardware model supplying the cost constants.
    real_parallel:
        Execute sampling and the selection counting pass on a real
        process pool instead of sequential kernels.  The modeled
        breakdown (and every meter the model consumes) is unchanged —
        the engine is bit-identical — but ``extra["measured_breakdown"]``
        then reports genuinely parallel wall-clock, and
        ``extra["time_report"]`` renders the two side by side.
    workers:
        Pool size for ``real_parallel`` (defaults to ``num_threads``).
    start_method:
        Worker start method for ``real_parallel``
        (``fork``/``spawn``/``forkserver``; ``None`` = platform default).

    Returns
    -------
    :class:`IMMResult` with ``simulated=True``; ``breakdown`` holds
    modeled seconds, ``extra["measured_breakdown"]`` the real wall-clock
    of this reproduction run for reference.

    Raises
    ------
    ValueError
        If ``num_threads`` exceeds what one node of ``machine`` offers
        (the paper's shared-memory runs are single-node).
    """
    if num_threads < 1:
        raise ValueError("need at least one thread")
    if num_threads > machine.threads_per_node:
        raise ValueError(
            f"{machine.name} offers {machine.threads_per_node} threads per node,"
            f" requested {num_threads}"
        )
    model = DiffusionModel.parse(model)
    collection = SortedRRRCollection(graph.n)
    engine = None
    if real_parallel:
        engine = ParallelSamplingEngine(
            graph,
            model,
            workers=workers if workers is not None else num_threads,
            start_method=start_method,
        )
        sampler = engine
    elif workers is not None:
        raise ValueError("workers is only meaningful with real_parallel=True")
    else:
        sampler = BatchedRRRSampler(graph, model)
    counters = WorkCounters()
    cost = CostModel(machine=machine, threads=num_threads)

    wall = PhaseTimer()
    sim = PhaseTimer()

    try:
        trace: list = []
        with wall.phase("EstimateTheta"):
            est = estimate_theta(
                graph,
                k,
                eps,
                model,
                seed,
                l,
                collection=collection,
                sampler=sampler,
                counters=counters,
                theta_cap=theta_cap,
                trace=trace,
                num_ranks=num_threads,
            )
        for kind, event in trace:
            if kind == "sample":
                sim.charge("EstimateTheta", cost.sample_seconds(event))
            else:
                sim.charge("EstimateTheta", cost.select_seconds(event, graph.n, k))

        with wall.phase("Sample"):
            batch = sample_batch(
                graph, model, collection, est.theta, seed, sampler=sampler
            )
            counters.edges_examined += batch.edges_examined
            counters.samples_generated += batch.count
        sim.charge("Sample", cost.sample_seconds(batch))

        with wall.phase("SelectSeeds"):
            sel = select_seeds(
                collection, graph.n, k, num_ranks=num_threads, count_engine=engine
            )
            counters.entries_scanned += sel.entries_scanned
            counters.counter_updates += sel.counter_updates
        sim.charge("SelectSeeds", cost.select_seconds(sel, graph.n, k))
    finally:
        if engine is not None:
            engine.close()

    # "Other": the serial scaffolding around the parallel regions —
    # allocation of the counter arrays and per-run setup.
    sim.charge("Other", graph.n * machine.t_update + num_threads * machine.thread_overhead)

    return IMMResult(
        seeds=sel.seeds,
        k=k,
        epsilon=eps,
        model=model.value,
        layout="sorted",
        theta=est.theta,
        num_samples=len(collection),
        coverage=sel.coverage_fraction(len(collection)),
        lb=est.lb,
        breakdown=sim.breakdown(),
        counters=counters,
        memory_bytes=collection.nbytes_model(),
        simulated=True,
        ranks=num_threads,
        extra={
            "machine": machine.name,
            "measured_breakdown": wall.breakdown(),
            "estimation_rounds": est.rounds,
            "theta_capped": theta_cap is not None and est.theta >= theta_cap,
            "real_parallel": real_parallel,
            "engine_workers": (
                (workers if workers is not None else num_threads)
                if real_parallel
                else 0
            ),
            **({"engine": engine.stats.as_dict()} if engine is not None else {}),
            "time_report": side_by_side(
                wall.breakdown(),
                sim.breakdown(),
                measured_label="measured",
                modeled_label=f"modeled(p={num_threads})",
            ),
        },
    )
