"""Shared-memory parallel IMM (the paper's OpenMP implementation).

This environment offers a single CPU core and no OpenMP, so — per the
substitution record in DESIGN.md — the multithreaded variant executes
the *real* partitioned algorithm (identical kernels, identical seeds)
while charging **modeled** time from per-rank work meters and a
calibrated :class:`MachineSpec`.  The model captures exactly the effects
the paper discusses:

* sampling scales with the per-thread makespan of RRR-set generation
  (LPT assignment over measured per-sample edge counts);
* seed selection scales with the largest vertex-interval workload plus
  the per-sample binary searches (Algorithm 4's decomposition);
* small inputs stop scaling because the greedy selection and
  per-iteration max-reductions dominate (the Figure 5/6 observation);
* every phase keeps a small serial fraction, so speedups saturate.

The machine catalog (:data:`PUMA`, :data:`EDISON`, :data:`LAPTOP`)
encodes the two clusters of Section 4.
"""

from .cost import CostModel
from .machine import EDISON, LAPTOP, PUMA, MachineSpec
from .metering import lpt_makespan
from .partition import block_bounds, block_partition, owner_of
from .shared import imm_mt

__all__ = [
    "MachineSpec",
    "PUMA",
    "EDISON",
    "LAPTOP",
    "CostModel",
    "imm_mt",
    "block_partition",
    "block_bounds",
    "owner_of",
    "lpt_makespan",
]
