"""Block partitioning helpers (Algorithm 4's interval decomposition).

Both parallel variants partition work into contiguous blocks:

* seed selection assigns thread ``t`` the vertex interval
  ``[n*t/p, n*(t+1)/p)`` so counter updates need no synchronization;
* distributed sampling assigns rank ``r`` a contiguous block of the
  global sample indices ``[0, theta)``.

The formulas match the paper's pseudocode (integer division, so blocks
differ in size by at most one and exactly cover the range).
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_bounds", "block_partition", "owner_of"]


def block_bounds(total: int, num_ranks: int) -> np.ndarray:
    """Boundary array ``b`` with rank ``t`` owning ``[b[t], b[t+1])``.

    ``b[t] = total * t // num_ranks`` — the exact expression of
    Algorithm 4 (``vl = |V| * t / p``).
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    t = np.arange(num_ranks + 1, dtype=np.int64)
    return (total * t) // num_ranks


def block_partition(total: int, rank: int, num_ranks: int) -> tuple[int, int]:
    """The half-open range ``[lo, hi)`` owned by ``rank``."""
    if not 0 <= rank < num_ranks:
        raise ValueError(f"rank {rank} out of range for {num_ranks} ranks")
    return (total * rank) // num_ranks, (total * (rank + 1)) // num_ranks


def owner_of(index: int | np.ndarray, total: int, num_ranks: int):
    """Rank owning ``index`` under the block partition (scalar or array).

    Inverse of :func:`block_partition`: computed by searching the
    boundary array, so it is exact even when blocks are uneven.
    """
    bounds = block_bounds(total, num_ranks)
    result = np.searchsorted(bounds, index, side="right") - 1
    if np.isscalar(index) or np.ndim(index) == 0:
        idx = int(index)
        if not 0 <= idx < total:
            raise ValueError(f"index {idx} out of range [0, {total})")
        return int(result)
    arr = np.asarray(index)
    if len(arr) and (arr.min() < 0 or arr.max() >= total):
        raise ValueError("index out of range")
    return result
