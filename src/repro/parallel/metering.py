"""Makespan computation for metered work items.

The sampling phase of the multithreaded IMM is an OpenMP
``parallel for`` over RRR-set generations with dynamic scheduling.  Its
completion time is the makespan of assigning the measured per-sample
costs to ``p`` identical workers.  :func:`lpt_makespan` computes the
Longest-Processing-Time assignment — a 4/3-approximation of the optimum
and an excellent stand-in for a dynamic OpenMP schedule, which greedily
hands the next chunk to the first idle thread in the same way.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["lpt_makespan"]


def lpt_makespan(costs: np.ndarray, num_workers: int) -> float:
    """Makespan of LPT-scheduling ``costs`` onto ``num_workers`` workers.

    Parameters
    ----------
    costs:
        Non-negative per-item costs (any real unit).
    num_workers:
        Number of identical workers (>= 1).

    Returns
    -------
    The maximum per-worker load.  For the degenerate cases: 0.0 for an
    empty cost list; the serial sum when ``num_workers == 1``.

    Notes
    -----
    Sorting dominates at O(N log N); the heap-based assignment is
    O(N log p).  For the very large sample counts the estimator can
    produce, an exact LPT over millions of items would waste benchmark
    time for no modeling benefit, so above a size threshold the
    assignment switches to the tight analytic bound
    ``max(mean_load, max_item)`` — which LPT approaches from above as
    N/p grows.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if len(costs) == 0:
        return 0.0
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    total = float(costs.sum())
    biggest = float(costs.max())
    if num_workers == 1:
        return total
    lower_bound = max(total / num_workers, biggest)
    if len(costs) > 65536 or len(costs) >= 16 * num_workers:
        # Analytic regime: dynamic scheduling packs within ~max_item of
        # the mean load; report the bound itself (see docstring).
        return lower_bound
    loads = [0.0] * num_workers
    heapq.heapify(loads)
    for c in sorted(costs.tolist(), reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + c)
    return max(loads)
