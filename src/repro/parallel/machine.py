"""Machine models for the two clusters of the paper's evaluation.

Section 4, experimental setup:

* **Puma** — two 10-core Intel Xeon E5-2680 v2 at 2.8 GHz per node
  (hyper-threading disabled), 768 GB per node, InfiniBand FDR 4x.
* **Edison** (NERSC) — two 12-core Ivy Bridge at 2.4 GHz per node,
  hyper-threading available, 64 GB per node, Cray Aries interconnect
  with Dragonfly topology.

The per-operation costs below are calibrated constants, not
measurements: their absolute scale sets "simulated seconds" and their
*ratios* (edge traversal vs counter update vs network latency) determine
every scaling shape the experiments reproduce.  Edge traversal cost is
of the order of a DRAM-latency-bound pointer chase (the sampling kernel
is memory-bound, Section 3.2); counter updates stream contiguously and
are ~an order of magnitude cheaper; Aries has lower latency and higher
bandwidth than the FDR fabric, but Edison nodes have far less memory —
which is why Figure 7's large-graph low-node-count runs die of OOM on
neither cluster's fat nodes but Figure 8 can run 1024 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "PUMA", "EDISON", "LAPTOP"]

_GB = 1024**3


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters consumed by the cost and memory models.

    Attributes
    ----------
    name:
        Display name (appears in experiment reports).
    cores_per_node:
        Physical cores per node.
    smt:
        Hardware threads per core usable by the runs (1 = HT off, as on
        Puma; 2 on Edison).
    mem_per_node:
        Bytes of DRAM per node; exceeded ⇒ the simulated OOM killer
        terminates the run (Figure 7's missing points).
    t_edge:
        Seconds per in-edge examined during RRR generation (memory-
        latency bound).
    t_update:
        Seconds per vertex-counter update during seed selection
        (streaming, cache-friendly in the sorted layout).
    t_search:
        Seconds per binary-search probe step.
    alpha:
        Network latency per collective hop (seconds).
    beta:
        Seconds per byte per hop of collective payload.
    thread_overhead:
        Fixed seconds per spawned thread per parallel region (fork/join
        cost; what stops small inputs from scaling).
    serial_fraction:
        Fraction of each phase's single-thread work that does not
        parallelize (Amdahl term: per-round bookkeeping, allocation).
    smt_efficiency:
        Throughput factor of the second hardware thread (an SMT sibling
        adds ~30 % rather than doubling).
    disk_alpha:
        Seconds of fixed latency per durable (fsync'd) checkpoint write.
    disk_beta:
        Seconds per byte of checkpoint payload streamed to stable
        storage (the inverse of the node's effective write bandwidth).
    """

    name: str
    cores_per_node: int
    smt: int
    mem_per_node: int
    t_edge: float
    t_update: float
    t_search: float
    alpha: float
    beta: float
    thread_overhead: float = 5.0e-6
    serial_fraction: float = 0.015
    smt_efficiency: float = 0.3
    disk_alpha: float = 5.0e-4  # one fsync'd write on a parallel FS
    disk_beta: float = 5.0e-10  # ~2 GB/s effective streaming write

    def __post_init__(self) -> None:
        if self.cores_per_node < 1 or self.smt < 1:
            raise ValueError("core and SMT counts must be positive")
        if min(self.t_edge, self.t_update, self.t_search, self.alpha, self.beta,
               self.disk_alpha, self.disk_beta) < 0:
            raise ValueError("cost constants must be non-negative")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial fraction must be in [0, 1)")

    @property
    def threads_per_node(self) -> int:
        """Maximum schedulable threads per node."""
        return self.cores_per_node * self.smt

    def effective_threads(self, threads: int) -> float:
        """Throughput-equivalent thread count, discounting SMT siblings.

        The first ``cores_per_node`` threads contribute 1.0 each; any
        further (hyper-)threads contribute :attr:`smt_efficiency`.
        """
        if threads < 1:
            raise ValueError("need at least one thread")
        physical = min(threads, self.cores_per_node)
        extra = max(0, threads - self.cores_per_node)
        return physical + self.smt_efficiency * extra


#: Puma: big-memory cluster, HT disabled (Section 4 setup).
PUMA = MachineSpec(
    name="Puma",
    cores_per_node=20,
    smt=1,
    mem_per_node=768 * _GB,
    t_edge=5.0e-8,
    t_update=6.0e-9,
    t_search=8.0e-9,
    alpha=2.0e-6,
    beta=1.8e-10,  # ~5.5 GB/s effective per hop (FDR 4x with MPI overheads)
)

#: Edison: NERSC Cray XC30 — less memory, HT on, faster interconnect,
#: slightly slower cores (2.4 vs 2.8 GHz).
EDISON = MachineSpec(
    name="Edison",
    cores_per_node=24,
    smt=2,
    mem_per_node=64 * _GB,
    t_edge=5.8e-8,
    t_update=7.0e-9,
    t_search=9.3e-9,
    alpha=1.1e-6,
    beta=1.0e-10,  # Aries: ~10 GB/s effective per hop
)

#: A workstation-scale reference machine for examples and tests.
LAPTOP = MachineSpec(
    name="Laptop",
    cores_per_node=8,
    smt=2,
    mem_per_node=16 * _GB,
    t_edge=4.0e-8,
    t_update=5.0e-9,
    t_search=7.0e-9,
    alpha=5.0e-7,
    beta=5.0e-11,
)
