"""Builders converting edge lists into :class:`~repro.graph.CSRGraph`.

The builder sorts each vertex's neighbor list by id.  That ordering is
load-bearing downstream: ``has_edge`` binary-searches it, and the IMMOPT
RRR-set layout relies on sorted vertex lists for the interval binary
searches of Algorithm 4 (see :mod:`repro.sampling.collection`).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .csr import CSRGraph

__all__ = ["from_edges", "from_edge_list"]


def _csr_from_arrays(
    n: int, src: np.ndarray, dst: np.ndarray, prob: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bucket edges by ``src`` into CSR arrays, neighbors sorted by id."""
    order = np.lexsort((dst, src))
    src, dst, prob = src[order], dst[order], prob[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    indptr = np.cumsum(indptr)
    return indptr, dst.astype(np.int32), prob.astype(np.float64)


def from_edges(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    prob: np.ndarray | float | None = None,
    *,
    dedup: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel edge arrays.

    Parameters
    ----------
    n:
        Number of vertices; all endpoints must be in ``[0, n)``.
    src, dst:
        Integer arrays of equal length giving the directed edges.
    prob:
        Per-edge activation probability array, a scalar applied to all
        edges, or ``None`` (defaults to 0.1, the constant used by Tang et
        al.'s experiments; the paper's own experiments re-weight with
        :func:`repro.graph.weights.uniform_random_weights`).
    dedup:
        Drop duplicate ``(src, dst)`` pairs, keeping the first occurrence.
        Self-loops are always dropped — they carry no influence.

    Raises
    ------
    ValueError
        On ragged inputs, endpoints out of range, or probabilities outside
        ``[0, 1]``.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src and dst must be equal-length 1-D arrays")
    if prob is None:
        prob = np.full(len(src), 0.1, dtype=np.float64)
    elif np.isscalar(prob):
        prob = np.full(len(src), float(prob), dtype=np.float64)
    else:
        prob = np.asarray(prob, dtype=np.float64)
        if prob.shape != src.shape:
            raise ValueError("prob must match src/dst length")
    if len(src) > 0:
        if src.min(initial=0) < 0 or dst.min(initial=0) < 0:
            raise ValueError("edge endpoints must be non-negative")
        if src.max(initial=-1) >= n or dst.max(initial=-1) >= n:
            raise ValueError(f"edge endpoint out of range for n={n}")
        if prob.min(initial=0.0) < 0.0 or prob.max(initial=0.0) > 1.0:
            raise ValueError("edge probabilities must lie in [0, 1]")

    keep = src != dst
    src, dst, prob = src[keep], dst[keep], prob[keep]
    if dedup and len(src) > 0:
        key = src * n + dst
        _, first = np.unique(key, return_index=True)
        first.sort()
        src, dst, prob = src[first], dst[first], prob[first]

    out_indptr, out_indices, out_probs = _csr_from_arrays(n, src, dst, prob)
    in_indptr, in_indices, in_probs = _csr_from_arrays(n, dst, src, prob)
    return CSRGraph(
        n, out_indptr, out_indices, out_probs, in_indptr, in_indices, in_probs
    )


def from_edge_list(
    n: int,
    edges: Iterable[tuple[int, int] | tuple[int, int, float]],
    default_prob: float = 0.1,
    *,
    dedup: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an iterable of ``(u, v)`` or
    ``(u, v, p)`` tuples (convenience wrapper over :func:`from_edges`)."""
    srcs: list[int] = []
    dsts: list[int] = []
    probs: list[float] = []
    for edge in edges:
        if len(edge) == 2:
            u, v = edge  # type: ignore[misc]
            p = default_prob
        elif len(edge) == 3:
            u, v, p = edge  # type: ignore[misc]
        else:
            raise ValueError(f"edge tuples must have 2 or 3 fields, got {edge!r}")
        srcs.append(int(u))
        dsts.append(int(v))
        probs.append(float(p))
    return from_edges(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(probs, dtype=np.float64),
        dedup=dedup,
    )
