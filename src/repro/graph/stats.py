"""Summary statistics mirroring the dataset columns of Table 2.

Table 2 describes each input by vertex count, edge count, average degree
and maximum degree; :func:`graph_stats` computes the same columns (plus a
degree-skew indicator used when matching synthetic stand-ins to the SNAP
originals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """The Table 2 dataset columns for one graph."""

    nodes: int
    edges: int
    avg_degree: float
    max_degree: int
    #: Ratio max/avg out-degree — a cheap heavy-tail indicator used to
    #: check that stand-in graphs reproduce the skew of their originals.
    degree_skew: float

    def row(self) -> tuple:
        """The values in Table 2 column order."""
        return (self.nodes, self.edges, self.avg_degree, self.max_degree)


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``.

    Average degree follows the paper's convention ``m / n`` (out-degree
    average over a directed graph); maximum degree is the maximum
    out-degree.
    """
    if graph.n == 0:
        return GraphStats(0, 0, 0.0, 0, 0.0)
    out_deg = np.diff(graph.out_indptr)
    avg = graph.m / graph.n
    mx = int(out_deg.max(initial=0))
    skew = float(mx / avg) if avg > 0 else 0.0
    return GraphStats(graph.n, graph.m, float(avg), mx, skew)
