"""Induced subgraphs (substrate for the community-based extension).

The community-decomposition extension (the paper's future-work item on
exploiting community structure) runs IMM independently inside each
community, which requires extracting vertex-induced subgraphs with a
mapping back to the original ids.
"""

from __future__ import annotations

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = ["induced_subgraph"]


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Extract the subgraph induced by ``vertices``.

    Parameters
    ----------
    graph:
        The host graph.
    vertices:
        Vertex ids to keep (duplicates are collapsed; order is not
        significant — the result is numbered by ascending original id).

    Returns
    -------
    ``(subgraph, mapping)`` where ``mapping[i]`` is the original id of
    the subgraph's vertex ``i``.  Edge probabilities are carried over.

    Raises
    ------
    ValueError
        If ``vertices`` is empty or contains out-of-range ids.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if len(vertices) == 0:
        raise ValueError("an induced subgraph needs at least one vertex")
    if vertices[0] < 0 or vertices[-1] >= graph.n:
        raise ValueError("vertex id out of range")
    keep = np.zeros(graph.n, dtype=bool)
    keep[vertices] = True
    new_id = np.full(graph.n, -1, dtype=np.int64)
    new_id[vertices] = np.arange(len(vertices))

    src_of_edge = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.out_indptr)
    )
    dst_of_edge = graph.out_indices.astype(np.int64)
    mask = keep[src_of_edge] & keep[dst_of_edge]
    return (
        from_edges(
            len(vertices),
            new_id[src_of_edge[mask]],
            new_id[dst_of_edge[mask]],
            graph.out_probs[mask],
            dedup=False,
        ),
        vertices,
    )
