"""Edge-probability schemes from the paper's experimental setup.

Section 4 of the paper: *"the edge weights for probabilistic BFS are
generated uniformly at random in the range [0, 1]"* for the IC model,
while *"for the linear threshold (LT) diffusion model, the weights are
readjusted such that the sum of the probabilities of traversing one of
the neighboring edges and of not traversing any of them, is one"*.

This module provides those two schemes plus the two standard alternatives
used by prior work and by our baselines:

* :func:`constant_weights` — the fixed ``p = 0.1`` of Tang et al. (the
  paper notes its runtimes differ from [5] for exactly this reason);
* :func:`weighted_cascade` — ``p(u, v) = 1 / indegree(v)`` (Kempe et
  al.'s weighted-cascade model), which is already LT-normalized.
"""

from __future__ import annotations

import numpy as np

from ..rng import SplitMix64
from .csr import CSRGraph

__all__ = [
    "uniform_random_weights",
    "constant_weights",
    "weighted_cascade",
    "lt_normalize",
]


def _scatter_out_probs(graph: CSRGraph, in_probs: np.ndarray) -> np.ndarray:
    """Derive the out-CSR probability array from per-in-edge values.

    Weight schemes that operate per destination vertex (LT normalization,
    weighted cascade) naturally produce probabilities in in-CSR order;
    this helper produces the matching out-CSR array so that both
    directions stay consistent.
    """
    n = graph.n
    # Reconstruct (src, dst) for the in-CSR ordering, then map each in-edge
    # to its position in the out-CSR via lexicographic ranking: out-CSR is
    # sorted by (src, dst) and in-CSR by (dst, src); both orders are unique
    # per edge because the builder deduplicates.
    dst_of_in = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.in_indptr))
    src_of_in = graph.in_indices.astype(np.int64)
    # Position of each in-edge in (src, dst) sorted order == out-CSR slot.
    order = np.lexsort((dst_of_in, src_of_in))
    out_probs = np.empty(graph.m, dtype=np.float64)
    out_probs[:] = in_probs[order]
    return out_probs


def uniform_random_weights(graph: CSRGraph, seed: int = 0, scale: float = 1.0) -> CSRGraph:
    """Assign i.i.d. ``U[0, scale)`` activation probabilities (paper setup, IC).

    The paper draws weights uniformly from ``[0, 1]``.  ``scale`` shrinks
    the range: the dataset stand-ins use it to keep the reverse-BFS
    branching factor (``avg_in_degree * scale / 2``) near the paper's
    *relative* workload regime while staying tractable in pure Python —
    see the substitution table in DESIGN.md.

    Probabilities are drawn per edge keyed on the canonical out-CSR edge
    slot, so the assignment is deterministic in ``seed`` and identical
    across ranks that each hold a full graph replica.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rng = SplitMix64(seed).split(0xED6E)
    out_probs = rng.random_block(graph.m) * scale
    # Mirror into in-CSR order.  ``order[r]`` is the in-CSR slot of the
    # edge ranked ``r`` in (src, dst) lexicographic order, which is by
    # construction that edge's out-CSR slot — so scatter, don't gather.
    n = graph.n
    dst_of_in = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.in_indptr))
    src_of_in = graph.in_indices.astype(np.int64)
    order = np.lexsort((dst_of_in, src_of_in))  # out-slot r -> in-slot order[r]
    in_probs = np.empty(graph.m, dtype=np.float64)
    in_probs[order] = out_probs
    return graph.with_probs(out_probs, in_probs)


def constant_weights(graph: CSRGraph, p: float = 0.1) -> CSRGraph:
    """Assign the same probability ``p`` to every edge (Tang et al. setup)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    out_probs = np.full(graph.m, p, dtype=np.float64)
    in_probs = np.full(graph.m, p, dtype=np.float64)
    return graph.with_probs(out_probs, in_probs)


def weighted_cascade(graph: CSRGraph) -> CSRGraph:
    """Assign ``p(u, v) = 1 / indegree(v)`` (weighted-cascade model).

    The in-weights of every vertex then sum to exactly one, so this scheme
    is a valid LT weighting as-is.
    """
    indeg = np.diff(graph.in_indptr).astype(np.float64)
    with np.errstate(divide="ignore"):
        per_vertex = np.where(indeg > 0, 1.0 / np.maximum(indeg, 1.0), 0.0)
    in_probs = np.repeat(per_vertex, np.diff(graph.in_indptr))
    out_probs = _scatter_out_probs(graph, in_probs)
    return graph.with_probs(out_probs, in_probs)


def lt_normalize(graph: CSRGraph) -> CSRGraph:
    """Renormalize in-edge weights for the Linear Threshold model.

    For each vertex ``v`` with in-weights ``w_1..w_d`` summing to ``W``:
    if ``W > 1`` the weights are scaled by ``1/W`` so that the probability
    of "one in-neighbor activates v" plus the probability of "none does"
    equals one — the paper's equivalent-model construction after Kempe et
    al.  Vertices with ``W <= 1`` are left untouched (the residual
    ``1 - W`` is the no-activation mass).
    """
    sums = np.zeros(graph.n, dtype=np.float64)
    dst_of_in = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.in_indptr))
    np.add.at(sums, dst_of_in, graph.in_probs)
    scale_per_vertex = np.where(sums > 1.0, 1.0 / np.maximum(sums, 1e-300), 1.0)
    in_probs = graph.in_probs * scale_per_vertex[dst_of_in]
    out_probs = _scatter_out_probs(graph, in_probs)
    return graph.with_probs(out_probs, in_probs)
