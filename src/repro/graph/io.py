"""Edge-list I/O in the SNAP text format.

The SNAP collection distributes graphs as whitespace-separated
``src dst`` lines with ``#`` comments.  We read and write that format,
plus an extended three-column ``src dst prob`` variant for weighted
graphs, and renumber arbitrary vertex ids to a dense ``[0, n)`` range the
way every IMM implementation (including Ripples) does on load.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = ["read_edgelist", "write_edgelist", "read_metis", "read_matrix_market"]


def read_edgelist(
    path: str | Path | io.TextIOBase,
    *,
    renumber: bool = True,
    default_prob: float = 0.1,
) -> CSRGraph:
    """Read a SNAP-style edge list into a :class:`CSRGraph`.

    Parameters
    ----------
    path:
        File path or open text stream.  Lines starting with ``#`` (or
        ``%``, for Matrix-Market-adjacent dumps) are comments; blank
        lines are skipped.  Each data line is ``src dst`` or
        ``src dst prob``.
    renumber:
        Map the vertex ids appearing in the file onto ``[0, n)`` in
        sorted order (SNAP ids are sparse).  With ``renumber=False`` the
        ids are used directly and ``n = max_id + 1``.
    default_prob:
        Probability assigned to two-column lines.

    Raises
    ------
    ValueError
        On malformed lines (wrong column count, non-numeric fields).
    """
    close = False
    if isinstance(path, (str, Path)):
        fh: io.TextIOBase = open(path, "r", encoding="utf-8")  # noqa: SIM115
        close = True
    else:
        fh = path
    srcs: list[int] = []
    dsts: list[int] = []
    probs: list[float] = []
    try:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped[0] in "#%":
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"line {lineno}: expected 2 or 3 columns, got {len(parts)}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                p = float(parts[2]) if len(parts) == 3 else default_prob
            except ValueError as exc:
                raise ValueError(f"line {lineno}: non-numeric field") from exc
            srcs.append(u)
            dsts.append(v)
            probs.append(p)
    finally:
        if close:
            fh.close()

    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    prob = np.asarray(probs, dtype=np.float64)
    if renumber:
        ids = np.unique(np.concatenate([src, dst])) if len(src) else np.empty(0, np.int64)
        n = len(ids)
        src = np.searchsorted(ids, src)
        dst = np.searchsorted(ids, dst)
    else:
        n = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    return from_edges(n, src, dst, prob)


def write_edgelist(
    graph: CSRGraph,
    path: str | Path | io.TextIOBase,
    *,
    with_probs: bool = False,
) -> None:
    """Write a graph as a SNAP-style edge list (round-trips with
    :func:`read_edgelist` up to vertex renumbering)."""
    close = False
    if isinstance(path, (str, Path)):
        fh: io.TextIOBase = open(path, "w", encoding="utf-8")  # noqa: SIM115
        close = True
    else:
        fh = path
    try:
        fh.write(f"# repro graph: n={graph.n} m={graph.m}\n")
        for u, v, p in graph.edges():
            if with_probs:
                fh.write(f"{u}\t{v}\t{p:.17g}\n")
            else:
                fh.write(f"{u}\t{v}\n")
    finally:
        if close:
            fh.close()


def read_metis(
    path: str | Path | io.TextIOBase,
    *,
    default_prob: float = 0.1,
) -> CSRGraph:
    """Read a graph in METIS format (the other format Ripples accepts).

    METIS files are 1-indexed adjacency lists: a header line
    ``n m [fmt]`` followed by one line per vertex listing its neighbors
    (with per-edge weights interleaved when ``fmt`` has the edge-weight
    bit ``1`` set; weights are interpreted as activation probabilities).
    ``%`` lines are comments.  METIS graphs are undirected: each listed
    adjacency becomes a directed edge, so a symmetric file yields both
    directions.

    Raises
    ------
    ValueError
        On a malformed header, vertex indices out of range, or vertex
        lines missing/extra.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh: io.TextIOBase = open(path, "r", encoding="utf-8")  # noqa: SIM115
        close = True
    else:
        fh = path
    try:
        # Keep blank lines: a blank adjacency line is an isolated vertex.
        # Only comment lines are dropped, and leading blanks before the
        # header are ignored.
        raw = [line.rstrip("\n") for line in fh if not line.lstrip().startswith("%")]
    finally:
        if close:
            fh.close()
    while raw and not raw[0].strip():
        raw.pop(0)
    lines = [line.strip() for line in raw]
    if not lines:
        raise ValueError("empty METIS file")
    header = lines[0].split()
    if len(header) not in (2, 3, 4):
        raise ValueError(f"malformed METIS header: {lines[0]!r}")
    n = int(header[0])
    # Strip surplus trailing blanks (editors add them), but never below
    # the declared vertex count — a blank vertex line is an isolated
    # vertex, not filler.
    while len(lines) - 1 > n and not lines[-1]:
        lines.pop()
    fmt = header[2] if len(header) >= 3 else "0"
    has_edge_weights = len(fmt) >= 1 and fmt[-1] == "1"
    if len(lines) - 1 != n:
        raise ValueError(
            f"METIS header declares {n} vertices but file has {len(lines) - 1} lines"
        )
    srcs: list[int] = []
    dsts: list[int] = []
    probs: list[float] = []
    for u, line in enumerate(lines[1:]):
        fields = line.split()
        step = 2 if has_edge_weights else 1
        if has_edge_weights and len(fields) % 2 != 0:
            raise ValueError(f"vertex {u + 1}: odd field count with edge weights")
        for i in range(0, len(fields), step):
            v = int(fields[i])
            if not 1 <= v <= n:
                raise ValueError(f"vertex {u + 1}: neighbor {v} out of range")
            w = float(fields[i + 1]) if has_edge_weights else default_prob
            srcs.append(u)
            dsts.append(v - 1)
            probs.append(min(max(w, 0.0), 1.0))
    return from_edges(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(probs, dtype=np.float64),
    )


def read_matrix_market(
    path: str | Path | io.TextIOBase,
    *,
    default_prob: float = 0.1,
) -> CSRGraph:
    """Read a MatrixMarket coordinate file as a directed graph.

    Entry ``(i, j[, w])`` becomes the edge ``i -> j`` with activation
    probability ``w`` clipped to ``[0, 1]`` (``default_prob`` for
    pattern matrices); a ``symmetric`` qualifier adds both directions.
    Only ``coordinate`` layouts are supported (an ``array`` matrix is
    dense, not a graph).

    Raises
    ------
    ValueError
        On a missing/unsupported header or malformed entries.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh: io.TextIOBase = open(path, "r", encoding="utf-8")  # noqa: SIM115
        close = True
    else:
        fh = path
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("missing %%MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise ValueError("only coordinate MatrixMarket layouts are supported")
        symmetric = "symmetric" in tokens
        pattern = "pattern" in tokens
        size_line = None
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            size_line = stripped
            break
        if size_line is None:
            raise ValueError("missing size line")
        rows, cols, nnz = (int(x) for x in size_line.split()[:3])
        n = max(rows, cols)
        srcs: list[int] = []
        dsts: list[int] = []
        probs: list[float] = []
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            fields = stripped.split()
            i, j = int(fields[0]) - 1, int(fields[1]) - 1
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"entry ({i + 1}, {j + 1}) out of range")
            w = default_prob if pattern or len(fields) < 3 else float(fields[2])
            w = min(max(abs(w), 0.0), 1.0)
            srcs.append(i)
            dsts.append(j)
            probs.append(w)
            if symmetric and i != j:
                srcs.append(j)
                dsts.append(i)
                probs.append(w)
    finally:
        if close:
            fh.close()
    return from_edges(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(probs, dtype=np.float64),
    )
