"""Synthetic graph generators used as stand-ins for the SNAP datasets.

The paper evaluates on eight SNAP graphs (Table 2).  Without network
access, :mod:`repro.datasets` builds scaled-down stand-ins from these
generators, chosen to match each original's qualitative character:

* citation / social graphs with heavy-tailed degrees → preferential
  attachment (:func:`barabasi_albert`) or :func:`rmat`;
* co-purchase / collaboration graphs with flatter degrees and strong
  locality → :func:`watts_strogatz`;
* modular community structure (bio case study) →
  :func:`stochastic_block_model`.

All generators are deterministic in their ``seed`` argument and return a
:class:`~repro.graph.CSRGraph`; edge probabilities default to the value
conventions of :func:`repro.graph.build.from_edges` and are normally
overwritten by a scheme from :mod:`repro.graph.weights`.
"""

from __future__ import annotations

import numpy as np

from ..rng import SplitMix64
from .build import from_edges
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "watts_strogatz",
    "stochastic_block_model",
    "complete_graph",
    "path_graph",
    "star_graph",
]


def _rng(seed: int, salt: int) -> np.random.Generator:
    """A numpy Generator derived deterministically from ``(seed, salt)``.

    Generators use numpy's PCG64 for speed; determinism is anchored by
    SplitMix64 so all randomness in the library flows from one seeding
    discipline.
    """
    return np.random.default_rng(SplitMix64(seed).split(salt).next_u64())


def erdos_renyi(n: int, p: float, seed: int = 0, *, directed: bool = True) -> CSRGraph:
    """G(n, p) random digraph.

    Sampled by drawing ``Binomial(n*(n-1), p)`` edge slots without
    replacement, which is O(m) rather than O(n^2) and exact.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed, 0xE1)
    total = n * (n - 1)
    if total == 0 or p == 0.0:
        return from_edges(n, np.empty(0, np.int64), np.empty(0, np.int64))
    m = rng.binomial(total, p)
    slots = rng.choice(total, size=m, replace=False)
    src = slots // (n - 1)
    rem = slots % (n - 1)
    dst = np.where(rem >= src, rem + 1, rem)  # skip the diagonal
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return from_edges(n, src, dst)


def barabasi_albert(
    n: int, m_attach: int, seed: int = 0, *, directed: bool = True
) -> CSRGraph:
    """Preferential-attachment graph (heavy-tailed degree distribution).

    Each new vertex attaches ``m_attach`` edges to existing vertices
    chosen proportionally to degree (implemented with the standard
    repeated-endpoints urn, vectorized per arriving vertex).  With
    ``directed=True`` each undirected attachment contributes both
    directions, mimicking the mutual-link structure of the SNAP social
    networks after their standard symmetrization.
    """
    if m_attach < 1:
        raise ValueError("m_attach must be >= 1")
    if n <= m_attach:
        raise ValueError(f"need n > m_attach, got n={n}, m_attach={m_attach}")
    rng = _rng(seed, 0xBA)
    # Urn of endpoints; seed with a star over the first m_attach+1 vertices.
    urn: list[np.ndarray] = [np.repeat(np.arange(m_attach + 1), 1)]
    src_parts: list[np.ndarray] = [np.full(m_attach, m_attach, dtype=np.int64)]
    dst_parts: list[np.ndarray] = [np.arange(m_attach, dtype=np.int64)]
    urn.append(np.full(m_attach, m_attach, dtype=np.int64))
    urn.append(np.arange(m_attach, dtype=np.int64))
    flat_urn = np.concatenate(urn)
    for v in range(m_attach + 1, n):
        targets = rng.choice(flat_urn, size=m_attach)
        targets = np.unique(targets)
        src_parts.append(np.full(len(targets), v, dtype=np.int64))
        dst_parts.append(targets.astype(np.int64))
        flat_urn = np.concatenate(
            [flat_urn, targets, np.full(len(targets), v, dtype=np.int64)]
        )
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    if directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return from_edges(n, src, dst)


def rmat(
    scale: int,
    edge_factor: int,
    seed: int = 0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """R-MAT / Kronecker power-law digraph (Graph500-style parameters).

    Generates ``edge_factor * 2**scale`` directed edges over ``2**scale``
    vertices by recursive quadrant selection; duplicates and self-loops
    are dropped by the builder, so the realized edge count is slightly
    lower — the same convention as the Graph500 reference generator.
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"scale must be in [1, 30], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum <= 1")
    rng = _rng(seed, 0x44)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant thresholds: [a, a+b, a+b+c, 1]
        right = (r >= a) & (r < a + b)  # top-right: dst bit set
        bottom = (r >= a + b) & (r < a + b + c)  # bottom-left: src bit set
        both = r >= a + b + c  # bottom-right: both set
        src |= ((bottom | both).astype(np.int64)) << bit
        dst |= ((right | both).astype(np.int64)) << bit
    return from_edges(n, src, dst)


def watts_strogatz(n: int, k_ring: int, beta: float, seed: int = 0) -> CSRGraph:
    """Small-world digraph: ring lattice with rewiring probability ``beta``.

    Each vertex links to its ``k_ring`` clockwise neighbors (both
    directions are added, as in the undirected original); each lattice
    edge's endpoint is rewired to a uniform random vertex with
    probability ``beta``.
    """
    if k_ring < 1 or k_ring >= n:
        raise ValueError(f"need 1 <= k_ring < n, got k_ring={k_ring}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    rng = _rng(seed, 0x55)
    base = np.arange(n, dtype=np.int64)
    src = np.repeat(base, k_ring)
    offsets = np.tile(np.arange(1, k_ring + 1, dtype=np.int64), n)
    dst = (src + offsets) % n
    rewire = rng.random(len(dst)) < beta
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    return from_edges(n, both_src, both_dst)


def stochastic_block_model(
    sizes: list[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> CSRGraph:
    """Directed SBM: dense blocks with sparse inter-block edges.

    The bio case-study stand-ins use this to mimic the modular structure
    of inferred co-expression networks (pathways ≈ blocks).
    """
    if not sizes:
        raise ValueError("need at least one block")
    for pname, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{pname} must be in [0, 1], got {p}")
    rng = _rng(seed, 0x5B)
    n = int(sum(sizes))
    starts = np.cumsum([0] + list(sizes))
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for i, si in enumerate(sizes):
        for j, sj in enumerate(sizes):
            p = p_in if i == j else p_out
            if p == 0.0:
                continue
            total = si * sj
            mcnt = rng.binomial(total, p)
            if mcnt == 0:
                continue
            slots = rng.choice(total, size=mcnt, replace=False)
            src_parts.append(starts[i] + slots // sj)
            dst_parts.append(starts[j] + slots % sj)
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    return from_edges(n, src, dst)


def complete_graph(n: int) -> CSRGraph:
    """All directed edges between distinct vertices (test fixture)."""
    src = np.repeat(np.arange(n, dtype=np.int64), n)
    dst = np.tile(np.arange(n, dtype=np.int64), n)
    keep = src != dst
    return from_edges(n, src[keep], dst[keep])


def path_graph(n: int) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1 (test fixture)."""
    src = np.arange(n - 1, dtype=np.int64)
    return from_edges(n, src, src + 1)


def star_graph(n: int) -> CSRGraph:
    """Directed star: hub 0 points at every other vertex (test fixture)."""
    if n < 1:
        raise ValueError("star graph needs at least one vertex")
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return from_edges(n, src, dst)
