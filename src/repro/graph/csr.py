"""Compressed-sparse-row directed graph with per-edge probabilities.

Both adjacency directions are materialized because the IMM pipeline needs
them for different kernels with opposite access patterns:

* ``out_*`` arrays: forward diffusion (probabilistic BFS *from* a seed
  set, Section 3 problem statement).
* ``in_*`` arrays: reverse reachability sampling (``GenerateRR`` walks
  incoming edges destination→source, Algorithm 3).

All index arrays are ``int32`` (sufficient for graphs up to 2**31-1
vertices/edges, far beyond what a single-node Python reproduction holds)
and probabilities are ``float64``.  Keeping the neighbor lists of each
vertex contiguous gives the cache-friendly traversal the paper's
optimized layout is designed around.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable directed graph in CSR form, with edge probabilities.

    Construct through :func:`repro.graph.from_edges` (or a generator in
    :mod:`repro.graph.generators`) rather than directly; the constructor
    validates but does not sort or deduplicate.

    Attributes
    ----------
    n, m:
        Number of vertices and directed edges.
    out_indptr, out_indices, out_probs:
        CSR of outgoing edges: the out-neighbors of ``u`` are
        ``out_indices[out_indptr[u]:out_indptr[u+1]]`` with matching
        activation probabilities in ``out_probs``.
    in_indptr, in_indices, in_probs:
        CSC view stored as a CSR of the transpose: the in-neighbors of
        ``v`` (sources of edges into ``v``) with matching probabilities.
    """

    __slots__ = (
        "n",
        "m",
        "out_indptr",
        "out_indices",
        "out_probs",
        "in_indptr",
        "in_indices",
        "in_probs",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_probs: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_probs: np.ndarray,
    ) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        if len(out_indptr) != n + 1 or len(in_indptr) != n + 1:
            raise ValueError("indptr arrays must have length n + 1")
        m = int(out_indptr[-1])
        if len(out_indices) != m or len(out_probs) != m:
            raise ValueError("out_indices/out_probs length must equal edge count")
        if int(in_indptr[-1]) != m or len(in_indices) != m or len(in_probs) != m:
            raise ValueError("in-direction arrays must describe the same edge count")
        self.n = n
        self.m = m
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.out_probs = out_probs
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.in_probs = in_probs

    # -- basic queries -----------------------------------------------------

    def out_degree(self, u: int | None = None):
        """Out-degree of ``u``, or the full ``int64`` degree array."""
        if u is None:
            return np.diff(self.out_indptr).astype(np.int64)
        return int(self.out_indptr[u + 1] - self.out_indptr[u])

    def in_degree(self, v: int | None = None):
        """In-degree of ``v``, or the full ``int64`` degree array."""
        if v is None:
            return np.diff(self.in_indptr).astype(np.int64)
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def out_neighbors(self, u: int) -> np.ndarray:
        """View of the out-neighbor ids of ``u`` (no copy)."""
        return self.out_indices[self.out_indptr[u] : self.out_indptr[u + 1]]

    def out_edge_probs(self, u: int) -> np.ndarray:
        """View of the activation probabilities of ``u``'s out-edges."""
        return self.out_probs[self.out_indptr[u] : self.out_indptr[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """View of the in-neighbor (source) ids of ``v`` (no copy)."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def in_edge_probs(self, v: int) -> np.ndarray:
        """View of the activation probabilities of ``v``'s in-edges."""
        return self.in_probs[self.in_indptr[v] : self.in_indptr[v + 1]]

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(src, dst, prob)`` triples in out-CSR order."""
        for u in range(self.n):
            lo, hi = self.out_indptr[u], self.out_indptr[u + 1]
            for j in range(lo, hi):
                yield u, int(self.out_indices[j]), float(self.out_probs[j])

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge (u, v) exists (binary search; the
        builder keeps neighbor lists sorted)."""
        nbrs = self.out_neighbors(u)
        j = int(np.searchsorted(nbrs, v))
        return j < len(nbrs) and int(nbrs[j]) == v

    # -- derived graphs ------------------------------------------------------

    def transpose(self) -> "CSRGraph":
        """The reverse graph: every edge flipped, probabilities carried."""
        return CSRGraph(
            self.n,
            self.in_indptr,
            self.in_indices,
            self.in_probs,
            self.out_indptr,
            self.out_indices,
            self.out_probs,
        )

    def with_probs(
        self, out_probs: np.ndarray, in_probs: np.ndarray
    ) -> "CSRGraph":
        """A graph sharing this topology with replaced edge probabilities
        (used by the weight schemes in :mod:`repro.graph.weights`)."""
        if len(out_probs) != self.m or len(in_probs) != self.m:
            raise ValueError("probability arrays must have one entry per edge")
        return CSRGraph(
            self.n,
            self.out_indptr,
            self.out_indices,
            out_probs,
            self.in_indptr,
            self.in_indices,
            in_probs,
        )

    # -- memory model ---------------------------------------------------------

    def nbytes(self) -> int:
        """Bytes held by the adjacency arrays (used by the distributed
        memory model, where every rank stores the whole graph)."""
        return int(
            self.out_indptr.nbytes
            + self.out_indices.nbytes
            + self.out_probs.nbytes
            + self.in_indptr.nbytes
            + self.in_indices.nbytes
            + self.in_probs.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
            and np.array_equal(self.out_probs, other.out_probs)
        )

    def __hash__(self) -> int:  # CSRGraph is mutable-array-backed; identity hash
        return id(self)
