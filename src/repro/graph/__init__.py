"""Graph substrate: CSR directed graphs, generators, weights and I/O.

The influence-maximization kernels operate on a compressed-sparse-row
(:class:`CSRGraph`) representation holding *both* adjacency directions:

* the **out**-adjacency drives forward diffusion simulation, and
* the **in**-adjacency drives the reverse probabilistic BFS
  (``GenerateRR``) at the heart of IMM, which traverses incoming edges
  from destination to source (Section 3.1 of the paper).

Edge activation probabilities are attached to the graph per the paper's
experimental setup: uniform random in ``[0, 1)`` for IC, and the
equivalent renormalized weights for LT (:mod:`repro.graph.weights`).
"""

from .csr import CSRGraph
from .build import from_edges, from_edge_list
from .generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    path_graph,
    rmat,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from .io import read_edgelist, read_matrix_market, read_metis, write_edgelist
from .stats import GraphStats, graph_stats
from .weights import (
    constant_weights,
    lt_normalize,
    uniform_random_weights,
    weighted_cascade,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_edge_list",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "watts_strogatz",
    "stochastic_block_model",
    "complete_graph",
    "path_graph",
    "star_graph",
    "read_edgelist",
    "read_metis",
    "read_matrix_market",
    "write_edgelist",
    "GraphStats",
    "graph_stats",
    "uniform_random_weights",
    "constant_weights",
    "weighted_cascade",
    "lt_normalize",
]
