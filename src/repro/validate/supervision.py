"""Supervised-engine oracle: self-healing must not change a single bit.

The supervisor's promise is stronger than "it recovers": every recovery
mechanism — crash replay, spare promotion, straggler speculation,
checkpoint/resume — must reproduce the *exact* bytes the unsupervised
serial run produces, because the per-sample counter streams make the
output a pure function of ``(graph, model, seed, index)``.  This module
turns that promise into checked claims, one per axis:

* **crash** — SIGKILLs injected into live worker processes
  (``crash:r@N`` / ``switch:lo-hi@N`` on the real pool) must leave the
  collection bit-identical to serial, and the oracle demands the kill
  actually fired (``injected_crashes >= 1``) so a mis-addressed plan
  cannot vacuously pass.

* **straggler** — an injected in-worker sleep must trigger speculation,
  and the first checksum-valid result landing must keep the bytes
  identical (a speculative copy races the laggard; both compute the
  same block).

* **deadline** — expiry must raise
  :class:`~repro.sampling.supervisor.DeadlineExceededError` (never a
  silent full-θ result), with the landed prefix bit-exact; the ``imm``
  driver must surface it as a flagged
  :class:`~repro.imm.result.DegradedResult` whose effective ε is no
  better than the requested one.

* **resume** — a collection completed from a disk checkpoint written by
  an earlier (partial) run must be bit-identical to sampling from
  scratch, and the prefix must genuinely come from the spill
  (``resumed_samples`` equals the checkpointed sample count).

:func:`check_supervised_sampling` is the primitive the mutation suite
leans on: any supervised engine driven over ``[0, theta)`` must
assemble exactly the serial reference collection.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from ..imm import imm
from ..sampling import RRRSampler, SortedRRRCollection, sample_batch
from ..sampling.supervisor import DeadlineExceededError, SupervisedSamplingEngine
from .report import ValidationReport

__all__ = ["check_supervised_sampling", "check_supervised_equivalence"]


def _serial_reference(graph, model: str, theta: int, seed: int):
    coll = SortedRRRCollection(graph.n)
    batch = sample_batch(
        graph, model, coll, theta, seed,
        sampler=RRRSampler(graph, model), engine="serial",
    )
    return coll, batch


def _bitwise_equal(coll, ref) -> bool:
    if len(coll) != len(ref):
        return False
    flat, indptr, _ = coll.flattened()
    ref_flat, ref_indptr, _ = ref.flattened()
    return bool(
        np.array_equal(flat, ref_flat) and np.array_equal(indptr, ref_indptr)
    )


def check_supervised_sampling(
    graph, model: str, theta: int, seed: int, subject: str, *, engine
) -> ValidationReport:
    """Drive ``engine`` over ``[0, theta)``; demand the serial bytes.

    The caller owns the engine (and injects its faults/mutations); this
    is the shared detector for both the oracle axes and the supervisor
    mutants.
    """
    rep = ValidationReport()
    ref, ref_batch = _serial_reference(graph, model, theta, seed)
    coll = SortedRRRCollection(graph.n)
    per_sample = engine.sample_into(coll, np.arange(theta, dtype=np.int64), seed)
    rep.check(
        _bitwise_equal(coll, ref),
        "supervised.collection-bitwise",
        subject,
        f"supervised collection diverges from the serial reference "
        f"({len(coll)} vs {len(ref)} samples, "
        f"{coll.total_entries} vs {ref.total_entries} entries)",
    )
    rep.check(
        bool(np.array_equal(per_sample, ref_batch.per_sample_edges)),
        "supervised.per-sample-edges",
        subject,
        "supervised engine disagrees with serial on per-sample edge counts",
    )
    return rep


def check_supervised_equivalence(
    graph, model: str, cfg, subject: str
) -> ValidationReport:
    """Crash / straggler / deadline / resume axes on one graph × model."""
    rep = ValidationReport()
    seed, theta = cfg.seed, cfg.theta_cap
    workers = cfg.supervised_workers
    # Small blocks so every axis has enough ordinals to address: the
    # crash plan needs block 2 to exist, speculation needs a service-time
    # history before the straggler block comes up.
    chunk = max(1, theta // 10)

    def engine(**kw) -> SupervisedSamplingEngine:
        return SupervisedSamplingEngine(
            graph, model, workers=workers, chunk_size=chunk,
            backoff_base=0.0, **kw,
        )

    # -- crash: real SIGKILL of one worker, then of a contiguous group ---
    for spec in ("crash:0@2", f"switch:0-{workers - 1}@3"):
        with engine(fault_plan=spec) as eng:
            sub = f"{subject} supervised[{spec}]"
            rep.merge(check_supervised_sampling(
                graph, model, theta, seed, sub, engine=eng,
            ))
            rep.check(
                eng.stats.injected_crashes >= 1 and eng.stats.rebuilds >= 1,
                "supervised.fault-fired",
                sub,
                f"plan {spec!r} injected {eng.stats.injected_crashes} kill(s) "
                f"and caused {eng.stats.rebuilds} rebuild(s) — the fault "
                "never actually fired",
            )

    # -- arena growth under supervision: crash replay into fresh extents -
    # A 4 KiB first output-arena segment forces the growable-segment
    # path while a worker is killed mid-run: replayed blocks must land
    # from freshly reserved extents with the bytes unchanged.
    with SupervisedSamplingEngine(
        graph, model, workers=workers, chunk_size=chunk,
        backoff_base=0.0, arena_bytes=4096, fault_plan="crash:0@2",
    ) as eng:
        sub = f"{subject} supervised[arena=4KiB, crash:0@2]"
        rep.merge(check_supervised_sampling(
            graph, model, theta, seed, sub, engine=eng,
        ))
        rep.check(
            eng.stats.arena_segments >= 2,
            "supervised.arena-growth",
            sub,
            f"tiny first arena segment did not grow under supervision "
            f"(segments={eng.stats.arena_segments})",
        )

    # -- straggler: injected sleep must trigger (winning) speculation ----
    with engine(
        fault_plan="straggler:3x4", straggler_sleep=0.15,
        straggler_floor=0.02, straggler_factor=2.0, straggler_min_history=2,
    ) as eng:
        sub = f"{subject} supervised[straggler:3x4]"
        rep.merge(check_supervised_sampling(
            graph, model, theta, seed, sub, engine=eng,
        ))
        rep.check(
            eng.stats.injected_sleeps >= 1
            and eng.stats.speculative_launched >= 1,
            "supervised.speculation-fired",
            sub,
            f"straggler plan slept {eng.stats.injected_sleeps} block(s) but "
            f"launched {eng.stats.speculative_launched} speculative cop(ies)",
        )

    # -- deadline: expiry raises, never silently reports full θ ----------
    ref, _ = _serial_reference(graph, model, theta, seed)
    eng = engine(deadline=1e-4)
    try:
        coll = SortedRRRCollection(graph.n)
        raised = False
        try:
            eng.sample_into(coll, np.arange(theta, dtype=np.int64), seed)
        except DeadlineExceededError:
            raised = True
        sub = f"{subject} supervised[deadline]"
        rep.check(
            raised and eng.stats.deadline_expired,
            "supervised.deadline-raises",
            sub,
            f"expired deadline did not raise (raised={raised}, "
            f"flag={eng.stats.deadline_expired}) — silent full-θ result",
        )
        landed = len(coll)
        flat, indptr, _ = coll.flattened()
        ref_flat, ref_indptr, _ = ref.flattened()
        rep.check(
            landed < theta
            and bool(np.array_equal(flat, ref_flat[: len(flat)]))
            and bool(np.array_equal(indptr, ref_indptr[: landed + 1])),
            "supervised.deadline-prefix",
            sub,
            f"degraded run landed {landed}/{theta} samples that are not an "
            "exact prefix of the serial reference",
        )
    finally:
        eng.close()

    # -- checkpoint/resume: disk round-trip must be invisible ------------
    with tempfile.TemporaryDirectory(prefix="repro-oracle-ck-") as td:
        ckdir = Path(td) / "run"
        half = theta // 2
        with engine(checkpoint_dir=ckdir) as eng:
            partial = SortedRRRCollection(graph.n)
            eng.sample_into(partial, np.arange(half, dtype=np.int64), seed)
            written = eng.stats.checkpoint_bytes
        with engine(resume_from=ckdir) as eng:
            sub = f"{subject} supervised[resume]"
            rep.merge(check_supervised_sampling(
                graph, model, theta, seed, sub, engine=eng,
            ))
            rep.check(
                eng.stats.resumed_samples == half and written > 0,
                "supervised.resume-used",
                sub,
                f"expected the {half}-sample prefix from the spill "
                f"({written} bytes on disk), resumed "
                f"{eng.stats.resumed_samples}",
            )

    # -- end-to-end: the imm driver under an injected crash --------------
    k, eps, cap = cfg.k, cfg.eps, cfg.theta_cap
    base = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)
    res = imm(
        graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap,
        workers=workers, supervise=True,
        supervisor_opts={
            "fault_plan": "crash:0@2", "chunk_size": chunk, "backoff_base": 0.0,
        },
    )
    sub = f"{subject} imm[supervised, crash:0@2]"
    rep.check(
        bool(np.array_equal(base.seeds, res.seeds))
        and base.theta == res.theta
        and base.extra["coverage_history"] == res.extra["coverage_history"],
        "supervised.driver-seed-set",
        sub,
        f"seed sets diverge: {base.seeds.tolist()} vs {res.seeds.tolist()}; "
        f"theta {base.theta} vs {res.theta}",
    )
    sup = res.extra["supervisor"]
    rep.check(
        sup["injected_crashes"] >= 1 and not res.extra.get("degraded", False),
        "supervised.driver-recovered",
        sub,
        f"driver run injected {sup['injected_crashes']} crash(es), "
        f"degraded={res.extra.get('degraded')}",
    )

    # -- end-to-end: the imm driver degrades honestly on deadline --------
    res = imm(
        graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap,
        workers=workers, supervise=True, supervisor_opts={"deadline": 1e-4},
    )
    sub = f"{subject} imm[supervised, deadline]"
    ex = res.extra
    rep.check(
        ex.get("degraded") is True
        and ex["theta_effective"] == res.num_samples
        and ex["theta_effective"] < base.theta
        and ex["epsilon_effective"] > eps,
        "supervised.driver-degraded",
        sub,
        f"deadline run not honestly degraded: degraded={ex.get('degraded')}, "
        f"theta_effective={ex.get('theta_effective')} vs num_samples="
        f"{res.num_samples} (full theta {base.theta}), "
        f"epsilon_effective={ex.get('epsilon_effective')}",
    )
    return rep
