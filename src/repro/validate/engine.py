"""Equivalence checks for the process-pool sampling engine.

The parallel engine's whole value proposition is the determinism
contract: for any worker count, chunk size, and start method it must
produce the **bit-identical** collection (and per-sample edge meters)
that the serial and batched engines produce.  This module states that
contract as oracle checks:

``engine.collection-bitwise``
    flat vertex buffer and sample boundaries equal the batched
    reference's, byte for byte;
``engine.per-sample-edges``
    the examined-edge meter of every sample matches (the cost models
    consume these, so a silent disagreement would skew modeled time);
``engine.count-partitioned``
    the partitioned counting kernel equals ``np.bincount`` exactly.

The checker accepts a pre-built engine (``engine=``) so the mutation
suite can hand it a deliberately broken one
(``_mutate_land_order`` / ``_mutate_stream_offset``) and demand these
checks light up — proving the oracle would catch a real landing-order
or stream-offset bug, not just asserting the healthy path.
"""

from __future__ import annotations

import numpy as np

from ..sampling import BatchedRRRSampler, SortedRRRCollection
from ..sampling.parallel_engine import ParallelSamplingEngine
from .report import ValidationReport

__all__ = ["check_engine_sampling"]


def check_engine_sampling(
    graph,
    model: str,
    theta: int,
    seed: int,
    subject: str,
    *,
    workers: tuple[int, ...] = (1, 2, 4),
    chunk_sizes: tuple[int | None, ...] = (None,),
    engine: ParallelSamplingEngine | None = None,
) -> ValidationReport:
    """Engine output must be bit-identical to the batched sampler's.

    One engine per worker count is constructed (pool + shared CSR paid
    once) and every chunk size is driven through it via the per-call
    ``chunk_size`` override.  When ``engine`` is given, only that engine
    is exercised (the mutation-suite path).
    """
    rep = ValidationReport()
    indices = np.arange(theta, dtype=np.int64)
    ref_coll = SortedRRRCollection(graph.n)
    ref_edges = BatchedRRRSampler(graph, model).sample_into(ref_coll, indices, seed)
    ref_flat, ref_indptr, _ = ref_coll.flattened()
    ref_counts = np.bincount(ref_flat, minlength=graph.n)

    def drive(eng: ParallelSamplingEngine, w, label_workers: bool = True) -> None:
        for chunk in chunk_sizes:
            sub = f"{subject} engine[workers={w}, chunk={chunk}]"
            coll = SortedRRRCollection(graph.n)
            edges = eng.sample_into(coll, indices, seed, chunk_size=chunk)
            flat, indptr, _ = coll.flattened()
            rep.check(
                bool(np.array_equal(flat, ref_flat))
                and bool(np.array_equal(indptr, ref_indptr)),
                "engine.collection-bitwise",
                sub,
                "process-pool collection is not bit-identical to the batched "
                "engine's (landing order or stream addressing is broken)",
            )
            rep.check(
                bool(np.array_equal(edges, ref_edges)),
                "engine.per-sample-edges",
                sub,
                "per-sample examined-edge meters disagree with the batched "
                "engine's",
            )
        rep.check(
            bool(
                np.array_equal(
                    eng.count_partitioned(ref_flat, graph.n), ref_counts
                )
            ),
            "engine.count-partitioned",
            f"{subject} engine[workers={w}]",
            "count_partitioned disagrees with np.bincount",
        )

    if engine is not None:
        drive(engine, engine.workers)
        return rep
    for w in workers:
        with ParallelSamplingEngine(graph, model, workers=w) as eng:
            drive(eng, w)
    return rep
