"""Equivalence checks for the process-pool sampling engine.

The parallel engine's whole value proposition is the determinism
contract: for any worker count, chunk size, arena sizing, and start
method it must produce the **bit-identical** collection (and per-sample
edge meters) that the serial and batched engines produce.  This module
states that contract as oracle checks:

``engine.collection-bitwise``
    flat vertex buffer and sample boundaries equal the batched
    reference's, byte for byte;
``engine.per-sample-edges``
    the examined-edge meter of every sample matches (the cost models
    consume these, so a silent disagreement would skew modeled time);
``engine.count-partitioned``
    the counting kernel equals ``np.bincount`` exactly — including the
    fused-counter merge path, which is why this check runs right after
    a drive that left the fused books balanced;
``engine.arena-growth``
    a deliberately tiny first output-arena segment must trigger the
    growable-segment escape hatch (≥ 2 segments) while staying
    bit-identical — growth is a capacity event, never a data event.

A drive that *raises* is itself a violation, not a crash of the
checker: a corrupted arena extent can surface as a landing-time
``ValueError`` (the collection's invariants reject the stitched views)
rather than as silently wrong bytes, and the oracle must treat both
the same way.

The checker accepts a pre-built engine (``engine=``) so the mutation
suite can hand it a deliberately broken one (``_mutate_land_order`` /
``_mutate_stream_offset`` / ``_mutate_arena_overlap`` /
``_mutate_fused_drop``) and demand these checks light up — proving the
oracle would catch a real landing-order, stream-offset, extent-overlap,
or fused-undercount bug, not just asserting the healthy path.
"""

from __future__ import annotations

import numpy as np

from ..sampling import BatchedRRRSampler, SortedRRRCollection
from ..sampling.parallel_engine import ParallelSamplingEngine
from .report import ValidationReport

__all__ = ["check_engine_sampling"]


def check_engine_sampling(
    graph,
    model: str,
    theta: int,
    seed: int,
    subject: str,
    *,
    workers: tuple[int, ...] = (1, 2, 4),
    chunk_sizes: tuple[int | None, ...] = (None,),
    engine: ParallelSamplingEngine | None = None,
) -> ValidationReport:
    """Engine output must be bit-identical to the batched sampler's.

    One engine per worker count is constructed (pool + shared CSR paid
    once) and every chunk size is driven through it via the per-call
    ``chunk_size`` override; a final tiny-arena engine exercises the
    growable-segment axis.  When ``engine`` is given, only that engine
    is exercised (the mutation-suite path).
    """
    rep = ValidationReport()
    indices = np.arange(theta, dtype=np.int64)
    ref_coll = SortedRRRCollection(graph.n)
    ref_edges = BatchedRRRSampler(graph, model).sample_into(ref_coll, indices, seed)
    ref_flat, ref_indptr, _ = ref_coll.flattened()
    ref_counts = np.bincount(ref_flat, minlength=graph.n)

    def drive(eng: ParallelSamplingEngine, w) -> None:
        first = True
        for chunk in chunk_sizes:
            sub = f"{subject} engine[workers={w}, chunk={chunk}]"
            try:
                coll = SortedRRRCollection(graph.n)
                edges = eng.sample_into(coll, indices, seed, chunk_size=chunk)
                flat, indptr, _ = coll.flattened()
                ok_coll = bool(np.array_equal(flat, ref_flat)) and bool(
                    np.array_equal(indptr, ref_indptr)
                )
                ok_edges = bool(np.array_equal(edges, ref_edges))
                coll_why = (
                    "process-pool collection is not bit-identical to the "
                    "batched engine's (landing order, stream addressing, or "
                    "arena extent stitching is broken)"
                )
                edges_why = (
                    "per-sample examined-edge meters disagree with the "
                    "batched engine's"
                )
            except Exception as exc:
                ok_coll = ok_edges = False
                coll_why = edges_why = (
                    f"engine raised {type(exc).__name__} mid-drive instead "
                    f"of landing the run: {exc}"
                )
            rep.check(ok_coll, "engine.collection-bitwise", sub, coll_why)
            rep.check(ok_edges, "engine.per-sample-edges", sub, edges_why)
            if first:
                # Right after the first drive the fused books balance
                # (every incidence came from a fused block of this
                # epoch), so this exercises the fused merge path; later
                # drives cover the same kernel from a fresh epoch.
                first = False
                _check_counts(eng, w)

    def _check_counts(eng: ParallelSamplingEngine, w) -> None:
        sub = f"{subject} engine[workers={w}]"
        try:
            ok = bool(
                np.array_equal(eng.count_partitioned(ref_flat, graph.n), ref_counts)
            )
            why = "count_partitioned disagrees with np.bincount"
        except Exception as exc:
            ok = False
            why = f"count_partitioned raised {type(exc).__name__}: {exc}"
        rep.check(ok, "engine.count-partitioned", sub, why)

    if engine is not None:
        drive(engine, engine.workers)
        return rep
    for w in workers:
        with ParallelSamplingEngine(graph, model, workers=w) as eng:
            drive(eng, w)
    # Growth axis: a 4 KiB first segment cannot hold a θ-sized run, so
    # the engine must allocate follow-on segments — and the bytes must
    # not care.
    grow_workers = max(w for w in workers) if workers else 2
    if grow_workers > 1:
        with ParallelSamplingEngine(
            graph, model, workers=min(2, grow_workers), arena_bytes=4096
        ) as eng:
            drive(eng, f"{eng.workers}, arena=4KiB")
            rep.check(
                eng.stats.arena_segments >= 2,
                "engine.arena-growth",
                f"{subject} engine[arena=4KiB]",
                f"tiny first arena segment did not grow "
                f"(segments={eng.stats.arena_segments}); the growable-"
                "segment escape hatch is dead code",
            )
    return rep
