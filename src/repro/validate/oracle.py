"""The cross-implementation equivalence oracle.

The paper's experimental argument rests on one invariant: IMM, IMMmt and
IMMdist compute the *same* seed sets while only the execution schedule
changes.  This module enforces it end to end, for every graph in the
dataset registry, across every axis the codebase can vary:

========================  =============================================
axis                      values exercised
========================  =============================================
driver                    ``imm`` / ``imm_mt`` / ``imm_dist`` (per-sample)
storage layout            ``sorted`` / ``compressed`` / ``hypergraph``
sampler engine            serial / batched cohort / process-pool
cohort size               {1, 7, 64, θ} (or the configured subset)
rank / thread count       {1, 2, 5} (or the configured subset)
pool workers × chunk      {1, 2, 4} × configured chunk sizes
RNG scheme                per-sample counter streams / leap-frog LCG
supervised runtime        crash / straggler / deadline / resume axes
frozen serving index      freeze / serve / tighten / promote / binding
serving cluster           routing / failover / hedge / partition-heal
========================  =============================================

Per-sample counter streams make the output schedule-independent, so for
that scheme the oracle demands **bit-identical** seed sets, θ, and
coverage histories against the serial reference.  The leap-frog scheme
deliberately consumes different randomness per rank count (its guarantee
is distributional, via the tiling law checked in
:mod:`repro.validate.rnglaws`), so there the oracle demands determinism:
two runs at the same rank count must agree exactly.

The work-meter conservation laws ride along: per-rank selection meters
must sum to the global totals, the distributed run must examine exactly
the edges the serial run examined, and both sampler engines must
attribute identical per-sample edge counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import load, names
from ..imm import imm, select_seeds, select_seeds_sorted
from ..mpi import imm_dist
from ..parallel import PUMA, imm_mt
from ..sampling import (
    BatchedRRRSampler,
    CompressedRRRCollection,
    HypergraphRRRCollection,
    RRRSampler,
    SortedRRRCollection,
    sample_batch,
)
from .engine import check_engine_sampling
from .invariants import check_collection
from .recovery import (
    check_community_driver,
    check_partitioned_equivalence,
    check_recovery_equivalence,
)
from .report import ValidationReport
from .rnglaws import check_rng_laws
from .cluster import check_cluster_equivalence
from .frontend import check_frontend_equivalence
from .serving import check_compressed_serving, check_serving_equivalence
from .supervision import check_supervised_equivalence

__all__ = [
    "OracleConfig",
    "quick_config",
    "full_config",
    "check_graph_equivalence",
    "check_compressed_layout",
    "check_selection_meters",
    "run_oracle",
]


@dataclass(frozen=True)
class OracleConfig:
    """What the oracle sweeps; presets via :func:`quick_config` /
    :func:`full_config`.

    ``theta_cap`` bounds the per-run sample count so the full sweep
    stays minutes, not hours.  Every driver honors the cap through the
    identical control flow, so equivalence statements are unaffected —
    all runs still solve the same capped instance.
    """

    datasets: tuple[str, ...]
    models: tuple[str, ...] = ("IC", "LT")
    k: int = 8
    eps: float = 0.5
    seed: int = 1
    theta_cap: int = 600
    #: batched-engine cohort sizes; θ itself is appended at run time.
    cohort_sizes: tuple[int, ...] = (1, 7, 64)
    #: ``imm_dist`` node counts (and selection-meter rank counts).
    rank_counts: tuple[int, ...] = (1, 2, 5)
    #: ``imm_mt`` thread counts.
    mt_threads: tuple[int, ...] = (1, 2, 5)
    #: exercise the leap-frog scheme's determinism contract.
    check_leapfrog: bool = True
    #: sweep fault plans × recovery policies against the fault-free run.
    check_faults: bool = True
    #: ``imm_dist`` node counts for the fault sweep (>= 2: a fault on a
    #: single-rank job has nobody to recover with).
    fault_rank_counts: tuple[int, ...] = (2, 5)
    #: cover the graph-partitioned sampler (IC graphs only).
    check_partitioned: bool = True
    partitioned_ranks: tuple[int, ...] = (1, 3)
    partitioned_samples: int = 40
    #: cover the community-IMM driver.
    check_community: bool = True
    #: cover the shared-memory process-pool engine.
    check_engine: bool = True
    #: pool sizes for the engine equivalence sweep.
    engine_workers: tuple[int, ...] = (1, 2, 4)
    #: fan-out block sizes driven through each engine (``None`` = auto).
    engine_chunk_sizes: tuple[int | None, ...] = (None, 37)
    #: cover the self-healing supervised engine (crash / straggler /
    #: deadline / resume axes, real SIGKILLs against live workers).
    check_supervised: bool = True
    #: pool size for the supervised axes.
    supervised_workers: int = 2
    #: cover the frozen serving index: freeze / serve / tighten /
    #: promote / graph-binding / cache axes, bit-identical to fresh runs.
    check_serving: bool = True
    #: cover the async serving front end: admission control, coalescing,
    #: extension bulkhead + circuit breaker, deadline-bounded degradation,
    #: and injected serving faults (stragglers, republish, crashes).
    check_frontend: bool = True
    #: cover the replicated serving cluster: consistent-hash routing,
    #: health-checked failover, hedged reads, single-writer extension
    #: routing, and typed all-replicas-down degradation.
    check_cluster: bool = True


def quick_config() -> OracleConfig:
    """Seconds-scale sweep for CI and ``benchmarks/regress.py``."""
    return OracleConfig(
        datasets=("cit-HepTh", "soc-Epinions1"),
        theta_cap=300,
        cohort_sizes=(1, 7),
        rank_counts=(1, 2),
        mt_threads=(2,),
        fault_rank_counts=(2,),
        partitioned_ranks=(3,),
        partitioned_samples=25,
        engine_workers=(2,),
        engine_chunk_sizes=(None,),
    )


def full_config() -> OracleConfig:
    """The acceptance sweep: every registry graph, every axis value."""
    return OracleConfig(datasets=tuple(names()))


def _seed_mismatch(a: np.ndarray, b: np.ndarray) -> str:
    return f"seed sets diverge: {np.asarray(a).tolist()} vs {np.asarray(b).tolist()}"


def check_selection_meters(
    collection: SortedRRRCollection,
    n: int,
    k: int,
    rank_counts: tuple[int, ...],
    subject: str,
) -> ValidationReport:
    """Selection must be rank-count invariant and meter-conserving."""
    rep = ValidationReport()
    ref = select_seeds_sorted(collection, n, k, num_ranks=1)
    for ranks in rank_counts:
        sel = select_seeds_sorted(collection, n, k, num_ranks=ranks)
        sub = f"{subject} num_ranks={ranks}"
        rep.check(
            bool(np.array_equal(sel.seeds, ref.seeds)),
            "oracle.select-rank-invariance",
            sub,
            _seed_mismatch(sel.seeds, ref.seeds),
        )
        rep.check(
            sel.num_ranks == ranks and len(sel.per_rank_searches) == ranks,
            "meters.rank-count",
            sub,
            f"per-rank meter arrays have {sel.num_ranks} entries",
        )
        rep.check(
            int(sel.per_rank_entries.sum()) == sel.counter_updates,
            "meters.selection-conservation",
            sub,
            f"per-rank entries sum {int(sel.per_rank_entries.sum())} != "
            f"global counter_updates {sel.counter_updates}",
        )
        rep.check(
            sel.covered_samples == ref.covered_samples
            and sel.counter_updates == ref.counter_updates,
            "meters.rank-independence",
            sub,
            "total work changed with the rank count (partitioning must "
            "only redistribute it)",
        )
    return rep


def _check_sampling_equivalence(
    graph, model: str, theta: int, cfg: OracleConfig, subject: str
) -> tuple[ValidationReport, SortedRRRCollection]:
    """Engines × cohort sizes × layouts must yield identical collections."""
    rep = ValidationReport()
    # Reference: the serial engine, sample by sample, sorted layout.
    ref_coll = SortedRRRCollection(graph.n)
    ref_batch = sample_batch(
        graph, model, ref_coll, theta, cfg.seed,
        sampler=RRRSampler(graph, model), engine="serial",
    )
    rep.merge(check_collection(ref_coll, f"{subject} engine=serial"))
    ref_flat, ref_indptr, _ = ref_coll.flattened()

    for cohort in (*cfg.cohort_sizes, theta):
        sub = f"{subject} cohort={cohort}"
        coll = SortedRRRCollection(graph.n)
        sampler = BatchedRRRSampler(graph, model, max_cohort=max(1, cohort))
        batch = sample_batch(
            graph, model, coll, theta, cfg.seed, sampler=sampler, engine="batched"
        )
        rep.merge(check_collection(coll, sub))
        flat, indptr, _ = coll.flattened()
        rep.check(
            bool(np.array_equal(flat, ref_flat))
            and bool(np.array_equal(indptr, ref_indptr)),
            "oracle.collection-bitwise",
            sub,
            "batched-engine collection is not bit-identical to the serial "
            "engine's",
        )
        rep.check(
            bool(
                np.array_equal(batch.per_sample_edges, ref_batch.per_sample_edges)
            ),
            "meters.per-sample-edges",
            sub,
            "engines disagree on per-sample examined-edge counts",
        )

    # Hypergraph layout fed by both engines: same samples, and the
    # layout-specific selector must pick the same seeds.
    hyper = HypergraphRRRCollection(graph.n)
    sample_batch(graph, model, hyper, theta, cfg.seed, engine="batched")
    rep.merge(check_collection(hyper, f"{subject} layout=hypergraph"))
    same_lists = len(hyper) == len(ref_coll) and all(
        np.array_equal(a, b) for a, b in zip(hyper, ref_coll)
    )
    rep.check(
        same_lists,
        "oracle.layout-contents",
        subject,
        "hypergraph layout holds different samples than the sorted layout",
    )
    sel_sorted = select_seeds(ref_coll, graph.n, cfg.k)
    sel_hyper = select_seeds(hyper, graph.n, cfg.k)
    rep.check(
        bool(np.array_equal(sel_sorted.seeds, sel_hyper.seeds))
        and sel_sorted.covered_samples == sel_hyper.covered_samples,
        "oracle.layout-selection",
        subject,
        _seed_mismatch(sel_sorted.seeds, sel_hyper.seeds),
    )
    return rep, ref_coll


def check_graph_equivalence(
    graph, model: str, cfg: OracleConfig, subject: str
) -> ValidationReport:
    """All drivers × layouts × cohorts × ranks on one graph."""
    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap

    ref = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)

    # -- layout axis ------------------------------------------------------
    hyper = imm(graph, k, eps, model, seed=seed, layout="hypergraph", theta_cap=cap)
    rep.check(
        bool(np.array_equal(ref.seeds, hyper.seeds)) and ref.theta == hyper.theta,
        "oracle.seed-set",
        f"{subject} imm[hypergraph]",
        _seed_mismatch(ref.seeds, hyper.seeds) + f"; theta {ref.theta} vs {hyper.theta}",
    )

    # -- multithreaded driver --------------------------------------------
    for threads in cfg.mt_threads:
        mt = imm_mt(
            graph, k, eps, model, num_threads=threads, machine=PUMA,
            seed=seed, theta_cap=cap,
        )
        sub = f"{subject} imm_mt[threads={threads}]"
        rep.check(
            bool(np.array_equal(ref.seeds, mt.seeds)) and ref.theta == mt.theta,
            "oracle.seed-set",
            sub,
            _seed_mismatch(ref.seeds, mt.seeds) + f"; theta {ref.theta} vs {mt.theta}",
        )
        rep.check(
            mt.counters.edges_examined == ref.counters.edges_examined
            and mt.counters.samples_generated == ref.counters.samples_generated,
            "meters.driver-conservation",
            sub,
            f"work ledger diverges from serial: edges "
            f"{mt.counters.edges_examined} vs {ref.counters.edges_examined}, "
            f"samples {mt.counters.samples_generated} vs "
            f"{ref.counters.samples_generated}",
        )

    # -- distributed driver, per-sample scheme ---------------------------
    for ranks in cfg.rank_counts:
        dist = imm_dist(
            graph, k, eps, model, num_nodes=ranks, machine=PUMA,
            seed=seed, rng_scheme="per-sample", theta_cap=cap,
        )
        sub = f"{subject} imm_dist[nodes={ranks}]"
        rep.check(
            bool(np.array_equal(ref.seeds, dist.seeds)) and ref.theta == dist.theta,
            "oracle.seed-set",
            sub,
            _seed_mismatch(ref.seeds, dist.seeds)
            + f"; theta {ref.theta} vs {dist.theta}",
        )
        rep.check(
            dist.extra.get("coverage_history") == ref.extra["coverage_history"],
            "oracle.coverage-history",
            sub,
            f"per-round (theta_x, frac) diverges: "
            f"{dist.extra.get('coverage_history')} vs "
            f"{ref.extra['coverage_history']}",
        )
        rep.check(
            dist.counters.edges_examined == ref.counters.edges_examined
            and dist.counters.samples_generated == ref.counters.samples_generated,
            "meters.driver-conservation",
            sub,
            f"rank meters do not sum to the serial ledger: edges "
            f"{dist.counters.edges_examined} vs {ref.counters.edges_examined}, "
            f"samples {dist.counters.samples_generated} vs "
            f"{ref.counters.samples_generated}",
        )

    # -- distributed driver, leap-frog scheme ----------------------------
    if cfg.check_leapfrog:
        for ranks in cfg.rank_counts:
            lf1 = imm_dist(
                graph, k, eps, model, num_nodes=ranks, machine=PUMA,
                seed=seed, rng_scheme="leapfrog", theta_cap=cap,
            )
            lf2 = imm_dist(
                graph, k, eps, model, num_nodes=ranks, machine=PUMA,
                seed=seed, rng_scheme="leapfrog", theta_cap=cap,
            )
            sub = f"{subject} imm_dist[leapfrog, nodes={ranks}]"
            rep.check(
                bool(np.array_equal(lf1.seeds, lf2.seeds))
                and lf1.theta == lf2.theta,
                "oracle.leapfrog-determinism",
                sub,
                "two identical leap-frog runs diverged: "
                + _seed_mismatch(lf1.seeds, lf2.seeds),
            )
            rep.check(
                len(np.unique(lf1.seeds)) == k
                and int(lf1.seeds.min()) >= 0
                and int(lf1.seeds.max()) < graph.n,
                "oracle.seed-set-wellformed",
                sub,
                f"leap-frog seed set malformed: {lf1.seeds.tolist()}",
            )

    # -- real-parallel process-pool engine --------------------------------
    if cfg.check_engine:
        # Sampling-level: bitwise equality across workers × chunk sizes.
        rep.merge(
            check_engine_sampling(
                graph, model, min(ref.theta, cap), cfg.seed, subject,
                workers=cfg.engine_workers,
                chunk_sizes=cfg.engine_chunk_sizes,
            )
        )
        # End-to-end: the full driver on a pool must reproduce the serial
        # run exactly — seeds, theta, and the per-round coverage history.
        for w in cfg.engine_workers:
            if w <= 1:
                continue
            par = imm(
                graph, k, eps, model, seed=seed, layout="sorted",
                theta_cap=cap, workers=w,
            )
            sub = f"{subject} imm[workers={w}]"
            rep.check(
                bool(np.array_equal(ref.seeds, par.seeds))
                and ref.theta == par.theta,
                "oracle.engine-seed-set",
                sub,
                _seed_mismatch(ref.seeds, par.seeds)
                + f"; theta {ref.theta} vs {par.theta}",
            )
            rep.check(
                par.extra["coverage_history"] == ref.extra["coverage_history"],
                "oracle.engine-coverage-history",
                sub,
                f"per-round (theta_x, frac) diverges: "
                f"{par.extra['coverage_history']} vs "
                f"{ref.extra['coverage_history']}",
            )

    # -- sampling engines × cohort sizes × layouts ------------------------
    sampling_rep, ref_coll = _check_sampling_equivalence(
        graph, model, ref.theta, cfg, subject
    )
    rep.merge(sampling_rep)

    # -- selection meters over the reference collection -------------------
    rep.merge(
        check_selection_meters(ref_coll, graph.n, k, cfg.rank_counts, subject)
    )

    # -- fault plans × recovery policies ----------------------------------
    if cfg.check_faults:
        rep.merge(check_recovery_equivalence(graph, model, cfg, subject))

    # -- self-healing supervised engine (real kills, real disk) -----------
    if cfg.check_supervised:
        rep.merge(check_supervised_equivalence(graph, model, cfg, subject))

    # -- frozen serving index (freeze / serve / tighten / promote) --------
    if cfg.check_serving:
        rep.merge(check_serving_equivalence(graph, model, cfg, subject))

    # -- traffic front end (admission / coalesce / bulkhead / degrade) ----
    if cfg.check_frontend:
        rep.merge(check_frontend_equivalence(graph, model, cfg, subject))

    # -- graph-partitioned distributed sampler (hash coins are IC-only) ---
    if cfg.check_partitioned and model == "IC":
        rep.merge(check_partitioned_equivalence(graph, cfg, subject))

    # -- community-IMM driver ---------------------------------------------
    if cfg.check_community:
        rep.merge(check_community_driver(graph, model, cfg, subject))
    return rep


def check_compressed_layout(
    graph, model: str, cfg: OracleConfig, subject: str
) -> ValidationReport:
    """The compressed-layout axis, run as its own sharded oracle subject.

    The compressed collection is a *full subject*, not a spot check:
    serial, pooled, and supervised execution must reproduce the sorted
    layout's seeds, θ, and coverage history bit for bit; the batched
    engine must land identical samples into it; its structural
    invariants must hold; and (when serving is enabled) a
    ``compress=True`` frozen index must serve/tighten/re-seal
    bit-identically while raising typed errors on unknown sections.
    """
    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap

    ref = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)

    # -- serial driver -----------------------------------------------------
    comp = imm(graph, k, eps, model, seed=seed, layout="compressed", theta_cap=cap)
    sub = f"{subject} imm[compressed]"
    rep.check(
        bool(np.array_equal(ref.seeds, comp.seeds)) and ref.theta == comp.theta,
        "oracle.seed-set",
        sub,
        _seed_mismatch(ref.seeds, comp.seeds)
        + f"; theta {ref.theta} vs {comp.theta}",
    )
    rep.check(
        comp.extra["coverage_history"] == ref.extra["coverage_history"],
        "oracle.coverage-history",
        sub,
        f"per-round (theta_x, frac) diverges: "
        f"{comp.extra['coverage_history']} vs {ref.extra['coverage_history']}",
    )
    rep.check(
        comp.memory_bytes > 0 and comp.memory_bytes != ref.memory_bytes,
        "oracle.layout-memory-model",
        sub,
        "compressed layout reports the flat layout's byte model — the "
        "Table 2-style comparison would silently lie",
    )

    # -- pooled driver -----------------------------------------------------
    if cfg.check_engine:
        for w in cfg.engine_workers:
            if w <= 1:
                continue
            par = imm(
                graph, k, eps, model, seed=seed, layout="compressed",
                theta_cap=cap, workers=w,
            )
            subw = f"{subject} imm[compressed, workers={w}]"
            rep.check(
                bool(np.array_equal(ref.seeds, par.seeds))
                and ref.theta == par.theta
                and par.extra["coverage_history"] == ref.extra["coverage_history"],
                "oracle.engine-seed-set",
                subw,
                _seed_mismatch(ref.seeds, par.seeds)
                + f"; theta {ref.theta} vs {par.theta}",
            )

    # -- supervised driver -------------------------------------------------
    if cfg.check_supervised:
        sup = imm(
            graph, k, eps, model, seed=seed, layout="compressed",
            theta_cap=cap, workers=cfg.supervised_workers, supervise=True,
        )
        subs = f"{subject} imm[compressed, supervised]"
        rep.check(
            bool(np.array_equal(ref.seeds, sup.seeds))
            and ref.theta == sup.theta
            and sup.extra["coverage_history"] == ref.extra["coverage_history"],
            "oracle.supervised-seed-set",
            subs,
            _seed_mismatch(ref.seeds, sup.seeds)
            + f"; theta {ref.theta} vs {sup.theta}",
        )

    # -- batched landing, invariants, and layout-selection parity ----------
    ref_coll = SortedRRRCollection(graph.n)
    sample_batch(graph, model, ref_coll, ref.theta, cfg.seed, engine="batched")
    comp_coll = CompressedRRRCollection(graph.n)
    sample_batch(graph, model, comp_coll, ref.theta, cfg.seed, engine="batched")
    rep.merge(check_collection(comp_coll, f"{subject} layout=compressed"))
    same_lists = len(comp_coll) == len(ref_coll) and all(
        np.array_equal(a, b) for a, b in zip(comp_coll, ref_coll)
    )
    rep.check(
        same_lists,
        "oracle.layout-contents",
        subject,
        "compressed layout holds different samples than the sorted layout",
    )
    sel_sorted = select_seeds(ref_coll, graph.n, cfg.k)
    sel_comp = select_seeds(comp_coll, graph.n, cfg.k)
    rep.check(
        bool(np.array_equal(sel_sorted.seeds, sel_comp.seeds))
        and sel_sorted.covered_samples == sel_comp.covered_samples
        and sel_sorted.counter_updates == sel_comp.counter_updates,
        "oracle.layout-selection",
        subject,
        _seed_mismatch(sel_sorted.seeds, sel_comp.seeds),
    )

    # -- frozen serving with the compressed section ------------------------
    if cfg.check_serving:
        rep.merge(check_compressed_serving(graph, model, cfg, subject))
    return rep


def run_oracle(
    cfg: OracleConfig, *, progress=None, shard: tuple[int, int] | None = None
) -> ValidationReport:
    """Sweep the configured datasets × models, plus the RNG laws.

    ``progress`` is an optional callable receiving one status line per
    completed subject (the CLI passes ``print``).

    ``shard=(i, m)`` (1-based) runs only every ``m``-th subject starting
    at the ``i``-th — the CI path for keeping ``--full`` under its time
    budget: the union of the ``m`` shards is exactly the unsharded
    sweep.  The subject list is ``dataset × model × layout-axis``, where
    the layout axis has three buckets per ``dataset × model`` — the core
    driver/engine sweep (:func:`check_graph_equivalence`), the
    compressed-layout subject (:func:`check_compressed_layout`), and the
    replicated-cluster subject (:func:`check_cluster_equivalence`) — so
    sharding *distributes* those axes across jobs instead of inflating
    every job with them.  The (cheap, graph-independent) RNG laws run on
    shard 1 only.
    """
    rep = ValidationReport()
    axes = ("core", "compressed") + (("cluster",) if cfg.check_cluster else ())
    subjects = [
        (name, model, axis)
        for name in cfg.datasets
        for model in cfg.models
        for axis in axes
    ]
    if shard is not None:
        i, m = shard
        if not (1 <= i <= m):
            raise ValueError(f"shard index must satisfy 1 <= i <= m, got {i}/{m}")
        subjects = subjects[i - 1 :: m]
    if shard is None or shard[0] == 1:
        rng_rep = check_rng_laws(cfg.seed)
        if progress is not None:
            progress(f"rng laws: {rng_rep.checks_run} checks, "
                     f"{len(rng_rep.violations)} violations")
        rep.merge(rng_rep)
    for name, model, axis in subjects:
        subject = f"{name}/{model}"
        graph = load(name, model)
        if axis == "core":
            graph_rep = check_graph_equivalence(graph, model, cfg, subject)
        elif axis == "compressed":
            graph_rep = check_compressed_layout(graph, model, cfg, subject)
        else:
            graph_rep = check_cluster_equivalence(graph, model, cfg, subject)
        if progress is not None:
            progress(
                f"{subject}[{axis}]: {graph_rep.checks_run} checks, "
                f"{len(graph_rep.violations)} violations"
            )
        rep.merge(graph_rep)
    return rep
