"""Front-end oracle: traffic robustness must never cost correctness.

The serving axis (:mod:`repro.validate.serving`) proves the query
*engine* is bit-identical to fresh ``imm()``; this axis proves the
traffic layer wrapped around it keeps that promise under concurrency,
overload, deadlines, and injected faults.  The contract under test:
**every response the front end returns is either bit-identical to a
fresh run or a typed** :class:`~repro.serving.DegradedServingResult`
**whose accounting follows the shrink arithmetic** — never silently
wrong, never an unbounded pileup.  Axes:

* **bit-identity** — a concurrent batch (``top_k`` at several ``k``,
  ``what_if``, ``marginal_gain``) through the front end equals the
  fresh / direct-engine answers bitwise; identical queries coalesce
  onto one execution.
* **admission** — under a synthetic overload burst the queue never
  exceeds its bound and shed queries carry a positive ``retry_after``;
  admitted + rejected accounts for every submission.
* **degraded-honesty** — an out-of-prefix query that cannot extend
  (no graph) returns a typed degraded result whose
  ``epsilon_effective`` equals :func:`~repro.serving.shrink_epsilon`
  exactly and whose seeds equal the full-prefix selection (the
  detector the ``degraded-result-reports-full-epsilon`` mutant must
  trip).
* **breaker-discipline** — consecutive injected extension crashes trip
  the circuit breaker after exactly ``threshold`` attempts; once open,
  extension-needing queries degrade *without* touching the sampler
  (the detector the ``breaker-open-still-extends`` mutant must trip).
* **republish-redispatch** — a mid-flight ``stale:@Q`` republish is
  absorbed by hot re-open + at-most-once re-dispatch, and the answer
  is still bit-identical.
* **quiesce** — after ``close()`` the cache holds zero engines and new
  queries are refused with a typed rejection.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..imm import imm
from ..serving import (
    AdmissionRejected,
    DegradedServingResult,
    ServingFrontend,
    freeze_index,
    shrink_epsilon,
)
from .report import ValidationReport

__all__ = ["check_frontend_equivalence"]


def _frontend(fe_kwargs: dict | None, **kwargs) -> ServingFrontend:
    """Build a front end, letting mutation hooks override kwargs."""
    merged = dict(kwargs)
    merged.update(fe_kwargs or {})
    return ServingFrontend(**merged)


def check_frontend_equivalence(
    graph,
    model: str,
    cfg,
    subject: str,
    *,
    _frontend_kwargs: dict | None = None,
) -> ValidationReport:
    """Run every front-end robustness axis on one graph × model.

    ``_frontend_kwargs`` is the mutation-suite hook: it forwards the
    deliberate-bug flags (``_mutate_dishonest_degrade``,
    ``_mutate_breaker_bypass``) into every front end this checker
    builds, so the suite can prove the checks below kill those faults.
    """
    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap
    fresh = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)

    with tempfile.TemporaryDirectory(prefix="repro-oracle-frontend-") as td:
        td = Path(td)
        index, _ = freeze_index(
            graph, k, eps, model, seed, theta_cap=cap, out_dir=td / "index"
        )
        frozen_m = index.num_samples
        index.close()
        asyncio.run(
            _run_axes(
                rep, graph, model, cfg, subject, td / "index", fresh,
                frozen_m, _frontend_kwargs,
            )
        )
    return rep


async def _run_axes(
    rep, graph, model, cfg, subject, path, fresh, frozen_m, fe_kwargs
):
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap
    n = graph.n

    # -- bit-identity + coalescing under concurrency ---------------------
    fe = _frontend(fe_kwargs, concurrency=3, max_pending=64)
    k2 = max(1, k // 2)
    fresh2 = imm(graph, k2, eps, model, seed=seed, layout="sorted", theta_cap=cap)
    dup = 4
    batch = await asyncio.gather(
        *[fe.top_k(path) for _ in range(dup)],
        fe.top_k(path, k2),
        fe.what_if(path, forced=(int(fresh.seeds[-1]),)),
        fe.marginal_gain(path, fresh.seeds[:2]),
    )
    tops, alt, wres, mres = batch[:dup], batch[dup], batch[dup + 1], batch[dup + 2]
    rep.check(
        all(
            bool(np.array_equal(r.seeds, fresh.seeds)) and r.theta == fresh.theta
            for r in tops
        )
        and bool(np.array_equal(alt.seeds, fresh2.seeds))
        and alt.theta == fresh2.theta,
        "frontend.bit-identity",
        subject,
        "concurrent front-end answers diverge from fresh imm(): "
        + f"{[np.asarray(r.seeds).tolist() for r in tops + [alt]]} vs "
        + f"{fresh.seeds.tolist()} / {fresh2.seeds.tolist()}",
    )
    rep.check(
        not any(r.degraded for r in tops)
        and int(wres.seeds[0]) == int(fresh.seeds[-1])
        and mres.num_samples == frozen_m,
        "frontend.zero-fault-not-degraded",
        subject,
        "zero-fault in-prefix queries must serve full-fidelity answers "
        f"(degraded={[r.degraded for r in tops]}, what_if forced seat "
        f"{wres.seeds[:1]}, marginal over {mres.num_samples} samples)",
    )
    rep.check(
        fe.stats.coalesced == dup - 1 and fe.stats.completed == dup + 3,
        "frontend.coalesce",
        subject,
        f"{dup} identical queries should coalesce onto one execution "
        f"(coalesced={fe.stats.coalesced}, completed={fe.stats.completed})",
    )
    await fe.close()

    # -- admission: bounded queue + typed shedding -----------------------
    plan = ";".join(f"slowquery:{i}x0.05" for i in range(3))
    fe = _frontend(
        fe_kwargs, concurrency=1, max_pending=3, fault_plan=plan
    )
    burst = 9
    results = await asyncio.gather(
        *[fe.top_k(path) for _ in range(burst)], return_exceptions=True
    )
    shed = [r for r in results if isinstance(r, AdmissionRejected)]
    served = [r for r in results if not isinstance(r, BaseException)]
    unexpected = [
        r for r in results
        if isinstance(r, BaseException) and not isinstance(r, AdmissionRejected)
    ]
    rep.check(
        not unexpected
        and len(shed) > 0
        and len(served) + len(shed) == burst
        and all(r.retry_after > 0 for r in shed)
        and fe.stats.peak_inflight <= 3
        and all(bool(np.array_equal(r.seeds, fresh.seeds)) for r in served),
        "frontend.admission",
        subject,
        f"overload burst of {burst} (queue bound 3): shed {len(shed)}, "
        f"served {len(served)}, peak inflight {fe.stats.peak_inflight}, "
        f"unexpected {unexpected!r} — shedding must be typed, bounded, "
        "and leave served answers bit-identical",
    )
    await fe.close()

    # -- degraded-honesty: out-of-prefix with no graph -------------------
    # On a *copy* of the index, lift the frozen cap so a tighter-eps
    # replay genuinely demands samples past the prefix; with no graph
    # attached the front end must degrade with shrink-arithmetic
    # accounting, not guess.  (A copy, so the capped original keeps
    # serving the in-prefix axes below.)
    from ..serving import FrozenRRRIndex

    uncapped = path.parent / "uncapped"
    shutil.copytree(path, uncapped)
    idx = FrozenRRRIndex.open(uncapped)
    lb = float(idx.manifest["lb"]) if idx.manifest.get("lb") is not None else 1.0
    l = float(idx.manifest["l"])
    idx.amend(theta_cap=None)
    idx.close()
    tight = eps * 0.5
    fe = _frontend(fe_kwargs, concurrency=2)
    deg = await fe.top_k(uncapped, eps=tight)
    direct = await fe.what_if(uncapped, k)  # full-prefix selection reference
    expected_eps = shrink_epsilon(n, k, l, frozen_m, lb)
    is_degraded = isinstance(deg, DegradedServingResult)
    rep.check(
        is_degraded
        and deg.theta_effective == frozen_m
        and deg.theta > deg.theta_effective
        and abs(deg.epsilon_effective - expected_eps) < 1e-12
        and deg.epsilon_effective > tight
        and deg.degraded_reason == "no-graph"
        and bool(np.array_equal(deg.seeds, direct.seeds)),
        "frontend.degraded-honesty",
        subject,
        "out-of-prefix query without a graph must return a typed "
        f"DegradedServingResult with shrink-arithmetic accounting; got "
        f"{type(deg).__name__} theta_eff="
        f"{getattr(deg, 'theta_effective', None)}/{frozen_m}, eps_eff="
        f"{getattr(deg, 'epsilon_effective', None)} (expected "
        f"{expected_eps:.6f}), reason="
        f"{getattr(deg, 'degraded_reason', None)!r}",
    )
    await fe.close()

    # -- breaker-discipline: crashes trip it, open means no extension ----
    threshold = 2
    fe = _frontend(
        fe_kwargs,
        fault_plan="extendfail:@0x8",
        breaker_threshold=threshold,
        breaker_cooldown=600.0,
    )
    outcomes = []
    for i in range(threshold + 1):
        r = await fe.top_k(uncapped, eps=tight * (1.0 - 0.02 * i), graph=graph)
        outcomes.append(getattr(r, "degraded_reason", type(r).__name__))
    rep.check(
        outcomes[:threshold] == ["extension-failed"] * threshold
        and outcomes[threshold] == "breaker-open"
        and fe.stats.extension_attempts == threshold
        and fe.stats.breaker_trips == 1
        and fe.breaker(uncapped).state == "open",
        "frontend.breaker-discipline",
        subject,
        f"after {threshold} injected extension crashes the breaker must "
        "be open and later queries must degrade without touching the "
        f"sampler; outcomes={outcomes}, attempts="
        f"{fe.stats.extension_attempts} (want {threshold}), trips="
        f"{fe.stats.breaker_trips}, state={fe.breaker(uncapped).state!r}",
    )
    await fe.close()

    # -- republish-redispatch: stale observed mid-flight -----------------
    fe = _frontend(fe_kwargs, fault_plan="stale:@0;stale:@1")
    r0, r1 = await asyncio.gather(fe.top_k(path, k), fe.what_if(path, k))
    rep.check(
        bool(np.array_equal(r0.seeds, r1.seeds))
        and not r0.degraded
        and fe.stats.republishes == 2
        and fe.cache.misses >= 2,
        "frontend.republish-redispatch",
        subject,
        "mid-flight republish must hot re-open and re-dispatch at most "
        f"once, bit-identically: republishes={fe.stats.republishes}, "
        f"misses={fe.cache.misses}, degraded={r0.degraded}",
    )
    await fe.close()

    # -- quiesce: closed front end leaks nothing, refuses typed ----------
    try:
        await fe.top_k(path)
        refused = False
    except AdmissionRejected as exc:
        refused = exc.reason == "shutdown"
    rep.check(
        refused and len(fe.cache) == 0,
        "frontend.quiesce",
        subject,
        f"closed front end must hold zero engines ({len(fe.cache)} open) "
        f"and refuse new queries with a typed rejection (refused={refused})",
    )
