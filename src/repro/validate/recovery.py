"""Recovery-equivalence oracle: fault plans × policies vs. the fault-free run.

The fault-tolerance layer makes three falsifiable promises, and this
module is where each becomes a checked claim instead of a docstring:

* **respawn is bit-exact** — for any crash plan, the recovered run's
  seeds, θ, and coverage history equal the fault-free run's, and its
  work ledger (edges examined, samples generated) is conserved: replay
  must not double-count.  The oracle also demands the fault actually
  *fired* (``respawns >= 1``) so a mis-addressed plan cannot
  vacuously pass.

* **shrink is honestly degraded** — a lost rank's generated samples are
  flagged, never silently absorbed: ``degraded=True``,
  ``theta_effective + lost_samples == theta``, the effective ε is no
  better than the requested one, and the surviving partitions hold
  exactly the live samples.  (A crash *before* anything was sampled
  must conversely re-deal everything and stay bit-exact, non-degraded.)

* **corruption without recovery is visible** — a corrupted reduce
  buffer under the abort policy must change the output; if it did not,
  the oracle could never distinguish recovery from luck.

:func:`check_rebuild_fidelity` is the primitive the respawn claim (and
the mutation suite) leans on: a rank's partition re-derived from its
sample indices alone must bitwise-equal the partition it held.
"""

from __future__ import annotations

import numpy as np

from ..community import community_imm
from ..datasets import load
from ..imm import imm
from ..mpi import imm_dist, partitioned_rr_batch, rebuild_partition
from ..parallel import PUMA
from ..rng import sample_stream
from ..sampling import RRRSampler
from .report import ValidationReport

__all__ = [
    "check_recovery_equivalence",
    "check_degraded_accounting",
    "check_rebuild_fidelity",
    "check_partitioned_equivalence",
    "check_community_driver",
]


def _same_output(a, b) -> tuple[bool, str]:
    if not np.array_equal(a.seeds, b.seeds):
        return False, f"seeds {a.seeds.tolist()} vs {b.seeds.tolist()}"
    if a.theta != b.theta:
        return False, f"theta {a.theta} vs {b.theta}"
    if a.extra.get("coverage_history") != b.extra.get("coverage_history"):
        return False, "coverage histories diverge"
    return True, ""


def check_rebuild_fidelity(
    collection, graph, model: str, deals, rank: int, upto: int, seed: int, subject: str
) -> ValidationReport:
    """``collection`` must equal the partition re-derived from indices alone."""
    rep = ValidationReport()
    ref, js, _ = rebuild_partition(graph, model, deals, rank, upto, seed)
    rep.check(
        len(collection) == len(js),
        "recovery.rebuild-count",
        subject,
        f"rebuilt partition holds {len(collection)} samples, "
        f"ownership map assigns {len(js)}",
    )
    if len(collection) == len(ref):
        flat, indptr, _ = collection.flattened()
        ref_flat, ref_indptr, _ = ref.flattened()
        rep.check(
            bool(np.array_equal(flat, ref_flat))
            and bool(np.array_equal(indptr, ref_indptr)),
            "recovery.rebuild-bitwise",
            subject,
            "rebuilt partition is not bit-identical to the index-derived "
            "reference (wrong stream or wrong indices)",
        )
    return rep


def check_degraded_accounting(result, subject: str) -> ValidationReport:
    """A (possibly) shrunk result's loss accounting must balance."""
    rep = ValidationReport()
    ex = result.extra
    theta_eff = ex["theta_effective"]
    lost = ex["lost_samples"]
    rep.check(
        theta_eff + lost == result.theta,
        "recovery.degraded-accounting",
        subject,
        f"theta_effective {theta_eff} + lost {lost} != theta {result.theta}",
    )
    rep.check(
        ex["degraded"] == (lost > 0),
        "recovery.degraded-flag",
        subject,
        f"degraded={ex['degraded']} but lost_samples={lost}",
    )
    rep.check(
        ex["epsilon_effective"] >= result.epsilon or not ex["degraded"],
        "recovery.epsilon-effective",
        subject,
        f"degraded run claims a better bound ({ex['epsilon_effective']}) "
        f"than requested ({result.epsilon})",
    )
    per_rank = ex["per_rank_samples"]
    rep.check(
        sum(per_rank) == result.num_samples and result.num_samples >= theta_eff,
        "recovery.sample-conservation",
        subject,
        f"per-rank samples {per_rank} (sum {sum(per_rank)}) vs "
        f"num_samples {result.num_samples}, theta_effective {theta_eff}",
    )
    dead = set(range(ex["num_nodes"])) - set(ex["alive_ranks"])
    rep.check(
        all(per_rank[r] == 0 for r in dead),
        "recovery.dead-rank-meters",
        subject,
        f"dead ranks {sorted(dead)} still report samples: {per_rank}",
    )
    return rep


def check_recovery_equivalence(
    graph, model: str, cfg, subject: str
) -> ValidationReport:
    """Every fault plan × policy ⇒ identical or correctly-flagged output."""
    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap

    def dist(**kw):
        return imm_dist(
            graph, k, eps, model, machine=PUMA, seed=seed, theta_cap=cap, **kw
        )

    for ranks in cfg.fault_rank_counts:
        base = dist(num_nodes=ranks)
        total_steps = base.extra["comm_calls"]

        # -- respawn: single crash, multi-rank crash, phase-addressed ----
        plans = [
            (f"crash:{ranks - 1}@3", 1),
            (f"crash:0@2;crash:{ranks - 1}@{min(7, total_steps - 1)}", 2),
            ("crash:0@phase=SelectSeeds", 1),
        ]
        for spec, expected_fires in plans:
            res = dist(num_nodes=ranks, fault_plan=spec, policy="respawn")
            sub = f"{subject} nodes={ranks} respawn[{spec}]"
            same, why = _same_output(base, res)
            rep.check(same, "recovery.respawn-bitexact", sub, why)
            rep.check(
                res.extra["recovery"]["respawns"] >= expected_fires,
                "recovery.fault-fired",
                sub,
                f"plan injected {expected_fires} crash(es) but only "
                f"{res.extra['recovery']['respawns']} respawn(s) happened",
            )
            rep.check(
                res.counters.edges_examined == base.counters.edges_examined
                and res.counters.samples_generated
                == base.counters.samples_generated,
                "recovery.respawn-meters",
                sub,
                "replayed rank double- or under-counted work: edges "
                f"{res.counters.edges_examined} vs {base.counters.edges_examined}, "
                f"samples {res.counters.samples_generated} vs "
                f"{base.counters.samples_generated}",
            )

        # -- retry: transient failures metered, output untouched ----------
        res = dist(num_nodes=ranks, fault_plan="transient:@4x2", policy="retry")
        sub = f"{subject} nodes={ranks} retry[transient:@4x2]"
        same, why = _same_output(base, res)
        rep.check(same, "recovery.retry-bitexact", sub, why)
        rep.check(
            res.extra["recovery"]["retries"] == 2
            and res.extra["comm_by_label"].get("retry", (0, 0))[0] == 2,
            "recovery.retry-metered",
            sub,
            f"expected 2 metered retries, log says "
            f"{res.extra['recovery']['retries']}, ledger says "
            f"{res.extra['comm_by_label'].get('retry')}",
        )

        # -- straggler: output identical, modeled time strictly worse -----
        res = dist(num_nodes=ranks, fault_plan="straggler:0x8", policy="retry")
        sub = f"{subject} nodes={ranks} straggler[0x8]"
        same, why = _same_output(base, res)
        rep.check(same, "recovery.straggler-bitexact", sub, why)
        rep.check(
            res.breakdown.total > base.breakdown.total,
            "recovery.straggler-priced",
            sub,
            f"8x straggler did not increase modeled time "
            f"({res.breakdown.total:.3g} vs {base.breakdown.total:.3g})",
        )

        # -- switch outage: a contiguous rank group dies at one step ------
        lo, hi = (1, 2) if ranks >= 3 else (ranks - 1, ranks - 1)
        group = hi - lo + 1
        spec = f"switch:{lo}-{hi}@3"
        res = dist(num_nodes=ranks, fault_plan=spec, policy="respawn")
        sub = f"{subject} nodes={ranks} respawn[{spec}]"
        same, why = _same_output(base, res)
        rep.check(same, "recovery.switch-respawn-bitexact", sub, why)
        rep.check(
            res.extra["recovery"]["respawns"] >= group,
            "recovery.fault-fired",
            sub,
            f"switch outage killed ranks {lo}-{hi} ({group} rank(s)) but "
            f"only {res.extra['recovery']['respawns']} respawn(s) happened",
        )
        res = dist(num_nodes=ranks, fault_plan=spec, policy="shrink")
        sub = f"{subject} nodes={ranks} shrink[{spec}]"
        rep.check(
            res.extra["recovery"]["shrinks"] >= 1
            and len(res.extra["alive_ranks"]) == ranks - group
            and not any(
                lo <= r <= hi for r in res.extra["alive_ranks"]
            ),
            "recovery.switch-shrink-group",
            sub,
            f"expected the whole group {lo}-{hi} gone after "
            f"{res.extra['recovery']['shrinks']} shrink(s); alive: "
            f"{res.extra['alive_ranks']}",
        )
        rep.merge(check_degraded_accounting(res, sub))

        # -- shrink: late crash must be flagged degraded ------------------
        res = dist(
            num_nodes=ranks,
            fault_plan=f"crash:{ranks - 1}@phase=SelectSeeds",
            policy="shrink",
        )
        sub = f"{subject} nodes={ranks} shrink[late-crash]"
        rep.check(
            res.extra["degraded"] and res.extra["recovery"]["shrinks"] == 1,
            "recovery.shrink-degraded",
            sub,
            f"degraded={res.extra['degraded']}, "
            f"shrinks={res.extra['recovery']['shrinks']}",
        )
        rep.merge(check_degraded_accounting(res, sub))
        rep.check(
            len(np.unique(res.seeds)) == k
            and int(res.seeds.min()) >= 0
            and int(res.seeds.max()) < graph.n,
            "oracle.seed-set-wellformed",
            sub,
            f"shrunk seed set malformed: {res.seeds.tolist()}",
        )

        # -- shrink: crash before anything sampled loses nothing ----------
        res = dist(num_nodes=ranks, fault_plan="crash:0@0", policy="shrink")
        sub = f"{subject} nodes={ranks} shrink[early-crash]"
        same, why = _same_output(base, res)
        rep.check(
            same and not res.extra["degraded"],
            "recovery.shrink-lossless-redeal",
            sub,
            f"pre-sampling crash should re-deal everything bit-exactly "
            f"(degraded={res.extra['degraded']}): {why}",
        )

        # -- corruption under abort must be *visible* ---------------------
        res = dist(num_nodes=ranks, fault_plan="corrupt:0@0")
        sub = f"{subject} nodes={ranks} corrupt[0@0]"
        same, _ = _same_output(base, res)
        rep.check(
            not same,
            "recovery.corruption-visible",
            sub,
            "corrupted reduce buffer left the output unchanged — the "
            "oracle cannot distinguish recovery from luck on this graph",
        )
    return rep


def check_partitioned_equivalence(graph, cfg, subject: str) -> ValidationReport:
    """Graph-partitioned sampler vs. serial hash-mode sampling (IC only)."""
    rep = ValidationReport()
    count = cfg.partitioned_samples
    sampler = RRRSampler(graph, "IC")
    reference = []
    for j in range(count):
        stream = sample_stream(cfg.seed, j)
        root = stream.randint(0, graph.n)
        verts, _ = sampler.generate(root, stream, edge_flip="hash")
        reference.append(verts)
    for ranks in cfg.partitioned_ranks:
        batch = partitioned_rr_batch(graph, count, ranks, cfg.seed, machine=PUMA)
        sub = f"{subject} partitioned[ranks={ranks}]"
        rep.check(
            len(batch.collection) == count
            and all(
                np.array_equal(reference[j], batch.collection[j])
                for j in range(count)
            ),
            "oracle.partitioned-bitwise",
            sub,
            "graph-partitioned sampler diverges from serial hash-mode "
            "sampling (vertex-partition must not change coin outcomes)",
        )
        # Every sample costs >= 1 level Allreduce; the ledger must see them.
        rep.check(
            batch.comm_calls >= len(batch.collection) and batch.comm_bytes > 0,
            "meters.partitioned-comm",
            sub,
            f"comm ledger implausible: {batch.comm_calls} calls, "
            f"{batch.comm_bytes} bytes for {len(batch.collection)} samples",
        )
    return rep


def check_community_driver(graph, model: str, cfg, subject: str) -> ValidationReport:
    """Community-IMM determinism and budget-allocation conservation."""
    rep = ValidationReport()
    a = community_imm(graph, cfg.k, cfg.eps, model, seed=cfg.seed, theta_cap=cfg.theta_cap)
    b = community_imm(graph, cfg.k, cfg.eps, model, seed=cfg.seed, theta_cap=cfg.theta_cap)
    rep.check(
        bool(np.array_equal(a.seeds, b.seeds))
        and a.allocation == b.allocation,
        "oracle.community-determinism",
        subject,
        "two identical community-IMM runs diverged",
    )
    rep.check(
        sum(a.allocation.values()) == cfg.k,
        "oracle.community-budget",
        subject,
        f"per-community budgets {a.allocation} do not sum to k={cfg.k}",
    )
    rep.check(
        len(np.unique(a.seeds)) == cfg.k
        and int(np.min(a.seeds)) >= 0
        and int(np.max(a.seeds)) < graph.n,
        "oracle.seed-set-wellformed",
        f"{subject} community",
        f"community seed set malformed: {np.asarray(a.seeds).tolist()}",
    )
    rep.check(
        all(int(c) >= 0 for c in a.allocation.values()),
        "oracle.community-allocation",
        subject,
        f"negative community budget in {a.allocation}",
    )
    return rep
