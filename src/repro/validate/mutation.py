"""Mutation testing: prove the oracle actually catches faults.

A validation subsystem that silently passes everything is worse than no
validation at all — later perf PRs would lean on a green light that
means nothing.  So ``repro-imm validate --mutate`` injects one
deliberate fault per known failure class and asserts the corresponding
checker *reports a violation*.  A mutant that survives (no violation)
fails the run.

Fault classes and the checker expected to kill each:

==========================  ==========================================
mutant                      expected detector
==========================  ==========================================
unsorted sample             ``collection.sortedness`` invariant
within-sample duplicate     ``collection.sortedness`` invariant
corrupted ``indptr``        ``collection.indptr-monotone`` invariant
corrupted ``sample_of``     ``collection.sample-of`` invariant
byte-model drift            ``collection.byte-model`` invariant
dropped inverted entry      ``collection.inverted-index`` invariant
skipped counter decrement   seed-set equivalence comparison
biased RNG draw             bitwise collection comparison
recovery skips a sample     ``recovery.rebuild-count``
wrong-stream replay         ``recovery.rebuild-bitwise``
double-count after shrink   ``recovery.degraded-accounting``
worker reorders landing     ``engine.collection-bitwise``
worker wrong stream offset  ``engine.collection-bitwise``
arena extent overlap        ``engine.collection-bitwise``
fused counter drops block   ``engine.count-partitioned``
replay lands block twice    ``supervised.collection-bitwise``
resume skips the cursor     ``supervised.collection-bitwise``
speculation lands reordered ``supervised.collection-bitwise``
stale index after change    ``serving.graph-binding``
tighten wrong stream offset ``serving.extension-bitwise``
rank perm not inverted      ``collection.compressed-decode`` invariant
counting skips cont. byte   ``collection.compressed-counters`` invariant
stale served as fresh       ``cluster.unavailable-honesty``
failover hedges a write     ``cluster.single-writer``
==========================  ==========================================

The corruption is applied *behind* the append-time validation (directly
to the flat buffers, or to a sampler's acceptance thresholds), modeling
bugs that slip in after construction — the only kind the runtime
invariants exist to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import load
from ..imm.select import select_seeds_sorted
from ..mpi import imm_dist, rebuild_partition
from ..sampling import (
    BatchedRRRSampler,
    CompressedRRRCollection,
    HypergraphRRRCollection,
    RRRSampler,
    SortedRRRCollection,
    sample_batch,
)
from ..sampling.parallel_engine import ParallelSamplingEngine
from ..sampling.supervisor import SupervisedSamplingEngine
from .engine import check_engine_sampling
from .invariants import (
    check_compressed_collection,
    check_hypergraph_collection,
    check_sorted_collection,
)
from .recovery import check_degraded_accounting, check_rebuild_fidelity
from .serving import check_index_bitwise, check_index_graph_binding
from .supervision import check_supervised_sampling

__all__ = ["MutantResult", "run_mutation_suite", "SMOKE_MUTANTS"]

#: The small real workload every sampler-level mutant runs against.
_MUTATION_DATASET = "cit-HepTh"
_MUTATION_THETA = 200


@dataclass(frozen=True)
class MutantResult:
    """Outcome of one injected fault."""

    name: str
    fault: str
    detected: bool
    evidence: str

    def __str__(self) -> str:
        verdict = "KILLED" if self.detected else "SURVIVED (oracle blind spot!)"
        return f"{self.name:24s} {verdict:10s} — {self.evidence}"


def _sample_collection(seed: int) -> SortedRRRCollection:
    """A healthy sampled collection to corrupt."""
    graph = load(_MUTATION_DATASET, "IC")
    coll = SortedRRRCollection(graph.n)
    sample_batch(graph, "IC", coll, _MUTATION_THETA, seed)
    return coll

def _violated(report, check_name: str) -> tuple[bool, str]:
    hits = [v for v in report.violations if v.check == check_name]
    if hits:
        return True, f"flagged by {check_name}: {hits[0].detail}"
    return False, (
        f"{check_name} stayed green ({report.checks_run} checks, "
        f"{len(report.violations)} unrelated violations)"
    )


def _mutant_unsorted(seed: int) -> MutantResult:
    coll = _sample_collection(seed)
    flat, indptr, _ = coll.flattened()
    # Reverse the first sample with >= 2 vertices, behind validation.
    sizes = np.diff(indptr)
    target = int(np.argmax(sizes >= 2))
    lo, hi = int(indptr[target]), int(indptr[target + 1])
    coll._flat[lo:hi] = coll._flat[lo:hi][::-1].copy()
    detected, evidence = _violated(
        check_sorted_collection(coll, "mutant"), "collection.sortedness"
    )
    return MutantResult(
        "unsorted-sample", f"reversed vertices of sample {target}", detected, evidence
    )


def _mutant_duplicate(seed: int) -> MutantResult:
    coll = _sample_collection(seed)
    _, indptr, _ = coll.flattened()
    sizes = np.diff(indptr)
    target = int(np.argmax(sizes >= 2))
    lo = int(indptr[target])
    coll._flat[lo + 1] = coll._flat[lo]  # a within-sample duplicate
    detected, evidence = _violated(
        check_sorted_collection(coll, "mutant"), "collection.sortedness"
    )
    return MutantResult(
        "within-sample-duplicate",
        f"duplicated first vertex of sample {target}",
        detected,
        evidence,
    )


def _mutant_indptr(seed: int) -> MutantResult:
    coll = _sample_collection(seed)
    mid = len(coll) // 2
    coll._indptr[mid] = coll._indptr[mid + 1] + 1  # break monotonicity
    detected, evidence = _violated(
        check_sorted_collection(coll, "mutant"), "collection.indptr-monotone"
    )
    return MutantResult(
        "indptr-corruption", f"made indptr[{mid}] exceed its successor",
        detected, evidence,
    )


def _mutant_sample_of(seed: int) -> MutantResult:
    coll = _sample_collection(seed)
    e = coll.total_entries // 2
    coll._sample_of[e] += 1  # entry claims the wrong owning sample
    detected, evidence = _violated(
        check_sorted_collection(coll, "mutant"), "collection.sample-of"
    )
    return MutantResult(
        "sample-of-corruption", f"misattributed entry {e} to the next sample",
        detected, evidence,
    )


def _mutant_byte_model(seed: int) -> MutantResult:
    coll = _sample_collection(seed)

    class _Drifted(SortedRRRCollection):
        def nbytes_model(self) -> int:  # a lost header per sample
            return super().nbytes_model() - len(self) * 24

    coll.__class__ = _Drifted
    detected, evidence = _violated(
        check_sorted_collection(coll, "mutant"), "collection.byte-model"
    )
    return MutantResult(
        "byte-model-drift", "nbytes_model under-reports one header per sample",
        detected, evidence,
    )


def _mutant_inverted_index(seed: int) -> MutantResult:
    graph = load(_MUTATION_DATASET, "IC")
    coll = HypergraphRRRCollection(graph.n)
    sample_batch(graph, "IC", coll, 50, seed)
    counts = coll.counters()
    v = int(np.argmax(counts))  # a vertex certain to have entries
    coll._inverted[v].pop()  # drop one incidence from the inverse direction
    detected, evidence = _violated(
        check_hypergraph_collection(coll, "mutant"), "collection.inverted-index"
    )
    return MutantResult(
        "inverted-index-drop",
        f"removed one sample id from vertex {v}'s inverted list",
        detected,
        evidence,
    )


def _select_skip_decrement(coll: SortedRRRCollection, n: int, k: int) -> np.ndarray:
    """The injected selection bug: greedy that never decrements.

    Structurally the same loop as the real selector, minus the purge
    accounting — the classic "forgot to subtract covered memberships"
    slip that still returns a plausible-looking seed set.
    """
    counters = coll.counters().astype(np.int64)
    seeds = np.empty(k, dtype=np.int64)
    for i in range(k):
        v = int(np.argmax(counters))
        seeds[i] = v
        counters[v] = -1  # skips the per-sample decrement entirely
    return seeds


def _mutant_skipped_decrement(seed: int) -> MutantResult:
    # A collection where skipping decrements provably flips the second
    # pick: vertex 1 covers everything vertex 0 appears in, so after a
    # correct purge vertex 0's count drops to zero and vertex 2 wins.
    coll = SortedRRRCollection(3)
    for s in ([0, 1], [0, 1], [1], [2]):
        coll.append(np.asarray(s, dtype=np.int64))
    good = select_seeds_sorted(coll, 3, 2).seeds
    bad = _select_skip_decrement(coll, 3, 2)
    diverged = not np.array_equal(good, bad)
    return MutantResult(
        "skipped-decrement",
        "greedy selector that never decrements covered memberships",
        diverged,
        (
            f"seed-set comparison caught it: {good.tolist()} vs {bad.tolist()}"
            if diverged
            else "mutant selector returned the reference seed set"
        ),
    )


def _mutant_biased_rng(seed: int) -> MutantResult:
    """Bias the IC coin acceptance and demand the bitwise compare sees it."""
    graph = load(_MUTATION_DATASET, "IC")
    reference = SortedRRRCollection(graph.n)
    sample_batch(
        graph, "IC", reference, _MUTATION_THETA, seed,
        sampler=RRRSampler(graph, "IC"), engine="serial",
    )
    sampler = BatchedRRRSampler(graph, "IC")
    # Double every acceptance threshold: each coin flip now succeeds
    # roughly twice as often — a biased draw, not a different stream.
    sampler._in_thresh = np.minimum(
        sampler._in_thresh * np.uint64(2), np.uint64(1 << 53)
    )
    sampler._thresh_shifted = None  # force the (valid) unshifted compare
    mutant = SortedRRRCollection(graph.n)
    sample_batch(
        graph, "IC", mutant, _MUTATION_THETA, seed, sampler=sampler, engine="batched"
    )
    ref_flat, ref_indptr, _ = reference.flattened()
    mut_flat, mut_indptr, _ = mutant.flattened()
    diverged = not (
        np.array_equal(ref_flat, mut_flat) and np.array_equal(ref_indptr, mut_indptr)
    )
    return MutantResult(
        "biased-rng",
        "IC edge coins accept at ~2x the configured probability",
        diverged,
        (
            f"bitwise collection comparison caught it "
            f"({reference.total_entries} vs {mutant.total_entries} entries)"
            if diverged
            else "biased sampler reproduced the reference collection"
        ),
    )


def _mutant_recovery_skip(seed: int) -> MutantResult:
    """Buggy respawn that drops the last sample of the lost rank's slice.

    The classic off-by-one in the rebuild bound: the recovered rank
    regenerates ``[0, upto - stride)`` instead of ``[0, upto)``.
    """
    graph = load(_MUTATION_DATASET, "IC")
    deals = ((0, (0, 1)),)
    upto = 60
    # rank 1 owns the odd indices; stopping 2 short drops exactly index 59
    bad, _, _ = rebuild_partition(graph, "IC", deals, 1, upto - 2, seed)
    detected, evidence = _violated(
        check_rebuild_fidelity(bad, graph, "IC", deals, 1, upto, seed, "mutant"),
        "recovery.rebuild-count",
    )
    return MutantResult(
        "recovery-skips-sample",
        "respawn rebuild stops one stride short of the crash cursor",
        detected,
        evidence,
    )


def _mutant_wrong_stream(seed: int) -> MutantResult:
    """Buggy respawn that replays the wrong RNG stream (seed off by one).

    Sample counts come out right — only the bitwise comparison against
    the index-derived reference partition can see it.
    """
    graph = load(_MUTATION_DATASET, "IC")
    deals = ((0, (0, 1)),)
    upto = 60
    bad, _, _ = rebuild_partition(graph, "IC", deals, 1, upto, seed + 1)
    detected, evidence = _violated(
        check_rebuild_fidelity(bad, graph, "IC", deals, 1, upto, seed, "mutant"),
        "recovery.rebuild-bitwise",
    )
    return MutantResult(
        "wrong-stream-replay",
        "respawn rebuild draws from seed+1 instead of the job seed",
        detected,
        evidence,
    )


def _mutant_double_count(seed: int) -> MutantResult:
    """Shrink accounting that still counts the lost block toward θ_eff.

    A real shrunk run is taken and its ``theta_effective`` is inflated
    back to the nominal θ — the "forgot to subtract the dead rank's
    samples" bug.  The accounting checker must notice the books no
    longer balance.
    """
    graph = load(_MUTATION_DATASET, "IC")
    res = imm_dist(
        graph, 5, 0.5, "IC", num_nodes=2, seed=seed, theta_cap=150,
        fault_plan="crash:1@phase=SelectSeeds", policy="shrink",
    )
    assert res.extra["degraded"], "mutant needs a genuinely shrunk run"
    res.extra["theta_effective"] = res.theta  # lost block double-counted
    detected, evidence = _violated(
        check_degraded_accounting(res, "mutant"), "recovery.degraded-accounting"
    )
    return MutantResult(
        "double-count-after-shrink",
        "degraded result reports the lost samples as still present",
        detected,
        evidence,
    )


def _mutant_engine_landing(seed: int) -> MutantResult:
    """Parent lands worker blocks in the wrong order.

    Models a completion-order landing bug (appending blocks as futures
    finish instead of in global index order).  Every block's *contents*
    are correct, so only the bitwise comparison of the assembled
    collection can see the permutation.
    """
    graph = load(_MUTATION_DATASET, "IC")
    with ParallelSamplingEngine(
        graph, "IC", workers=2, chunk_size=37, _mutate_land_order="reversed"
    ) as eng:
        report = check_engine_sampling(
            graph, "IC", _MUTATION_THETA, seed, "mutant",
            chunk_sizes=(37,), engine=eng,
        )
    detected, evidence = _violated(report, "engine.collection-bitwise")
    return MutantResult(
        "worker-reorders-cohort-landing",
        "pool parent appends sample blocks in reverse index order",
        detected,
        evidence,
    )


def _mutant_engine_offset(seed: int) -> MutantResult:
    """Worker samples block-local indices instead of global ones.

    The classic lost-offset bug: a worker handed global indices
    ``[lo, hi)`` draws the streams of ``[0, hi - lo)``.  The mutation
    sits *inside* the sampling call — the worker still checksums the
    indices it received, deliberately slipping past the protocol
    handshake — so the oracle's bitwise comparison is the detector
    under test.
    """
    graph = load(_MUTATION_DATASET, "IC")
    with ParallelSamplingEngine(
        graph, "IC", workers=2, chunk_size=37, _mutate_stream_offset=True
    ) as eng:
        report = check_engine_sampling(
            graph, "IC", _MUTATION_THETA, seed, "mutant",
            chunk_sizes=(37,), engine=eng,
        )
    detected, evidence = _violated(report, "engine.collection-bitwise")
    return MutantResult(
        "worker-uses-wrong-stream-offset",
        "pool worker samples local [0, hi-lo) instead of global [lo, hi)",
        detected,
        evidence,
    )


def _mutant_arena_overlap(seed: int) -> MutantResult:
    """Worker writes its payload past the assigned arena extent start.

    The classic extent-stitching off-by-one: every worker writes 8 bytes
    deep into its extent, so the parent's zero-copy views read a shifted
    layout — garbage at the head of ``flat`` and misaligned ``sizes``.
    Depending on where the shift lands, the corruption surfaces as a
    bitwise mismatch of the assembled collection *or* as a landing-time
    exception (the collection's invariants reject the stitched views);
    the hardened oracle reports both as ``engine.collection-bitwise``
    violations.
    """
    graph = load(_MUTATION_DATASET, "IC")
    with ParallelSamplingEngine(
        graph, "IC", workers=2, chunk_size=37, _mutate_arena_overlap=True
    ) as eng:
        report = check_engine_sampling(
            graph, "IC", _MUTATION_THETA, seed, "mutant",
            chunk_sizes=(37,), engine=eng,
        )
    detected, evidence = _violated(report, "engine.collection-bitwise")
    return MutantResult(
        "worker-writes-overlapping-arena-extent",
        "pool worker writes its block payload 8 bytes past its extent start",
        detected,
        evidence,
    )


def _mutant_fused_drop(seed: int) -> MutantResult:
    """Fused counter silently drops one block's incidences.

    The worker that produces the block containing global sample index 0
    skips accumulating it into its counter row but still reports the
    block as fused.  The landed collection is perfect — only the fused
    merge of ``count_partitioned`` under-counts, so the oracle's
    ``engine.count-partitioned`` comparison is the detector under test.
    """
    graph = load(_MUTATION_DATASET, "IC")
    with ParallelSamplingEngine(
        graph, "IC", workers=2, chunk_size=37, _mutate_fused_drop=True
    ) as eng:
        report = check_engine_sampling(
            graph, "IC", _MUTATION_THETA, seed, "mutant",
            chunk_sizes=(37,), engine=eng,
        )
    detected, evidence = _violated(report, "engine.count-partitioned")
    return MutantResult(
        "fused-counter-drops-block",
        "worker reports a block as fused-counted without accumulating it",
        detected,
        evidence,
    )


def _mutant_replay_overlap(seed: int) -> MutantResult:
    """Crash recovery that re-lands the last already-landed block.

    The classic replay-cursor bug: after a pool rebuild the supervisor
    restarts from the block *before* the landing cursor.  Every byte it
    appends is individually valid — only the bitwise comparison of the
    assembled collection (now one block too long) can see it.
    """
    graph = load(_MUTATION_DATASET, "IC")
    with SupervisedSamplingEngine(
        graph, "IC", workers=2, chunk_size=37, backoff_base=0.0,
        fault_plan="crash:0@2", _mutate_replay_overlap=True,
    ) as eng:
        report = check_supervised_sampling(
            graph, "IC", _MUTATION_THETA, seed, "mutant", engine=eng
        )
    detected, evidence = _violated(report, "supervised.collection-bitwise")
    return MutantResult(
        "replay-lands-block-twice",
        "crash recovery re-appends the block that landed before the kill",
        detected,
        evidence,
    )


def _mutant_resume_skip(seed: int) -> MutantResult:
    """Resume that skips one sample past the checkpoint cursor.

    The off-by-one at the spill boundary: the first fresh sample after
    the resumed prefix is dropped, so every later sample shifts down by
    one slot.  Counts stay plausible per block; the bitwise comparison
    against the from-scratch reference is the detector.
    """
    import os
    import tempfile

    graph = load(_MUTATION_DATASET, "IC")
    with tempfile.TemporaryDirectory(prefix="repro-mutant-ck-") as td:
        ckdir = os.path.join(td, "run")
        with SupervisedSamplingEngine(
            graph, "IC", workers=2, chunk_size=37, checkpoint_dir=ckdir
        ) as eng:
            partial = SortedRRRCollection(graph.n)
            eng.sample_into(
                partial, np.arange(_MUTATION_THETA // 2, dtype=np.int64), seed
            )
        with SupervisedSamplingEngine(
            graph, "IC", workers=2, chunk_size=37, resume_from=ckdir,
            _mutate_resume_skip=True,
        ) as eng:
            report = check_supervised_sampling(
                graph, "IC", _MUTATION_THETA, seed, "mutant", engine=eng
            )
    detected, evidence = _violated(report, "supervised.collection-bitwise")
    return MutantResult(
        "resume-skips-cursor",
        "resume drops the first sample past the checkpointed prefix",
        detected,
        evidence,
    )


def _mutant_spec_order(seed: int) -> MutantResult:
    """Speculative win that lands behind its successor block.

    The race every speculation implementation risks: the copy of the
    laggard block finishes after its successor and the supervisor lands
    them in completion order instead of index order.  Both blocks'
    bytes are correct, so only the bitwise comparison sees the swap.
    """
    graph = load(_MUTATION_DATASET, "IC")
    with SupervisedSamplingEngine(
        graph, "IC", workers=2, chunk_size=37, backoff_base=0.0,
        fault_plan="straggler:2x4", straggler_sleep=0.15,
        straggler_floor=0.02, straggler_factor=2.0, straggler_min_history=2,
        _mutate_spec_order=True,
    ) as eng:
        report = check_supervised_sampling(
            graph, "IC", _MUTATION_THETA, seed, "mutant", engine=eng
        )
    detected, evidence = _violated(report, "supervised.collection-bitwise")
    return MutantResult(
        "speculative-result-raced-in-wrong-order",
        "speculative win lands after its successor block (completion order)",
        detected,
        evidence,
    )


def _mutant_stale_index(seed: int) -> MutantResult:
    """A frozen index kept serving after the graph changed underneath it.

    The serving path that forgets to verify the graph fingerprint: the
    activation probabilities are re-weighted after the freeze (a routine
    dataset refresh), yet the old index keeps answering.  Every cached
    byte is internally consistent — the seal still verifies — so only
    the graph-binding check can see that the answers describe an
    influence instance that no longer exists.
    """
    import tempfile

    from ..graph import CSRGraph
    from ..serving import freeze_index

    graph = load(_MUTATION_DATASET, "IC")
    with tempfile.TemporaryDirectory(prefix="repro-mutant-idx-") as td:
        index, _ = freeze_index(
            graph, 5, 0.5, "IC", seed, theta_cap=_MUTATION_THETA,
            out_dir=td + "/index",
        )
        try:
            changed = CSRGraph(
                graph.n,
                graph.out_indptr, graph.out_indices, graph.out_probs * 0.5,
                graph.in_indptr, graph.in_indices, graph.in_probs * 0.5,
            )
            detected, evidence = _violated(
                check_index_graph_binding(index, changed, "mutant"),
                "serving.graph-binding",
            )
        finally:
            index.close()
    return MutantResult(
        "stale-index-served-after-graph-change",
        "edge probabilities re-weighted after the freeze, old index kept",
        detected,
        evidence,
    )


def _mutant_tighten_offset(seed: int) -> MutantResult:
    """Index extension that restarts the sample streams from zero.

    The serving twin of the pool worker's lost-offset bug: a tighten (or
    cross-``k`` query) that needs samples ``[frozen, θ)`` draws the
    streams of ``[0, θ - frozen)`` instead.  Sample counts, sizes, and
    the manifest all stay plausible — only the bitwise comparison
    against the from-scratch serial reference can see that the appended
    tail repeats the head of the stream space.
    """
    import tempfile

    from ..serving import FrozenRRRIndex, InfluenceQueryEngine

    graph = load(_MUTATION_DATASET, "IC")
    half = _MUTATION_THETA // 2
    coll = SortedRRRCollection(graph.n)
    batch = sample_batch(graph, "IC", coll, half, seed)
    with tempfile.TemporaryDirectory(prefix="repro-mutant-idx-") as td:
        index = FrozenRRRIndex.freeze(
            coll, td + "/index",
            graph=graph, model="IC", seed=seed, k=5, eps=0.5,
            theta_cap=_MUTATION_THETA, edges=batch.per_sample_edges,
        )
        try:
            eng = InfluenceQueryEngine(
                index, graph=graph, _mutate_stream_restart=True
            )
            res = eng.top_k()  # forces the (mutated) extension past `half`
            assert res.samples_added > 0, "mutant needs a genuine extension"
            detected, evidence = _violated(
                check_index_bitwise(index, graph, "IC", "mutant"),
                "serving.extension-bitwise",
            )
        finally:
            index.close()
    return MutantResult(
        "tighten-reuses-wrong-stream-offset",
        f"extension past sample {half} re-draws streams [0, …) from zero",
        detected,
        evidence,
    )


def _sample_compressed(seed: int) -> CompressedRRRCollection:
    """A healthy compressed collection over the real workload, ranked
    (the frequency permutation is final, and on this skewed graph it is
    far from the identity)."""
    graph = load(_MUTATION_DATASET, "IC")
    coll = CompressedRRRCollection(graph.n)
    sample_batch(graph, "IC", coll, _MUTATION_THETA, seed)
    coll._ensure_ranked()
    return coll


def _mutant_compressed_identity(seed: int) -> MutantResult:
    """A decoder that returns frequency ranks as if they were vertex ids.

    The classic lost-permutation bug: selection counters, seed picks,
    and served answers all silently describe the wrong vertices while
    every *structural* property still holds — each decoded sample is
    sorted, duplicate-free, in range, with the right entry counts.  Only
    the histogram comparison against the append-time frequency ground
    truth (``collection.compressed-decode``) can see that the ids came
    back un-inverted.
    """
    coll = _sample_compressed(seed)
    coll._mutate_identity_decode = True
    detected, evidence = _violated(
        check_compressed_collection(coll, "mutant"),
        "collection.compressed-decode",
    )
    return MutantResult(
        "compressed-rank-permutation-not-inverted-on-decode",
        "decode returns frequency ranks instead of original vertex ids",
        detected,
        evidence,
    )


def _mutant_compressed_continuation(seed: int) -> MutantResult:
    """A bulk counting parse that treats every byte as a varint terminal.

    The classic varint mis-framing bug, injected only into the counting
    pass's terminal mask: per-sample reads still decode perfectly, so
    the corruption is invisible to everything except the comparison of
    ``counters()`` against an independent per-sample decode
    (``collection.compressed-counters``).  A mis-framed parse may also
    trip the stream's own validation and raise a typed
    ``CodedStreamError`` — the checker counts that as the same kill.
    """
    coll = _sample_compressed(seed)
    coll._mutate_skip_continuation = True
    detected, evidence = _violated(
        check_compressed_collection(coll, "mutant"),
        "collection.compressed-counters",
    )
    return MutantResult(
        "compressed-counting-skips-continuation-byte",
        "counting parse splits multi-byte varints at every byte",
        detected,
        evidence,
    )


def _frontend_mutant(seed: int, hook: str, check_name: str):
    """Run the front-end oracle axis with one deliberate-bug flag set."""
    from ..datasets import load as load_graph
    from .frontend import check_frontend_equivalence
    from .oracle import quick_config

    cfg = quick_config()
    graph = load_graph(_MUTATION_DATASET, "IC")
    report = check_frontend_equivalence(
        graph, "IC", cfg, "mutant", _frontend_kwargs={hook: True}
    )
    return _violated(report, check_name)


def _mutant_dishonest_degrade(seed: int) -> MutantResult:
    """A front end that degrades but reports the *requested* ε as
    achieved.

    The seeds are plausible (they really are the best selection over the
    frozen prefix), the result is typed, the reason is set — only the
    shrink-arithmetic recomputation in ``frontend.degraded-honesty``
    can see that the certified guarantee is a lie.
    """
    detected, evidence = _frontend_mutant(
        seed, "_mutate_dishonest_degrade", "frontend.degraded-honesty"
    )
    return MutantResult(
        "degraded-result-reports-full-epsilon",
        "degraded answer claims epsilon_effective == requested eps",
        detected,
        evidence,
    )


def _mutant_breaker_bypass(seed: int) -> MutantResult:
    """A front end whose extension path ignores the open circuit breaker.

    Every individual answer is still correct-or-typed-degraded, so no
    bit-identity check fires; the failure mode is *operational* —
    queries keep queueing into a sick sampler instead of degrading —
    and only the attempt accounting in ``frontend.breaker-discipline``
    catches it.
    """
    detected, evidence = _frontend_mutant(
        seed, "_mutate_breaker_bypass", "frontend.breaker-discipline"
    )
    return MutantResult(
        "breaker-open-still-extends",
        "extension bulkhead entered while the circuit breaker is open",
        detected,
        evidence,
    )


def _cluster_mutant(seed: int, hook: str, check_name: str):
    """Run the cluster oracle axis with one deliberate-bug flag set."""
    from ..datasets import load as load_graph
    from .cluster import check_cluster_equivalence
    from .oracle import quick_config

    cfg = quick_config()
    graph = load_graph(_MUTATION_DATASET, "IC")
    report = check_cluster_equivalence(
        graph, "IC", cfg, "mutant", _cluster_kwargs={hook: True}
    )
    return _violated(report, check_name)


def _mutant_stale_as_fresh(seed: int) -> MutantResult:
    """A router that serves the all-replicas-down fallback untyped.

    The seeds are plausible (they really are the best selection over the
    stale local prefix) and the answer arrives promptly — but it claims
    the full requested guarantee instead of declaring itself degraded.
    Only the typed-result + shrink-arithmetic recomputation in
    ``cluster.unavailable-honesty`` can see the lie.
    """
    detected, evidence = _cluster_mutant(
        seed, "_mutate_stale_as_fresh", "cluster.unavailable-honesty"
    )
    return MutantResult(
        "cluster-unavailable-served-as-fresh",
        "all-replicas-down fallback answers as a plain (non-degraded) result",
        detected,
        evidence,
    )


def _mutant_hedge_writes(seed: int) -> MutantResult:
    """A router that hedges extension traffic like any other read.

    Two replicas race the same index extension: torn manifest renames,
    double-drawn sample streams, two writers behind one bulkhead.  The
    extension-attempt accounting in ``cluster.single-writer`` (exactly
    one attempt cluster-wide, zero hedges) is the detector under test —
    a torn index raising out of the routed tighten counts as the same
    kill.
    """
    detected, evidence = _cluster_mutant(
        seed, "_mutate_hedge_writes", "cluster.single-writer"
    )
    return MutantResult(
        "failover-double-dispatches-extension",
        "router hedges a tighten onto two replicas (two writers, one index)",
        detected,
        evidence,
    )


_MUTANTS = {
    "unsorted-sample": _mutant_unsorted,
    "within-sample-duplicate": _mutant_duplicate,
    "indptr-corruption": _mutant_indptr,
    "sample-of-corruption": _mutant_sample_of,
    "byte-model-drift": _mutant_byte_model,
    "inverted-index-drop": _mutant_inverted_index,
    "skipped-decrement": _mutant_skipped_decrement,
    "biased-rng": _mutant_biased_rng,
    "recovery-skips-sample": _mutant_recovery_skip,
    "wrong-stream-replay": _mutant_wrong_stream,
    "double-count-after-shrink": _mutant_double_count,
    "worker-reorders-cohort-landing": _mutant_engine_landing,
    "worker-uses-wrong-stream-offset": _mutant_engine_offset,
    "worker-writes-overlapping-arena-extent": _mutant_arena_overlap,
    "fused-counter-drops-block": _mutant_fused_drop,
    "replay-lands-block-twice": _mutant_replay_overlap,
    "resume-skips-cursor": _mutant_resume_skip,
    "speculative-result-raced-in-wrong-order": _mutant_spec_order,
    "stale-index-served-after-graph-change": _mutant_stale_index,
    "tighten-reuses-wrong-stream-offset": _mutant_tighten_offset,
    "degraded-result-reports-full-epsilon": _mutant_dishonest_degrade,
    "breaker-open-still-extends": _mutant_breaker_bypass,
    "cluster-unavailable-served-as-fresh": _mutant_stale_as_fresh,
    "failover-double-dispatches-extension": _mutant_hedge_writes,
    "compressed-rank-permutation-not-inverted-on-decode": _mutant_compressed_identity,
    "compressed-counting-skips-continuation-byte": _mutant_compressed_continuation,
}

#: The cheap subset tier-1 CI runs on every commit (sub-second each):
#: one representative per checker family, including all recovery classes.
SMOKE_MUTANTS = (
    "unsorted-sample",
    "indptr-corruption",
    "skipped-decrement",
    "recovery-skips-sample",
    "wrong-stream-replay",
    "double-count-after-shrink",
)


def run_mutation_suite(
    seed: int = 1, names: tuple[str, ...] | None = None
) -> list[MutantResult]:
    """Inject every fault class (or the ``names`` subset); return one
    result per mutant.

    The caller fails the run if any result has ``detected=False`` —
    a surviving mutant means the oracle has a blind spot.
    """
    if names is None:
        chosen = _MUTANTS
    else:
        unknown = [n for n in names if n not in _MUTANTS]
        if unknown:
            raise ValueError(
                f"unknown mutants {unknown}; known: {sorted(_MUTANTS)}"
            )
        chosen = {n: _MUTANTS[n] for n in names}
    return [mutant(seed) for mutant in chosen.values()]
