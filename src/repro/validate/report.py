"""Violation records and the report accumulator shared by all checkers.

Every checker in :mod:`repro.validate` returns (or merges into) a
:class:`ValidationReport`: a flat list of :class:`Violation` records plus
a count of checks that ran.  Checkers never raise on a failed invariant —
the oracle's job is to *collect* every divergence it can find in one
pass, so a single run of ``repro-imm validate`` reports the full damage
rather than the first casualty.  (Programming errors — bad arguments,
unknown datasets — still raise normally.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Violation", "ValidationReport"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    Attributes
    ----------
    check:
        Dotted name of the invariant (e.g. ``"collection.sortedness"``,
        ``"oracle.seed-set"``, ``"rng.leapfrog-tiling"``).
    subject:
        What was being checked (e.g. ``"cit-HepTh/IC cohort=7"``).
    detail:
        Human-readable description of the divergence, with enough
        numbers to start debugging from.
    """

    check: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.detail}"


@dataclass
class ValidationReport:
    """Accumulator for a validation run.

    ``checks_run`` counts individual assertions so a green report can be
    distinguished from a report that never ran anything (an oracle that
    silently skips everything would otherwise look healthy — exactly the
    failure mode the mutation tests guard against at the checker level).
    """

    violations: list[Violation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self, passed: bool, check: str, subject: str, detail: str) -> bool:
        """Record one assertion; returns ``passed`` for chaining."""
        self.checks_run += 1
        if not passed:
            self.violations.append(Violation(check, subject, detail))
        return passed

    def merge(self, other: "ValidationReport") -> "ValidationReport":
        self.violations.extend(other.violations)
        self.checks_run += other.checks_run
        return self

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [f"validate: {self.checks_run} checks, {status}"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)
