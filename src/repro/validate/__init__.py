"""``repro.validate``: runtime invariants + the cross-implementation oracle.

The correctness backstop every perf PR runs against.  Three entry
points, mirrored by the ``repro-imm validate`` CLI subcommand:

* :func:`validate_quick` — seconds-scale sweep (two registry graphs,
  reduced axes) plus the RNG partition laws; wired into
  ``benchmarks/regress.py`` so equivalence regressions fail the same
  gate as throughput regressions.
* :func:`validate_full` — the acceptance sweep: every registry graph ×
  {IC, LT} × {``imm``, ``imm_mt``, ``imm_dist``} × all three storage
  layouts × cohort sizes {1, 7, 64, θ} × rank counts {1, 2, 5} × both
  RNG schemes, plus structural invariants and work-meter conservation.
  The compressed layout and the replicated serving cluster each run as
  their own sharded subject bucket, so ``--full-shard i/m`` distributes
  them across CI jobs.
* :func:`run_mutation_suite` — injects one deliberate fault per known
  failure class and demands the oracle kill each mutant.

All checkers are importable individually for targeted tests (see
``tests/test_validate_*.py``).
"""

from __future__ import annotations

from .cluster import check_cluster_equivalence
from .engine import check_engine_sampling
from .frontend import check_frontend_equivalence
from .invariants import (
    check_collection,
    check_compressed_collection,
    check_hypergraph_collection,
    check_sorted_collection,
)
from .mutation import SMOKE_MUTANTS, MutantResult, run_mutation_suite
from .oracle import (
    OracleConfig,
    check_compressed_layout,
    check_graph_equivalence,
    check_selection_meters,
    full_config,
    quick_config,
    run_oracle,
)
from .recovery import (
    check_community_driver,
    check_degraded_accounting,
    check_partitioned_equivalence,
    check_rebuild_fidelity,
    check_recovery_equivalence,
)
from .report import ValidationReport, Violation
from .rnglaws import check_counter_streams, check_leapfrog_tiling, check_rng_laws
from .serving import (
    check_compressed_serving,
    check_index_bitwise,
    check_index_graph_binding,
    check_serving_equivalence,
)
from .supervision import check_supervised_equivalence, check_supervised_sampling

__all__ = [
    "Violation",
    "ValidationReport",
    "check_collection",
    "check_sorted_collection",
    "check_hypergraph_collection",
    "check_compressed_collection",
    "check_leapfrog_tiling",
    "check_counter_streams",
    "check_rng_laws",
    "OracleConfig",
    "quick_config",
    "full_config",
    "check_graph_equivalence",
    "check_compressed_layout",
    "check_engine_sampling",
    "check_selection_meters",
    "run_oracle",
    "check_recovery_equivalence",
    "check_degraded_accounting",
    "check_rebuild_fidelity",
    "check_partitioned_equivalence",
    "check_community_driver",
    "check_supervised_equivalence",
    "check_supervised_sampling",
    "check_serving_equivalence",
    "check_compressed_serving",
    "check_index_graph_binding",
    "check_index_bitwise",
    "check_frontend_equivalence",
    "check_cluster_equivalence",
    "MutantResult",
    "run_mutation_suite",
    "SMOKE_MUTANTS",
    "validate_quick",
    "validate_full",
]


def validate_quick(*, progress=None) -> ValidationReport:
    """The fast sweep (CI gate)."""
    return run_oracle(quick_config(), progress=progress)


def validate_full(*, progress=None, shard=None) -> ValidationReport:
    """The full acceptance sweep over every registry graph.

    Pass ``shard=(i, m)`` (1-based) to run the ``i``-th of ``m``
    interleaved subject slices — used by CI to keep each job under the
    one-minute budget.
    """
    return run_oracle(full_config(), progress=progress, shard=shard)
