"""Serving-layer oracle: frozen-index answers must equal fresh ``imm()``.

The serving layer's promise is sharper than "the cached answer is
close": because sample ``j`` is a pure function of ``(graph, model,
seed, j)`` and the query engine replays the θ-estimation control flow
over index prefixes, a frozen index must answer **bit-identically** to a
fresh ``imm()`` run for *any* ``(k, eps)`` — and must do so without
touching a single graph edge when the query fits inside the index.
Axes, one per checked claim:

* **freeze** — the facts recorded at freeze time (seeds, θ, coverage
  history) equal the fresh run's.
* **serve** — ``top_k`` at the frozen ``(k, eps)`` and at alternate
  ``k`` values is bit-identical to fresh ``imm``, with the edge meter
  asserting zero resampling (``serving.no-resample``).
* **tighten** — ``tighten(eps')`` equals a fresh run at ``eps'``, reuses
  every previously landed sample, and leaves the sealed prefix
  byte-for-byte untouched.
* **promote** — a checkpoint run directory (torn tail included) promoted
  via ``FrozenRRRIndex.freeze(run_dir)`` serves the same answers, with
  the missing θ tail extended through the deterministic streams —
  verified bitwise against a from-scratch serial reference
  (:func:`check_index_bitwise`, the detector the
  tighten-wrong-stream-offset mutant must trip).
* **binding** — the graph fingerprint pins the index to its instance:
  :func:`check_index_graph_binding` (the detector the stale-index
  mutant must trip) plus ``open(graph=modified)`` raising
  :class:`~repro.serving.frozen.StaleIndexError`.
* **cache** — the per-``(graph, model, eps)`` LRU actually bounds open
  indices and serves hits.
* **compressed** (:func:`check_compressed_serving`, its own sharded
  oracle subject) — a ``compress=True`` index holds no flat incidence
  file yet serves, tightens, and re-seals bit-identically to the flat
  index; the manifest records layout + encoding version, and a doctored
  manifest raises :class:`~repro.serving.frozen.UnknownLayoutError`
  (typed, distinct from stale-graph refusal).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from ..graph import CSRGraph
from ..imm import imm
from ..sampling import (
    BlockCheckpointSink,
    RRRSampler,
    SortedRRRCollection,
    sample_batch,
)
from ..serving import (
    COMPRESSED_ENCODING_VERSION,
    FrozenRRRIndex,
    IndexCache,
    InfluenceQueryEngine,
    StaleIndexError,
    UnknownLayoutError,
    freeze_index,
    graph_fingerprint,
)
from .report import ValidationReport

__all__ = [
    "check_serving_equivalence",
    "check_compressed_serving",
    "check_index_graph_binding",
    "check_index_bitwise",
]


def check_index_graph_binding(index, graph, subject: str) -> ValidationReport:
    """The index must be bound to exactly the graph being served.

    This is the detector for the stale-index-served-after-graph-change
    fault class: a serving path that skips fingerprint verification
    passes a mutated graph straight through, and this check must flag
    the mismatch.
    """
    rep = ValidationReport()
    frozen_fp = index.manifest.get("graph_fingerprint")
    live_fp = graph_fingerprint(graph)
    rep.check(
        frozen_fp is not None and frozen_fp == live_fp,
        "serving.graph-binding",
        subject,
        f"index frozen against graph "
        f"{frozen_fp[:12] + '…' if frozen_fp else '<unbound>'}, the live "
        f"graph is {live_fp[:12]}… — a stale index is being served after "
        "a graph change",
    )
    return rep


def check_index_bitwise(index, graph, model: str, subject: str) -> ValidationReport:
    """Every frozen byte must equal the from-scratch serial reference.

    The determinism contract makes the whole index a pure function of
    ``(graph, model, seed, num_samples)``; any serving-time extension
    that drew from a wrong stream offset (the
    tighten-reuses-wrong-stream-offset fault class) diverges here.
    """
    rep = ValidationReport()
    ref = SortedRRRCollection(graph.n)
    sample_batch(
        graph, model, ref, index.num_samples, index.seed,
        sampler=RRRSampler(graph, model), engine="serial",
    )
    ref_flat, ref_indptr, _ = ref.flattened()
    flat, indptr, _ = index.arrays()
    rep.check(
        bool(
            np.array_equal(np.asarray(flat), ref_flat)
            and np.array_equal(indptr, ref_indptr)
        ),
        "serving.extension-bitwise",
        subject,
        f"frozen index bytes diverge from the serial reference for the "
        f"same (graph, model, seed) over [0, {index.num_samples}) — an "
        "extension drew from the wrong stream offset",
    )
    return rep


def _perturbed(graph) -> CSRGraph:
    """The same topology with every activation probability nudged —
    a graph change the fingerprint must catch."""
    return CSRGraph(
        graph.n,
        graph.out_indptr, graph.out_indices, graph.out_probs * 0.5,
        graph.in_indptr, graph.in_indices, graph.in_probs * 0.5,
    )


def _seed_mismatch(a, b) -> str:
    return f"seed sets diverge: {np.asarray(a).tolist()} vs {np.asarray(b).tolist()}"


def check_serving_equivalence(
    graph, model: str, cfg, subject: str
) -> ValidationReport:
    """Freeze / serve / tighten / promote / binding / cache on one
    graph × model."""
    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap
    fresh = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)

    with tempfile.TemporaryDirectory(prefix="repro-oracle-serve-") as td:
        td = Path(td)

        # -- freeze: recorded facts equal the fresh run ------------------
        index, fres = freeze_index(
            graph, k, eps, model, seed, theta_cap=cap, out_dir=td / "index"
        )
        index.close()
        rep.check(
            bool(np.array_equal(fres.seeds, fresh.seeds))
            and fres.theta == fresh.theta
            and fres.coverage_history == fresh.extra["coverage_history"],
            "serving.freeze-seed-set",
            subject,
            _seed_mismatch(fres.seeds, fresh.seeds)
            + f"; theta {fres.theta} vs {fresh.theta}",
        )

        # -- serve: zero-copy reopen, bit-identical, zero resampling -----
        index = FrozenRRRIndex.open(td / "index", graph=graph)
        rep.merge(check_index_graph_binding(index, graph, subject))
        eng = InfluenceQueryEngine(index, graph=graph)
        res = eng.top_k()
        sub = f"{subject} serve[k={k}]"
        rep.check(
            bool(np.array_equal(res.seeds, fresh.seeds))
            and res.theta == fresh.theta,
            "serving.seed-set",
            sub,
            _seed_mismatch(res.seeds, fresh.seeds)
            + f"; theta {res.theta} vs {fresh.theta}",
        )
        rep.check(
            res.coverage_history == fresh.extra["coverage_history"],
            "serving.coverage-history",
            sub,
            f"per-round (theta_x, frac) diverges: {res.coverage_history} "
            f"vs {fresh.extra['coverage_history']}",
        )
        rep.check(
            res.samples_added == 0 and res.edges_examined == 0,
            "serving.no-resample",
            sub,
            f"in-index query resampled: {res.samples_added} samples added, "
            f"{res.edges_examined} edges examined",
        )

        # -- serve at other k values (θ saturates at the cap, so these
        #    must also come entirely from the index) ---------------------
        for k2 in (max(1, k // 2), k + 2):
            fresh2 = imm(
                graph, k2, eps, model, seed=seed, layout="sorted", theta_cap=cap
            )
            r2 = eng.top_k(k2)
            sub2 = f"{subject} serve[k={k2}]"
            rep.check(
                bool(np.array_equal(r2.seeds, fresh2.seeds))
                and r2.theta == fresh2.theta
                and r2.coverage_history == fresh2.extra["coverage_history"],
                "serving.seed-set",
                sub2,
                _seed_mismatch(r2.seeds, fresh2.seeds)
                + f"; theta {r2.theta} vs {fresh2.theta}",
            )
            rep.check(
                r2.samples_added == 0 and r2.edges_examined == 0,
                "serving.no-resample",
                sub2,
                f"cross-k query resampled: {r2.samples_added} samples "
                f"added, {r2.edges_examined} edges examined",
            )

        # -- tighten: equal to a fresh eps' run, prefix untouched --------
        eps2 = eps * 0.8
        before = index.num_samples
        flat_before = np.asarray(index.arrays()[0]).copy()
        fresh3 = imm(graph, k, eps2, model, seed=seed, layout="sorted", theta_cap=cap)
        r3 = eng.tighten(eps2)
        sub3 = f"{subject} tighten[eps={eps2:g}]"
        rep.check(
            bool(np.array_equal(r3.seeds, fresh3.seeds))
            and r3.theta == fresh3.theta
            and r3.coverage_history == fresh3.extra["coverage_history"],
            "serving.tighten-seed-set",
            sub3,
            _seed_mismatch(r3.seeds, fresh3.seeds)
            + f"; theta {r3.theta} vs {fresh3.theta}",
        )
        rep.check(
            r3.samples_reused == min(before, r3.num_samples_used)
            and index.num_samples >= before,
            "serving.tighten-reuse",
            sub3,
            f"tighten reused {r3.samples_reused} of the {before} frozen "
            f"samples (used {r3.num_samples_used}) — landed samples must "
            "never be resampled",
        )
        flat_now, _, _ = index.arrays()
        rep.check(
            bool(
                np.array_equal(
                    np.asarray(flat_now[: len(flat_before)]), flat_before
                )
            ),
            "serving.tighten-prefix",
            sub3,
            "tighten rewrote bytes inside the sealed prefix",
        )

        # -- promote: checkpoint run dir (torn tail) → index → extend ----
        half = max(1, fresh.num_samples // 2)
        part = SortedRRRCollection(graph.n)
        pbatch = sample_batch(graph, model, part, half, seed)
        pflat, pindptr, _ = part.flattened()
        ck = td / "ck"
        with BlockCheckpointSink(ck, n=graph.n, model=model, seed=seed) as sink:
            sink.append_block(
                np.arange(half, dtype=np.int64),
                pflat, np.diff(pindptr), pbatch.per_sample_edges,
            )
        with open(ck / "flat.i32.bin", "ab") as fh:
            fh.write(b"\x7f" * 7)  # torn tail beyond the cursor
        pidx = FrozenRRRIndex.freeze(
            ck, td / "promoted",
            graph=graph, model=model, seed=seed, k=k, eps=eps, theta_cap=cap,
        )
        rep.check(
            pidx.num_samples == half,
            "serving.promote-cursor",
            subject,
            f"promotion landed {pidx.num_samples} samples, cursor "
            f"certifies {half} — the torn tail must be ignored",
        )
        peng = InfluenceQueryEngine(pidx, graph=graph)
        pres = peng.top_k()
        subp = f"{subject} promote[{half}/{fresh.num_samples}]"
        rep.check(
            bool(np.array_equal(pres.seeds, fresh.seeds))
            and pres.theta == fresh.theta,
            "serving.promote-seed-set",
            subp,
            _seed_mismatch(pres.seeds, fresh.seeds)
            + f"; theta {pres.theta} vs {fresh.theta}",
        )
        rep.check(
            pres.samples_added == pres.num_samples_used - half
            and pres.samples_reused == half
            and pres.edges_examined > 0,
            "serving.promote-extends",
            subp,
            f"promoted partial index should extend {half} → "
            f"{pres.num_samples_used} via the deterministic streams; "
            f"added {pres.samples_added}, reused {pres.samples_reused}",
        )
        rep.merge(check_index_bitwise(pidx, graph, model, subp))

        # -- binding: a mutated graph must be refused at open ------------
        modified = _perturbed(graph)
        try:
            FrozenRRRIndex.open(td / "index", graph=modified)
            raised = False
        except StaleIndexError:
            raised = True
        rep.check(
            raised,
            "serving.stale-open-raises",
            subject,
            "open(graph=modified) served a stale index instead of raising "
            "StaleIndexError",
        )

        # -- cache: the LRU bounds open indices and serves hits ----------
        cache = IndexCache(capacity=1)
        try:
            cache.engine(td / "index", graph=graph)
            cache.engine(td / "promoted", graph=graph)
            cache.engine(td / "index", graph=graph)
            cache.engine(td / "index", graph=graph)
            rep.check(
                len(cache) == 1
                and cache.evictions == 2
                and cache.hits == 1
                and cache.misses == 3,
                "serving.cache-lru",
                subject,
                f"capacity-1 LRU books are wrong: size {len(cache)}, "
                f"evictions {cache.evictions}, hits {cache.hits}, "
                f"misses {cache.misses}",
            )
        finally:
            cache.close()
        index.close()
        pidx.close()
    return rep


def check_compressed_serving(
    graph, model: str, cfg, subject: str
) -> ValidationReport:
    """A ``compress=True`` frozen index must serve bit-identically to
    the flat one while holding only the coded section on disk."""
    import json

    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap
    fresh = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)

    with tempfile.TemporaryDirectory(prefix="repro-oracle-czip-") as td:
        td = Path(td)
        fdir, cdir = td / "flat", td / "comp"
        fidx, _ = freeze_index(
            graph, k, eps, model, seed, theta_cap=cap, out_dir=fdir
        )
        cidx, cres = freeze_index(
            graph, k, eps, model, seed, theta_cap=cap, out_dir=cdir,
            compress=True,
        )
        rep.check(
            bool(np.array_equal(cres.seeds, fresh.seeds))
            and cres.theta == fresh.theta
            and cres.coverage_history == fresh.extra["coverage_history"],
            "serving.compressed-freeze",
            subject,
            _seed_mismatch(cres.seeds, fresh.seeds)
            + f"; theta {cres.theta} vs {fresh.theta}",
        )
        mf = cidx.manifest
        rep.check(
            not (cdir / "flat.i32.bin").exists()
            and (cdir / "coded.u8.bin").exists()
            and mf.get("layout") == "compressed"
            and mf.get("encoding_version") == COMPRESSED_ENCODING_VERSION
            and int(mf.get("coded_bytes") or 0)
            == (cdir / "coded.u8.bin").stat().st_size,
            "serving.compressed-files",
            subject,
            "compressed index must drop flat.i32.bin, write the coded "
            "section, and record layout + encoding version in the manifest",
        )
        fidx.close()
        cidx.close()

        # -- reopen + serve: decoded arrays and answers bit-identical ----
        fidx = FrozenRRRIndex.open(fdir, graph=graph)
        cidx = FrozenRRRIndex.open(cdir, graph=graph)
        fa = np.asarray(fidx.arrays()[0])
        ca = np.asarray(cidx.arrays()[0])
        rep.check(
            bool(np.array_equal(fa, ca)),
            "serving.compressed-bitwise",
            subject,
            "compressed section does not decode to the flat index's bytes",
        )
        ceng = InfluenceQueryEngine(cidx, graph=graph)
        res = ceng.top_k()
        sub = f"{subject} serve[k={k}]"
        rep.check(
            bool(np.array_equal(res.seeds, fresh.seeds))
            and res.theta == fresh.theta
            and res.coverage_history == fresh.extra["coverage_history"],
            "serving.compressed-seed-set",
            sub,
            _seed_mismatch(res.seeds, fresh.seeds)
            + f"; theta {res.theta} vs {fresh.theta}",
        )
        rep.check(
            res.samples_added == 0 and res.edges_examined == 0,
            "serving.no-resample",
            sub,
            f"in-index query resampled: {res.samples_added} samples added, "
            f"{res.edges_examined} edges examined",
        )

        # -- tighten: extension re-encodes only appended samples ---------
        eps2 = eps * 0.8
        coded_before = (cdir / "coded.u8.bin").read_bytes()
        fresh2 = imm(
            graph, k, eps2, model, seed=seed, layout="sorted", theta_cap=cap
        )
        r2 = ceng.tighten(eps2)
        sub2 = f"{subject} tighten[eps={eps2:g}]"
        rep.check(
            bool(np.array_equal(r2.seeds, fresh2.seeds))
            and r2.theta == fresh2.theta,
            "serving.compressed-tighten",
            sub2,
            _seed_mismatch(r2.seeds, fresh2.seeds)
            + f"; theta {r2.theta} vs {fresh2.theta}",
        )
        coded_after = (cdir / "coded.u8.bin").read_bytes()
        rep.check(
            coded_after[: len(coded_before)] == coded_before,
            "serving.compressed-prefix",
            sub2,
            "tighten rewrote sealed coded bytes (extension must append "
            "under the pinned permutation)",
        )
        fidx.close()
        cidx.close()

        # -- re-open after extension: seal holds, still bit-identical ----
        cidx = FrozenRRRIndex.open(cdir, graph=graph)
        ref = SortedRRRCollection(graph.n)
        sample_batch(
            graph, model, ref, cidx.num_samples, seed,
            sampler=RRRSampler(graph, model), engine="serial",
        )
        ref_flat, _, _ = ref.flattened()
        rep.check(
            bool(np.array_equal(np.asarray(cidx.arrays()[0]), ref_flat)),
            "serving.compressed-reopen",
            subject,
            "re-opened extended compressed index diverges from the serial "
            "reference over its full sample range",
        )
        cidx.close()

        # -- unknown layout / encoding: typed refusal, not misdecoding ---
        mpath = cdir / "INDEX.json"
        doctored = json.loads(mpath.read_text())
        doctored["layout"] = "from-the-future"
        mpath.write_text(json.dumps(doctored))
        try:
            FrozenRRRIndex.open(cdir)
            raised = False
        except UnknownLayoutError:
            raised = True
        except StaleIndexError:
            raised = False
        rep.check(
            raised,
            "serving.unknown-layout",
            subject,
            "open() of an unknown-layout index must raise "
            "UnknownLayoutError (not StaleIndexError, not misdecode)",
        )
        doctored["layout"] = "compressed"
        doctored["encoding_version"] = COMPRESSED_ENCODING_VERSION + 1
        mpath.write_text(json.dumps(doctored))
        try:
            FrozenRRRIndex.open(cdir)
            raised = False
        except UnknownLayoutError:
            raised = True
        rep.check(
            raised,
            "serving.unknown-layout",
            f"{subject} encoding",
            "open() of a newer compressed encoding must raise "
            "UnknownLayoutError",
        )
    return rep
