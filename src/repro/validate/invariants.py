"""Structural invariants of the RRR collection layouts.

These are the storage-level contracts everything above the collections
assumes (binary-searched interval scans, ``bincount`` counting passes,
zero-copy ``flattened()`` views) but that only construction-time
validation used to enforce.  The checkers re-derive each property from
the raw buffers, so they catch corruption introduced *after* append
validation — the class of fault the mutation tests inject deliberately.

Checked for :class:`~repro.sampling.collection.SortedRRRCollection`:

* ``indptr`` starts at 0, is strictly increasing (every sample holds at
  least its root) and ends at ``total_entries``;
* every sample's vertex list is strictly increasing (sorted,
  duplicate-free) and within ``[0, n)``;
* ``sample_of[e]`` names the sample whose ``indptr`` interval contains
  entry ``e`` (the selection kernels' reverse map);
* ``counters()`` equals an independent bincount of the flat buffer;
* ``nbytes_model()`` equals the documented closed form (byte-model
  conservation — Table 2 comparisons silently lie if this drifts).

Checked for :class:`~repro.sampling.collection.HypergraphRRRCollection`:

* the inverted index is *exactly* the transpose of the forward lists
  (same incidences, each stored once per direction, sample ids in
  insertion order);
* ``total_entries`` equals the summed forward-list lengths;
* ``nbytes_model()`` equals its closed form.

Checked for :class:`~repro.sampling.compressed.CompressedRRRCollection`:

* the per-sample offset index is strictly increasing and lands exactly
  on the coded byte count;
* every decoded sample is sorted, duplicate-free, and within ``[0, n)``
  — i.e. the rank permutation inverts correctly on decode;
* a decode of the whole stream reproduces the append-time frequency
  histogram (the ground truth the permutation ranks by);
* ``counters()`` (the bulk counting parse) equals an independent
  per-sample decode — one varint mis-framed in the counting pass breaks
  this even when individual sample reads look fine;
* ``nbytes_model()`` equals its closed form.

A coded stream that *raises* a typed
:class:`~repro.sampling.compressed.CodedStreamError` during any of these
reads is reported as a violation of that check, not an abort: a mutated
decoder may either return garbage or trip its own validation, and the
oracle must kill it either way.
"""

from __future__ import annotations

import numpy as np

from ..sampling.collection import (
    SAMPLE_ID_BYTES,
    VECTOR_HEADER_BYTES,
    VERTEX_ID_BYTES,
    HypergraphRRRCollection,
    RRRCollection,
    SortedRRRCollection,
)
from ..sampling.compressed import CodedStreamError, CompressedRRRCollection
from .report import ValidationReport

__all__ = [
    "check_collection",
    "check_sorted_collection",
    "check_hypergraph_collection",
    "check_compressed_collection",
]


def check_sorted_collection(
    coll: SortedRRRCollection, subject: str = "SortedRRRCollection"
) -> ValidationReport:
    """Verify the flat-buffer invariants of the sorted layout."""
    rep = ValidationReport()
    flat, indptr, sample_of = coll.flattened()
    num, entries = len(coll), coll.total_entries

    rep.check(
        len(indptr) == num + 1 and (num == 0 or int(indptr[0]) == 0),
        "collection.indptr",
        subject,
        f"indptr must have {num + 1} entries starting at 0, "
        f"got len={len(indptr)} first={indptr[0] if len(indptr) else '∅'}",
    )
    rep.check(
        len(flat) == entries and len(sample_of) == entries,
        "collection.flat-length",
        subject,
        f"flat/sample_of length {len(flat)}/{len(sample_of)} != "
        f"total_entries {entries}",
    )
    if num:
        sizes = np.diff(indptr)
        monotone_ok = rep.check(
            bool((sizes > 0).all()) and int(indptr[-1]) == entries,
            "collection.indptr-monotone",
            subject,
            f"indptr must be strictly increasing and end at {entries}; "
            f"min sample size {int(sizes.min()) if len(sizes) else '∅'}, "
            f"last {int(indptr[-1])}",
        )
        # The remaining checks index through indptr, so they are only
        # well-defined once the partition itself is sound.
        if monotone_ok and entries > 1:
            # Per-sample sortedness: within a sample every consecutive
            # pair must strictly increase; pairs straddling a boundary
            # are exempt (a vertex may repeat across samples).
            nonincreasing = np.diff(flat) <= 0
            boundary = np.zeros(entries - 1, dtype=bool)
            boundary[indptr[1:-1] - 1] = True
            bad = np.flatnonzero(nonincreasing & ~boundary)
            rep.check(
                len(bad) == 0,
                "collection.sortedness",
                subject,
                f"{len(bad)} within-sample pair(s) not strictly increasing "
                f"(first at flat[{bad[0] if len(bad) else -1}])",
            )
        in_range = rep.check(
            entries == 0 or (int(flat.min()) >= 0 and int(flat.max()) < coll.n),
            "collection.vertex-range",
            subject,
            f"vertex ids must lie in [0, {coll.n})",
        )
        if monotone_ok:
            expected_owner = np.repeat(np.arange(num, dtype=np.int64), sizes)
            rep.check(
                bool(np.array_equal(sample_of, expected_owner)),
                "collection.sample-of",
                subject,
                "sample_of disagrees with the indptr partition",
            )
        if in_range:
            rep.check(
                bool(
                    np.array_equal(
                        coll.counters(), np.bincount(flat, minlength=coll.n)
                    )
                ),
                "collection.counters",
                subject,
                "counters() != independent bincount of the flat buffer",
            )
    expected_bytes = (
        VECTOR_HEADER_BYTES + num * VECTOR_HEADER_BYTES + entries * VERTEX_ID_BYTES
    )
    rep.check(
        coll.nbytes_model() == expected_bytes,
        "collection.byte-model",
        subject,
        f"nbytes_model()={coll.nbytes_model()} != closed form {expected_bytes} "
        f"(header + {num}·header + {entries}·{VERTEX_ID_BYTES})",
    )
    return rep


def check_hypergraph_collection(
    coll: HypergraphRRRCollection, subject: str = "HypergraphRRRCollection"
) -> ValidationReport:
    """Verify both directions of the bidirectional layout agree."""
    rep = ValidationReport()
    entries = sum(len(s) for s in coll)
    rep.check(
        entries == coll.total_entries,
        "collection.flat-length",
        subject,
        f"total_entries {coll.total_entries} != summed list lengths {entries}",
    )
    # Rebuild the inverted index from the forward lists and compare.
    rebuilt: list[list[int]] = [[] for _ in range(coll.n)]
    sorted_ok = True
    range_ok = True
    for sid, verts in enumerate(coll):
        v = np.asarray(verts)
        if len(v) == 0 or (len(v) > 1 and bool((np.diff(v) <= 0).any())):
            sorted_ok = False
        if len(v) and (int(v.min()) < 0 or int(v.max()) >= coll.n):
            range_ok = False
            continue
        for vertex in v.tolist():
            rebuilt[vertex].append(sid)
    rep.check(
        sorted_ok,
        "collection.sortedness",
        subject,
        "a forward vertex list is empty or not strictly increasing",
    )
    rep.check(range_ok, "collection.vertex-range", subject, f"ids outside [0, {coll.n})")
    mismatched = [
        v for v in range(coll.n) if coll.samples_containing(v) != rebuilt[v]
    ]
    rep.check(
        not mismatched,
        "collection.inverted-index",
        subject,
        f"inverted index disagrees with forward lists at "
        f"{len(mismatched)} vertex(es), first v={mismatched[0] if mismatched else -1}",
    )
    expected_bytes = (
        2 * VECTOR_HEADER_BYTES
        + len(coll) * VECTOR_HEADER_BYTES
        + coll.total_entries * VERTEX_ID_BYTES
        + coll.n * VECTOR_HEADER_BYTES
        + coll.total_entries * SAMPLE_ID_BYTES
    )
    rep.check(
        coll.nbytes_model() == expected_bytes,
        "collection.byte-model",
        subject,
        f"nbytes_model()={coll.nbytes_model()} != closed form {expected_bytes}",
    )
    return rep


def check_compressed_collection(
    coll: CompressedRRRCollection, subject: str = "CompressedRRRCollection"
) -> ValidationReport:
    """Verify the coded-stream invariants of the compressed layout.

    Every decoding section converts a typed
    :class:`~repro.sampling.compressed.CodedStreamError` into a failed
    check instead of aborting: a broken decoder may raise its own
    validation error rather than return garbage, and both count as the
    invariant being violated.
    """
    rep = ValidationReport()
    try:
        coll._ensure_ranked()
    except CodedStreamError as exc:
        rep.check(
            False,
            "collection.compressed-decode",
            subject,
            f"re-rank decode raised {type(exc).__name__}: {exc}",
        )
        return rep
    num, entries, n = len(coll), coll.total_entries, coll.n
    coded, ends, vertex_of = coll.stream()

    rep.check(
        num == 0
        or (
            int(ends[-1]) == coll.coded_bytes
            and int(ends[0]) > 0
            and (num == 1 or bool((np.diff(ends) > 0).all()))
        ),
        "collection.offset-index",
        subject,
        f"per-sample end offsets must be strictly increasing and land on "
        f"the coded byte count {coll.coded_bytes}",
    )
    rep.check(
        bool(
            np.array_equal(
                np.sort(np.asarray(vertex_of)), np.arange(n, dtype=np.int64)
            )
        ),
        "collection.permutation",
        subject,
        f"rank->vertex permutation is not a bijection on [0, {n})",
    )

    # Per-sample reads: sorted, duplicate-free, in range, and the entry
    # counts must balance the running total.
    try:
        decoded_entries = 0
        sorted_ok = True
        range_ok = True
        for i in range(num):
            v = coll[i]
            decoded_entries += len(v)
            if len(v) == 0 or (len(v) > 1 and bool((np.diff(v) <= 0).any())):
                sorted_ok = False
            if len(v) and (int(v.min()) < 0 or int(v.max()) >= n):
                range_ok = False
        rep.check(
            sorted_ok,
            "collection.sortedness",
            subject,
            "a decoded sample is empty or not strictly increasing",
        )
        rep.check(
            range_ok, "collection.vertex-range", subject, f"ids outside [0, {n})"
        )
        rep.check(
            decoded_entries == entries,
            "collection.flat-length",
            subject,
            f"decoded entry count {decoded_entries} != total_entries {entries}",
        )
    except CodedStreamError as exc:
        rep.check(
            False,
            "collection.sortedness",
            subject,
            f"per-sample decode raised {type(exc).__name__}: {exc}",
        )

    # Whole-stream decode must reproduce the append-time frequency
    # histogram: a decoder that skips the rank-permutation inversion
    # returns rank-space ids whose histogram disagrees with it.
    ref_counts: np.ndarray | None = None
    try:
        verts, _ = coll.decode_samples(np.arange(num, dtype=np.int64))
        ref_counts = np.bincount(verts, minlength=n).astype(np.int64)
        rep.check(
            bool(np.array_equal(ref_counts, coll._freq)),
            "collection.compressed-decode",
            subject,
            "decoded vertex histogram != append-time frequency histogram "
            "(rank permutation not inverted on decode?)",
        )
    except CodedStreamError as exc:
        rep.check(
            False,
            "collection.compressed-decode",
            subject,
            f"stream decode raised {type(exc).__name__}: {exc}",
        )

    # The bulk counting parse (selection's substrate) must agree with an
    # independent per-sample decode: one mis-framed varint in the
    # counting pass breaks this even when sample reads look fine.
    if ref_counts is not None:
        try:
            rep.check(
                bool(np.array_equal(coll.counters(), ref_counts)),
                "collection.compressed-counters",
                subject,
                "bulk counting parse != per-sample decode "
                "(varint framing broken in the counting pass?)",
            )
        except CodedStreamError as exc:
            rep.check(
                False,
                "collection.compressed-counters",
                subject,
                f"counting parse raised {type(exc).__name__}: {exc}",
            )

    expected_bytes = (
        2 * VECTOR_HEADER_BYTES
        + coll.coded_bytes
        + num * SAMPLE_ID_BYTES
        + n * (2 * VERTEX_ID_BYTES + SAMPLE_ID_BYTES)
    )
    rep.check(
        coll.nbytes_model() == expected_bytes,
        "collection.byte-model",
        subject,
        f"nbytes_model()={coll.nbytes_model()} != closed form {expected_bytes}",
    )
    return rep


def check_collection(coll: RRRCollection, subject: str | None = None) -> ValidationReport:
    """Dispatch to the layout-appropriate invariant checker."""
    if isinstance(coll, SortedRRRCollection):
        return check_sorted_collection(coll, subject or "SortedRRRCollection")
    if isinstance(coll, CompressedRRRCollection):
        return check_compressed_collection(coll, subject or "CompressedRRRCollection")
    if isinstance(coll, HypergraphRRRCollection):
        return check_hypergraph_collection(coll, subject or "HypergraphRRRCollection")
    raise TypeError(f"unsupported collection type {type(coll).__name__}")
