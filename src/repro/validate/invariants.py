"""Structural invariants of the RRR collection layouts.

These are the storage-level contracts everything above the collections
assumes (binary-searched interval scans, ``bincount`` counting passes,
zero-copy ``flattened()`` views) but that only construction-time
validation used to enforce.  The checkers re-derive each property from
the raw buffers, so they catch corruption introduced *after* append
validation — the class of fault the mutation tests inject deliberately.

Checked for :class:`~repro.sampling.collection.SortedRRRCollection`:

* ``indptr`` starts at 0, is strictly increasing (every sample holds at
  least its root) and ends at ``total_entries``;
* every sample's vertex list is strictly increasing (sorted,
  duplicate-free) and within ``[0, n)``;
* ``sample_of[e]`` names the sample whose ``indptr`` interval contains
  entry ``e`` (the selection kernels' reverse map);
* ``counters()`` equals an independent bincount of the flat buffer;
* ``nbytes_model()`` equals the documented closed form (byte-model
  conservation — Table 2 comparisons silently lie if this drifts).

Checked for :class:`~repro.sampling.collection.HypergraphRRRCollection`:

* the inverted index is *exactly* the transpose of the forward lists
  (same incidences, each stored once per direction, sample ids in
  insertion order);
* ``total_entries`` equals the summed forward-list lengths;
* ``nbytes_model()`` equals its closed form.
"""

from __future__ import annotations

import numpy as np

from ..sampling.collection import (
    SAMPLE_ID_BYTES,
    VECTOR_HEADER_BYTES,
    VERTEX_ID_BYTES,
    HypergraphRRRCollection,
    RRRCollection,
    SortedRRRCollection,
)
from .report import ValidationReport

__all__ = [
    "check_collection",
    "check_sorted_collection",
    "check_hypergraph_collection",
]


def check_sorted_collection(
    coll: SortedRRRCollection, subject: str = "SortedRRRCollection"
) -> ValidationReport:
    """Verify the flat-buffer invariants of the sorted layout."""
    rep = ValidationReport()
    flat, indptr, sample_of = coll.flattened()
    num, entries = len(coll), coll.total_entries

    rep.check(
        len(indptr) == num + 1 and (num == 0 or int(indptr[0]) == 0),
        "collection.indptr",
        subject,
        f"indptr must have {num + 1} entries starting at 0, "
        f"got len={len(indptr)} first={indptr[0] if len(indptr) else '∅'}",
    )
    rep.check(
        len(flat) == entries and len(sample_of) == entries,
        "collection.flat-length",
        subject,
        f"flat/sample_of length {len(flat)}/{len(sample_of)} != "
        f"total_entries {entries}",
    )
    if num:
        sizes = np.diff(indptr)
        monotone_ok = rep.check(
            bool((sizes > 0).all()) and int(indptr[-1]) == entries,
            "collection.indptr-monotone",
            subject,
            f"indptr must be strictly increasing and end at {entries}; "
            f"min sample size {int(sizes.min()) if len(sizes) else '∅'}, "
            f"last {int(indptr[-1])}",
        )
        # The remaining checks index through indptr, so they are only
        # well-defined once the partition itself is sound.
        if monotone_ok and entries > 1:
            # Per-sample sortedness: within a sample every consecutive
            # pair must strictly increase; pairs straddling a boundary
            # are exempt (a vertex may repeat across samples).
            nonincreasing = np.diff(flat) <= 0
            boundary = np.zeros(entries - 1, dtype=bool)
            boundary[indptr[1:-1] - 1] = True
            bad = np.flatnonzero(nonincreasing & ~boundary)
            rep.check(
                len(bad) == 0,
                "collection.sortedness",
                subject,
                f"{len(bad)} within-sample pair(s) not strictly increasing "
                f"(first at flat[{bad[0] if len(bad) else -1}])",
            )
        in_range = rep.check(
            entries == 0 or (int(flat.min()) >= 0 and int(flat.max()) < coll.n),
            "collection.vertex-range",
            subject,
            f"vertex ids must lie in [0, {coll.n})",
        )
        if monotone_ok:
            expected_owner = np.repeat(np.arange(num, dtype=np.int64), sizes)
            rep.check(
                bool(np.array_equal(sample_of, expected_owner)),
                "collection.sample-of",
                subject,
                "sample_of disagrees with the indptr partition",
            )
        if in_range:
            rep.check(
                bool(
                    np.array_equal(
                        coll.counters(), np.bincount(flat, minlength=coll.n)
                    )
                ),
                "collection.counters",
                subject,
                "counters() != independent bincount of the flat buffer",
            )
    expected_bytes = (
        VECTOR_HEADER_BYTES + num * VECTOR_HEADER_BYTES + entries * VERTEX_ID_BYTES
    )
    rep.check(
        coll.nbytes_model() == expected_bytes,
        "collection.byte-model",
        subject,
        f"nbytes_model()={coll.nbytes_model()} != closed form {expected_bytes} "
        f"(header + {num}·header + {entries}·{VERTEX_ID_BYTES})",
    )
    return rep


def check_hypergraph_collection(
    coll: HypergraphRRRCollection, subject: str = "HypergraphRRRCollection"
) -> ValidationReport:
    """Verify both directions of the bidirectional layout agree."""
    rep = ValidationReport()
    entries = sum(len(s) for s in coll)
    rep.check(
        entries == coll.total_entries,
        "collection.flat-length",
        subject,
        f"total_entries {coll.total_entries} != summed list lengths {entries}",
    )
    # Rebuild the inverted index from the forward lists and compare.
    rebuilt: list[list[int]] = [[] for _ in range(coll.n)]
    sorted_ok = True
    range_ok = True
    for sid, verts in enumerate(coll):
        v = np.asarray(verts)
        if len(v) == 0 or (len(v) > 1 and bool((np.diff(v) <= 0).any())):
            sorted_ok = False
        if len(v) and (int(v.min()) < 0 or int(v.max()) >= coll.n):
            range_ok = False
            continue
        for vertex in v.tolist():
            rebuilt[vertex].append(sid)
    rep.check(
        sorted_ok,
        "collection.sortedness",
        subject,
        "a forward vertex list is empty or not strictly increasing",
    )
    rep.check(range_ok, "collection.vertex-range", subject, f"ids outside [0, {coll.n})")
    mismatched = [
        v for v in range(coll.n) if coll.samples_containing(v) != rebuilt[v]
    ]
    rep.check(
        not mismatched,
        "collection.inverted-index",
        subject,
        f"inverted index disagrees with forward lists at "
        f"{len(mismatched)} vertex(es), first v={mismatched[0] if mismatched else -1}",
    )
    expected_bytes = (
        2 * VECTOR_HEADER_BYTES
        + len(coll) * VECTOR_HEADER_BYTES
        + coll.total_entries * VERTEX_ID_BYTES
        + coll.n * VECTOR_HEADER_BYTES
        + coll.total_entries * SAMPLE_ID_BYTES
    )
    rep.check(
        coll.nbytes_model() == expected_bytes,
        "collection.byte-model",
        subject,
        f"nbytes_model()={coll.nbytes_model()} != closed form {expected_bytes}",
    )
    return rep


def check_collection(coll: RRRCollection, subject: str | None = None) -> ValidationReport:
    """Dispatch to the layout-appropriate invariant checker."""
    if isinstance(coll, SortedRRRCollection):
        return check_sorted_collection(coll, subject or "SortedRRRCollection")
    if isinstance(coll, HypergraphRRRCollection):
        return check_hypergraph_collection(coll, subject or "HypergraphRRRCollection")
    raise TypeError(f"unsupported collection type {type(coll).__name__}")
