"""Cluster oracle: replication must never cost correctness.

The frontend axis (:mod:`repro.validate.frontend`) proves one traffic
layer keeps the engine's bit-identity promise; this axis proves the
*replicated* layer above it — consistent-hash routing, failover,
hedging, single-writer discipline — keeps it too.  The contract under
test: **every routed, failed-over, or hedged answer is either
bit-identical to a fresh** ``imm()`` **run or an explicitly typed
degraded/rejected result**, and the router recovers healed replicas.
Axes:

* **bit-identity** — a concurrent mixed batch through a fault-free
  router equals the fresh answers bitwise, with nothing degraded and
  every dispatch landing on the rendezvous primary.
* **failover** — the primary replica crashed: the answer is still
  bit-identical, served via the next replica in rendezvous order, and
  the failure is health-accounted.
* **hedge** — a straggling primary: the hedge fires after the delay,
  the fast replica's answer wins bit-identically, and the loser is
  cancelled and counted.
* **partition-heal** — a one-query partition window: the covered query
  fails over, and once the window closes (plus breaker cooldown) the
  router routes back to the healed primary.
* **unavailable-honesty** — every replica down: a selection query is
  answered from the stale local prefix as a typed
  :class:`DegradedServingResult` whose ``epsilon_effective`` equals
  :func:`~repro.serving.shrink_epsilon` exactly (the detector the
  ``cluster-unavailable-served-as-fresh`` mutant must trip), and a
  pure read is refused with a typed retry-after.
* **single-writer** — extension traffic through the router lands
  exactly one extension attempt cluster-wide, unhedged (the detector
  the ``failover-double-dispatches-extension`` mutant must trip).
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..imm import imm
from ..serving import (
    ClusterRouter,
    ClusterUnavailable,
    DegradedServingResult,
    FrozenRRRIndex,
    freeze_index,
    shrink_epsilon,
)
from .report import ValidationReport

__all__ = ["check_cluster_equivalence"]

_REPLICAS = 3


def _router(cl_kwargs: dict | None, **kwargs) -> ClusterRouter:
    """Build a router, letting mutation hooks override kwargs."""
    merged = dict(kwargs)
    merged.update(cl_kwargs or {})
    return ClusterRouter(**merged)


def check_cluster_equivalence(
    graph,
    model: str,
    cfg,
    subject: str,
    *,
    _cluster_kwargs: dict | None = None,
) -> ValidationReport:
    """Run every cluster robustness axis on one graph × model.

    ``_cluster_kwargs`` is the mutation-suite hook: it forwards the
    deliberate-bug flags (``_mutate_stale_as_fresh``,
    ``_mutate_hedge_writes``) into every router this checker builds.
    """
    rep = ValidationReport()
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap
    fresh = imm(graph, k, eps, model, seed=seed, layout="sorted", theta_cap=cap)

    with tempfile.TemporaryDirectory(prefix="repro-oracle-cluster-") as td:
        td = Path(td)
        index, _ = freeze_index(
            graph, k, eps, model, seed, theta_cap=cap, out_dir=td / "index"
        )
        frozen_m = index.num_samples
        index.close()
        asyncio.run(
            _run_axes(
                rep, graph, model, cfg, subject, td, fresh, frozen_m,
                _cluster_kwargs,
            )
        )
    return rep


async def _run_axes(rep, graph, model, cfg, subject, td, fresh, frozen_m,
                    cl_kwargs):
    k, eps, seed, cap = cfg.k, cfg.eps, cfg.seed, cfg.theta_cap
    n = graph.n
    path = td / "index"

    # -- bit-identity: fault-free routing ---------------------------------
    # Hedging off: this axis asserts every dispatch lands on the
    # rendezvous primary, and a spontaneous hedge (EWMA p99 delay can
    # drop to ~ms once the first fast query lands, while later queries
    # sit queued behind the replica's concurrency limit) would dispatch
    # a duplicate to a secondary.  Hedging has its own axis below.
    cr = _router(cl_kwargs, num_replicas=_REPLICAS, hedge=False)
    primary = cr._order(path)[0].idx
    k2 = max(1, k // 2)
    fresh2 = imm(graph, k2, eps, model, seed=seed, layout="sorted", theta_cap=cap)
    batch = await asyncio.gather(
        cr.top_k(path),
        cr.top_k(path, k2),
        cr.what_if(path, forced=(int(fresh.seeds[-1]),)),
        cr.marginal_gain(path, fresh.seeds[:2]),
    )
    top, alt, wres, mres = batch
    rep.check(
        bool(np.array_equal(top.seeds, fresh.seeds))
        and top.theta == fresh.theta
        and not top.degraded
        and bool(np.array_equal(alt.seeds, fresh2.seeds))
        and int(wres.seeds[0]) == int(fresh.seeds[-1])
        and mres.num_samples == frozen_m,
        "cluster.bit-identity",
        subject,
        "fault-free routed answers diverge from fresh imm(): "
        f"{np.asarray(top.seeds).tolist()} vs {fresh.seeds.tolist()}, "
        f"degraded={top.degraded}",
    )
    dispatched = {s["replica"]: s["dispatched"] for s in cr.replica_stats()}
    rep.check(
        cr.stats.failovers == 0
        and cr.stats.unavailable == 0
        and dispatched[primary] == len(batch)
        and sum(dispatched.values()) == len(batch),
        "cluster.routing-determinism",
        subject,
        "fault-free queries must all land on the rendezvous primary "
        f"(primary={primary}, dispatched={dispatched}, "
        f"failovers={cr.stats.failovers})",
    )
    await cr.close()

    # -- failover: crashed primary ----------------------------------------
    cr = _router(
        cl_kwargs, num_replicas=_REPLICAS,
        fault_plan=f"replicacrash:{primary}@0",
    )
    r = await cr.top_k(path)
    rep.check(
        bool(np.array_equal(r.seeds, fresh.seeds))
        and not r.degraded
        and cr.stats.failovers >= 1
        and cr.stats.replica_failures >= 1,
        "cluster.failover",
        subject,
        "a crashed primary must fail over bit-identically: "
        f"identical={bool(np.array_equal(r.seeds, fresh.seeds))}, "
        f"degraded={r.degraded}, failovers={cr.stats.failovers}, "
        f"replica_failures={cr.stats.replica_failures}",
    )
    await cr.close()

    # -- hedge: straggling primary, fast replica wins ---------------------
    cr = _router(
        cl_kwargs, num_replicas=_REPLICAS,
        fault_plan=f"replicaslow:{primary}x0.25", hedge_after=0.02,
    )
    r = await cr.top_k(path)
    rep.check(
        bool(np.array_equal(r.seeds, fresh.seeds))
        and not r.degraded
        and cr.stats.hedges >= 1
        and cr.stats.hedge_wins >= 1,
        "cluster.hedge",
        subject,
        "a hedged read against a straggling primary must win on the "
        f"fast replica bit-identically: hedges={cr.stats.hedges}, "
        f"wins={cr.stats.hedge_wins}, degraded={r.degraded}",
    )
    await cr.close()

    # -- partition-heal: window closes, router routes back ----------------
    # Hedging off here as well: a hedge racing the healed primary's
    # probe dispatch can cancel it mid-flight, leaving the breaker
    # half-open and the dispatch unaccounted — a race, not a heal bug.
    cr = _router(
        cl_kwargs, num_replicas=_REPLICAS, hedge=False,
        fault_plan=f"partition:{primary}@0",
        replica_breaker_threshold=1, replica_breaker_cooldown=0.05,
    )
    r0 = await cr.top_k(path)
    fo_during = cr.stats.failovers
    await asyncio.sleep(0.06)  # let the replica breaker cooldown expire
    r1 = await cr.top_k(path, max(1, k - 1))
    healed = {s["replica"]: s for s in cr.replica_stats()}
    rep.check(
        bool(np.array_equal(r0.seeds, fresh.seeds))
        and fo_during >= 1
        and healed[primary]["dispatched"] >= 1
        and healed[primary]["breaker_state"] == "closed"
        and not r1.degraded,
        "cluster.partition-heal",
        subject,
        "after the partition window closes the router must route back "
        f"to the healed primary: failovers={fo_during}, primary "
        f"dispatched={healed[primary]['dispatched']}, breaker="
        f"{healed[primary]['breaker_state']!r}",
    )
    await cr.close()

    # -- unavailable-honesty: every replica down --------------------------
    idx = FrozenRRRIndex.open(path)
    lb = float(idx.manifest["lb"]) if idx.manifest.get("lb") is not None else 1.0
    l = float(idx.manifest["l"])
    idx.close()
    plan = ";".join(f"replicacrash:{i}@0" for i in range(_REPLICAS))
    cr = _router(
        cl_kwargs, num_replicas=_REPLICAS, fault_plan=plan,
        replica_breaker_threshold=1,
    )
    deg = await cr.top_k(path)
    expected_eps = shrink_epsilon(n, k, l, frozen_m, lb)
    is_degraded = isinstance(deg, DegradedServingResult)
    rep.check(
        is_degraded
        and deg.theta_effective == frozen_m
        and abs(deg.epsilon_effective - expected_eps) < 1e-12
        and deg.degraded_reason == "cluster-unavailable"
        and bool(np.array_equal(deg.seeds, fresh.seeds)),
        "cluster.unavailable-honesty",
        subject,
        "with every replica down a selection query must come back as a "
        "typed DegradedServingResult with shrink-arithmetic accounting; "
        f"got {type(deg).__name__} theta_eff="
        f"{getattr(deg, 'theta_effective', None)}/{frozen_m}, eps_eff="
        f"{getattr(deg, 'epsilon_effective', None)} (expected "
        f"{expected_eps:.6f}), reason="
        f"{getattr(deg, 'degraded_reason', None)!r}",
    )
    try:
        await cr.what_if(path, k)
        refused, retry_after = False, 0.0
    except ClusterUnavailable as exc:
        refused, retry_after = True, exc.retry_after
    rep.check(
        refused and retry_after > 0,
        "cluster.unavailable-typed",
        subject,
        "a pure read with every replica down must be refused with a "
        f"typed retry-after (refused={refused}, retry_after={retry_after})",
    )
    await cr.close()

    # -- single-writer: one extension attempt cluster-wide ----------------
    # On an uncapped copy, a tighten genuinely extends; the router must
    # route it to the one writer replica, unhedged.  (Own copy: a torn
    # double-write must not poison the other axes.)
    writable = td / "writable"
    shutil.copytree(path, writable)
    widx = FrozenRRRIndex.open(writable)
    widx.amend(theta_cap=None)
    widx.close()
    tight = eps * 0.9
    fresh_tight = imm(graph, k, tight, model, seed=seed, layout="sorted")
    cr = _router(cl_kwargs, num_replicas=_REPLICAS)
    try:
        tr = await cr.tighten(writable, tight, graph=graph)
        tightened_ok = (
            bool(np.array_equal(tr.seeds, fresh_tight.seeds))
            and not tr.degraded
        )
        failure = ""
    except Exception as exc:  # a torn index IS the double-writer symptom
        tightened_ok = False
        failure = f"; tighten raised {type(exc).__name__}: {exc}"
    attempts = sum(fe.stats.extension_attempts for fe in cr.frontends())
    rep.check(
        tightened_ok and attempts == 1 and cr.stats.hedges == 0,
        "cluster.single-writer",
        subject,
        "a routed tighten must land exactly one unhedged extension "
        f"attempt cluster-wide (attempts={attempts}, "
        f"hedges={cr.stats.hedges}, ok={tightened_ok}{failure})",
    )
    await cr.close()
