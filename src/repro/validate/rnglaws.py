"""RNG partition laws: the probabilistic foundation of both parallel schemes.

Two disciplines carry the paper's "same algorithm, different schedule"
argument, and each has an exact algebraic law the oracle can check
directly instead of trusting the generators' docstrings:

* **Leap-frog LCG substreams** (``rng_scheme="leapfrog"``, Section 3.2):
  the ``p`` substreams of :func:`~repro.rng.streams.spawn_streams` must
  *exactly tile* the master sequence — substream ``r`` produces elements
  ``r, r+p, r+2p, ...`` and nothing else, so the union of all substreams
  is the serial stream and the distributed run consumes the same
  randomness as a serial one would, merely reordered.

* **Counter-based per-sample streams** (the default scheme): output
  ``c`` of sample ``j``'s stream is the pure function
  ``mix64(seed_j + c·γ)`` — index-addressable, so the cohort sampler's
  bookkeeping (:func:`~repro.sampling.batched.stream_seeds` /
  :func:`~repro.sampling.batched.stream_coins`) must reproduce the
  iterated scalar stream bit for bit, and ``jump`` must commute with
  iteration.
"""

from __future__ import annotations

import numpy as np

from ..rng import Lcg64, SplitMix64, sample_stream, spawn_streams
from ..sampling.batched import stream_coins, stream_seeds
from .report import ValidationReport

__all__ = ["check_leapfrog_tiling", "check_counter_streams", "check_rng_laws"]


def check_leapfrog_tiling(
    seed: int, sizes: tuple[int, ...] = (1, 2, 3, 5), length: int = 128
) -> ValidationReport:
    """Leap-frog substreams must exactly tile the master LCG sequence."""
    rep = ValidationReport()
    for p in sizes:
        master = Lcg64(seed)
        serial = [master.next_u64() for _ in range(p * length)]
        streams = spawn_streams(seed, p)
        for r, stream in enumerate(streams):
            subject = f"seed={seed} p={p} rank={r}"
            rep.check(
                stream.stride == p and stream.offset == r,
                "rng.leapfrog-bookkeeping",
                subject,
                f"expected stride={p} offset={r}, "
                f"got stride={stream.stride} offset={stream.offset}",
            )
            got = [stream.next_u64() for _ in range(length)]
            want = serial[r::p][:length]
            rep.check(
                got == want,
                "rng.leapfrog-tiling",
                subject,
                "substream outputs are not elements r, r+p, ... of the "
                "master sequence",
            )
        # The union of the substreams' first outputs, interleaved by
        # offset, is the master prefix — i.e. the tiling is a partition,
        # with neither overlaps nor gaps.
        streams = spawn_streams(seed, p)
        interleaved = [0] * (p * length)
        for r, stream in enumerate(streams):
            for i in range(length):
                interleaved[r + i * p] = stream.next_u64()
        rep.check(
            interleaved == serial,
            "rng.leapfrog-partition",
            f"seed={seed} p={p}",
            "interleaving the substreams does not reconstruct the master "
            "sequence",
        )
        # Block generation must agree with scalar iteration.
        a = spawn_streams(seed, p)[p - 1]
        b = a.clone()
        block = a.next_u64_block(length)
        scalars = np.array([b.next_u64() for _ in range(length)], dtype=np.uint64)
        rep.check(
            bool(np.array_equal(block, scalars)),
            "rng.leapfrog-block",
            f"seed={seed} p={p}",
            "vectorized block output diverges from scalar iteration",
        )
    return rep


def check_counter_streams(
    seed: int,
    sample_indices: tuple[int, ...] = (0, 1, 7, 63, 1000),
    counters: tuple[int, ...] = (1, 2, 5, 17, 999),
) -> ValidationReport:
    """Per-sample streams must be index-addressable, exactly.

    Verifies the three equalities the cohort sampler's determinism
    contract rests on: stream identity (``stream_seeds`` equals the
    scalar ``split``), random access (``stream_coins`` equals iterating
    the scalar stream to the same counter), and O(1) ``jump``.
    """
    rep = ValidationReport()
    idx = np.asarray(sample_indices, dtype=np.int64)
    vec_seeds = stream_seeds(seed, idx)
    for pos, j in enumerate(sample_indices):
        scalar = sample_stream(seed, j)
        subject = f"seed={seed} sample={j}"
        rep.check(
            int(vec_seeds[pos]) == scalar.seed,
            "rng.stream-identity",
            subject,
            f"stream_seeds gives {int(vec_seeds[pos]):#x}, scalar split "
            f"gives {scalar.seed:#x}",
        )
        # Iterate the scalar stream and compare each output against the
        # random-access formula at the same (1-based) counter.
        walker = sample_stream(seed, j)
        outputs = {}
        for c in range(1, max(counters) + 1):
            outputs[c] = walker.next_u64()
        direct = stream_coins(
            np.full(len(counters), vec_seeds[pos], dtype=np.uint64),
            np.asarray(counters, dtype=np.int64),
        )
        rep.check(
            all(int(direct[i]) == outputs[c] for i, c in enumerate(counters)),
            "rng.counter-random-access",
            subject,
            "stream_coins(seed, c) != the c-th iterated output",
        )
        # jump(t) then one draw == output t+1.
        for t in (0, 3, 100):
            jumper = sample_stream(seed, j)
            jumper.jump(t)
            want = stream_coins(
                np.asarray([scalar.seed], dtype=np.uint64),
                np.asarray([t + 1], dtype=np.int64),
            )
            rep.check(
                jumper.next_u64() == int(want[0]),
                "rng.counter-jump",
                subject,
                f"jump({t}) followed by a draw disagrees with random access",
            )
    # Distinct samples must get distinct streams (seed collisions would
    # silently correlate samples).
    rep.check(
        len({int(s) for s in vec_seeds}) == len(sample_indices),
        "rng.stream-distinctness",
        f"seed={seed}",
        "two sample indices mapped to the same stream seed",
    )
    # SplitMix64 block generation vs scalar iteration.
    a = SplitMix64(seed)
    b = a.clone()
    block = a.next_u64_block(64)
    scalars = np.array([b.next_u64() for _ in range(64)], dtype=np.uint64)
    rep.check(
        bool(np.array_equal(block, scalars)),
        "rng.splitmix-block",
        f"seed={seed}",
        "vectorized block output diverges from scalar iteration",
    )
    return rep


def check_rng_laws(seed: int = 0) -> ValidationReport:
    """Both partition laws under one master seed (plus a second seed to
    rule out seed-specific coincidences)."""
    rep = ValidationReport()
    for s in (seed, seed + 12345):
        rep.merge(check_leapfrog_tiling(s))
        rep.merge(check_counter_streams(s))
    return rep
