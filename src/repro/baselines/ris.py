"""Borgs et al.'s original Reverse Influence Sampling (SODA 2014).

The precursor of TIM/IMM: sample RRR sets until the *total number of
edges examined* reaches a budget ``tau``, then run greedy max-cover on
whatever samples exist.  IMM's contribution (Section 3, after
Definition 3) is exactly the removal of this threshold in favour of the
estimated θ — so keeping RIS around lets the ablation benchmarks show
what the estimation buys.

The budget that yields the paper's guarantee is
``tau = Theta(k (m + n) log^2 n / eps^3)``; the implementation exposes
the constant as a parameter since Borgs et al. leave it unspecified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..imm.select import select_seeds
from ..rng import sample_stream
from ..sampling import RRRSampler, SortedRRRCollection

__all__ = ["ris", "RISResult"]


@dataclass
class RISResult:
    """Output of :func:`ris`."""

    seeds: np.ndarray
    num_samples: int
    edges_examined: int
    coverage: float


def ris(
    graph: CSRGraph,
    k: int,
    eps: float = 0.5,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    *,
    budget_constant: float = 1.0,
    max_samples: int | None = None,
) -> RISResult:
    """Run threshold-based RIS and return the greedy seed set.

    Parameters
    ----------
    graph, k, eps, model, seed:
        The IM instance; ``eps`` enters the edge budget cubically, so
        small values explode the budget (the behaviour IMM fixes).
    budget_constant:
        Scale factor on the theoretical budget
        ``k (m + n) log2(n)^2 / eps^3``.
    max_samples:
        Optional hard cap for bounded benchmark runs.
    """
    model = DiffusionModel.parse(model)
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    n, m = graph.n, graph.m
    tau = budget_constant * k * (m + n) * (np.log2(max(n, 2)) ** 2) / eps**3
    collection = SortedRRRCollection(n)
    sampler = RRRSampler(graph, model)
    edges = 0
    j = 0
    while edges < tau:
        if max_samples is not None and j >= max_samples:
            break
        stream = sample_stream(seed, j)
        root = stream.randint(0, n)
        verts, e = sampler.generate(root, stream)
        collection.append(verts)
        # Borgs et al. count vertices + edges touched; edge count alone
        # preserves the stopping behaviour (vertices <= edges + 1).
        edges += max(e, 1)
        j += 1
    sel = select_seeds(collection, n, k)
    return RISResult(
        seeds=sel.seeds,
        num_samples=len(collection),
        edges_examined=edges,
        coverage=sel.coverage_fraction(len(collection)),
    )
