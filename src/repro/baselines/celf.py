"""Greedy hill-climbing with Monte-Carlo oracle, plus CELF / CELF++.

This is the original Kempe–Kleinberg–Tardos algorithm: ``k`` rounds of
"add the vertex with the largest marginal gain in expected spread",
where the expected spread is estimated with Monte-Carlo diffusion
trials.  Submodularity gives the ``(1 - 1/e)`` guarantee — and also
enables the two classic accelerations implemented here:

* **CELF** (Leskovec et al. 2007): marginal gains can only shrink as
  the seed set grows, so a stale upper bound from an earlier round
  lets most candidates be skipped without re-evaluation.
* **CELF++** (Goyal et al. 2011): additionally caches each candidate's
  marginal gain w.r.t. the current best candidate of the round, saving
  one oracle call whenever that candidate actually wins.

The oracle cost makes these baselines usable only on small graphs —
which is precisely the paper's argument for RIS-based methods; the
benchmark suite demonstrates the gap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..diffusion import DiffusionModel, run_trial
from ..graph import CSRGraph
from ..rng import SplitMix64

__all__ = ["greedy_celf", "celf_pp", "GreedyResult"]


@dataclass
class GreedyResult:
    """Seed set plus oracle accounting for the MC-greedy baselines."""

    seeds: np.ndarray
    spread: float
    oracle_calls: int
    #: Marginal gain recorded when each seed was selected.
    gains: list[float] = field(default_factory=list)


def _estimate_gain(
    graph: CSRGraph,
    seeds: list[int],
    candidate: int,
    model: DiffusionModel,
    trials: int,
    master: SplitMix64,
    base_spread: float,
) -> float:
    """Marginal gain of ``candidate`` on top of ``seeds`` (common random
    numbers across candidates keep comparisons low-variance)."""
    seed_arr = np.asarray(seeds + [candidate], dtype=np.int64)
    total = 0
    for t in range(trials):
        total += len(run_trial(graph, seed_arr, model, master.split(t)))
    return total / trials - base_spread


def _spread(
    graph: CSRGraph,
    seeds: list[int],
    model: DiffusionModel,
    trials: int,
    master: SplitMix64,
) -> float:
    if not seeds:
        return 0.0
    seed_arr = np.asarray(seeds, dtype=np.int64)
    total = 0
    for t in range(trials):
        total += len(run_trial(graph, seed_arr, model, master.split(t)))
    return total / trials


def greedy_celf(
    graph: CSRGraph,
    k: int,
    model: DiffusionModel | str = DiffusionModel.IC,
    trials: int = 100,
    seed: int = 0,
) -> GreedyResult:
    """CELF-accelerated greedy maximization (lazy-forward evaluation).

    Parameters
    ----------
    graph, k, model:
        The IM instance.
    trials:
        Monte-Carlo repetitions per oracle call (literature uses up to
        10,000; the default trades accuracy for usability).
    seed:
        Master seed for the oracle's common random numbers.

    Returns
    -------
    :class:`GreedyResult`; ``oracle_calls`` counts spread estimations —
    the number CELF's laziness minimizes.
    """
    model = DiffusionModel.parse(model)
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    if trials < 1:
        raise ValueError("need at least one trial")
    master = SplitMix64(seed).split(0xCE1F)
    oracle_calls = 0

    # Initial pass: gain of each singleton (heap keyed by -gain).
    heap: list[tuple[float, int, int]] = []  # (-gain, vertex, round_evaluated)
    for v in range(graph.n):
        gain = _estimate_gain(graph, [], v, model, trials, master, 0.0)
        oracle_calls += 1
        heap.append((-gain, v, 0))
    heapq.heapify(heap)

    seeds: list[int] = []
    gains: list[float] = []
    spread = 0.0
    while len(seeds) < k:
        neg_gain, v, evaluated_round = heapq.heappop(heap)
        if evaluated_round == len(seeds):
            # Fresh w.r.t. the current seed set: greedy pick.
            seeds.append(v)
            gains.append(-neg_gain)
            spread += -neg_gain
        else:
            # Stale bound: re-evaluate and push back.
            gain = _estimate_gain(graph, seeds, v, model, trials, master, spread)
            oracle_calls += 1
            heapq.heappush(heap, (-gain, v, len(seeds)))
    return GreedyResult(
        seeds=np.asarray(seeds, dtype=np.int64),
        spread=spread,
        oracle_calls=oracle_calls,
        gains=gains,
    )


def celf_pp(
    graph: CSRGraph,
    k: int,
    model: DiffusionModel | str = DiffusionModel.IC,
    trials: int = 100,
    seed: int = 0,
) -> GreedyResult:
    """CELF++ (Goyal et al.): CELF plus the previous-best optimization.

    Each heap entry remembers ``prev_best`` — the round's front-runner
    when the entry was evaluated — and the marginal gain w.r.t. the seed
    set *including* that front-runner.  If the front-runner did get
    picked, the cached second gain is exact and no oracle call is
    needed.
    """
    model = DiffusionModel.parse(model)
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    if trials < 1:
        raise ValueError("need at least one trial")
    master = SplitMix64(seed).split(0xCE1F)
    oracle_calls = 0

    # Heap entry: (-gain, v, round_evaluated, prev_best, gain_after_prev_best)
    # where `gain_after_prev_best` is v's marginal gain w.r.t. the seed
    # set *plus* the round's front-runner at evaluation time.  When that
    # front-runner is indeed the next seed, the cached value is exact.
    heap: list[tuple[float, int, int, int, float]] = []
    for v in range(graph.n):
        gain = _estimate_gain(graph, [], v, model, trials, master, 0.0)
        oracle_calls += 1
        heap.append((-gain, v, 0, -1, 0.0))
    heapq.heapify(heap)

    seeds: list[int] = []
    gains: list[float] = []
    spread = 0.0
    last_seed = -1
    round_best = -1
    round_best_gain = -1.0
    while len(seeds) < k:
        neg_gain, v, evaluated_round, prev_best, gain_prev = heapq.heappop(heap)
        if evaluated_round == len(seeds):
            seeds.append(v)
            gains.append(-neg_gain)
            spread += -neg_gain
            last_seed = v
            round_best, round_best_gain = -1, -1.0
            continue
        if prev_best == last_seed and evaluated_round == len(seeds) - 1:
            # Measured against exactly the current seed set: reuse.
            gain = gain_prev
        else:
            gain = _estimate_gain(graph, seeds, v, model, trials, master, spread)
            oracle_calls += 1
        if round_best >= 0 and round_best != v:
            # One extra oracle call buys a reusable gain for the likely
            # next round (the CELF++ trade-off).
            with_best = _spread(graph, seeds + [round_best, v], model, trials, master)
            base_with_best = spread + round_best_gain
            gain_after_best = with_best - base_with_best
            oracle_calls += 1
        else:
            gain_after_best = 0.0
        heapq.heappush(heap, (-gain, v, len(seeds), round_best, gain_after_best))
        if gain > round_best_gain:
            round_best, round_best_gain = v, gain
    return GreedyResult(
        seeds=np.asarray(seeds, dtype=np.int64),
        spread=spread,
        oracle_calls=oracle_calls,
        gains=gains,
    )
