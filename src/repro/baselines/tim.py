"""TIM+'s KPT estimation (Tang, Xiao & Shi, SIGMOD 2014).

TIM+ sits between RIS and IMM: it replaces Borgs et al.'s edge budget
with a sample count ``theta = lambda / KPT``, where ``KPT`` estimates
the expected spread of a random size-``k`` seed set from the width
statistic of sampled RRR sets.  IMM (SIGMOD 2015) superseded it with
the martingale estimator implemented in :mod:`repro.imm.theta`; this
module exists for the estimator-tightness ablation
(``benchmarks/bench_ablations.py``).

KPT estimation (TIM+'s Algorithm 2): for ``i = 1 .. log2(n) - 1``,
draw ``c_i = (6 l log n + 6 log log2 n) * 2^i`` samples; if the average
of ``kappa(R) = 1 - (1 - w(R)/m)^k`` exceeds ``1/2^i`` then return
``KPT = n * avg / 2``, where ``w(R)`` is the number of edges incident
*into* the RRR set (its width).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..diffusion import DiffusionModel
from ..graph import CSRGraph
from ..imm.theta import logcnk
from ..rng import sample_stream
from ..sampling import RRRSampler

__all__ = ["kpt_estimate", "tim_plus_theta", "tim_plus", "KPTResult", "TIMResult"]


@dataclass
class KPTResult:
    """KPT estimate with its sampling cost."""

    kpt: float
    samples_used: int
    rounds: int


def kpt_estimate(
    graph: CSRGraph,
    k: int,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    max_samples: int = 200_000,
) -> KPTResult:
    """Estimate KPT ≈ E[spread of a random size-k seed set].

    Follows TIM+'s doubling procedure.  ``max_samples`` bounds the
    total sampling for benchmark hygiene; hitting the bound returns the
    final round's estimate (a conservative lower value).
    """
    model = DiffusionModel.parse(model)
    n, m = graph.n, graph.m
    if n < 2 or m == 0:
        raise ValueError("KPT estimation needs a non-trivial graph")
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    sampler = RRRSampler(graph, model)
    in_deg = np.diff(graph.in_indptr).astype(np.int64)
    used = 0
    rounds = 0
    kpt = 1.0
    max_i = max(1, int(math.log2(n)) - 1)
    for i in range(1, max_i + 1):
        rounds += 1
        c_i = int((6 * l * math.log(n) + 6 * math.log(max(math.log2(n), 2.0))) * (2**i))
        c_i = min(c_i, max(1, max_samples - used))
        total_kappa = 0.0
        for _ in range(c_i):
            stream = sample_stream(seed, used)
            root = stream.randint(0, n)
            verts, _ = sampler.generate(root, stream)
            used += 1
            width = int(in_deg[verts].sum())
            total_kappa += 1.0 - (1.0 - width / m) ** k
        avg = total_kappa / c_i
        if avg > 1.0 / (2.0**i):
            kpt = n * avg / 2.0
            return KPTResult(kpt=kpt, samples_used=used, rounds=rounds)
        if used >= max_samples:
            break
    return KPTResult(kpt=max(n * 1.0 / (2.0**max_i), 1.0), samples_used=used, rounds=rounds)


def tim_plus(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
    *,
    theta_cap: int | None = None,
):
    """The complete TIM+ pipeline: KPT-based θ, sampling, greedy cover.

    Reuses the same sampling and selection kernels as IMM, so a
    comparison against :func:`repro.imm.imm` isolates exactly the
    estimator difference (θ size); both deliver the
    ``(1 - 1/e - ε)`` guarantee.

    Returns an object with ``seeds``, ``theta``, ``num_samples`` and
    ``coverage`` attributes (a :class:`TIMResult`).
    """
    from ..imm.select import select_seeds
    from ..sampling import RRRSampler, SortedRRRCollection
    from ..sampling.sampler import sample_batch

    model = DiffusionModel.parse(model)
    theta = tim_plus_theta(graph, k, eps, model, seed, l)
    if theta_cap is not None:
        theta = min(theta, theta_cap)
    collection = SortedRRRCollection(graph.n)
    sample_batch(
        graph, model, collection, theta, seed, sampler=RRRSampler(graph, model)
    )
    sel = select_seeds(collection, graph.n, k)
    return TIMResult(
        seeds=sel.seeds,
        theta=theta,
        num_samples=len(collection),
        coverage=sel.coverage_fraction(len(collection)),
    )


@dataclass
class TIMResult:
    """Output of :func:`tim_plus`."""

    seeds: "np.ndarray"
    theta: int
    num_samples: int
    coverage: float


def tim_plus_theta(
    graph: CSRGraph,
    k: int,
    eps: float,
    model: DiffusionModel | str = DiffusionModel.IC,
    seed: int = 0,
    l: float = 1.0,
) -> int:
    """TIM+'s sample count: ``theta = lambda / KPT`` with
    ``lambda = (8 + 2 eps) n (l log n + log C(n,k) + log 2) / eps^2``.

    Compared against IMM's θ in the estimator ablation: TIM+'s KPT is a
    looser lower bound on OPT than IMM's martingale LB, so its θ is
    systematically larger.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    n = graph.n
    kpt = kpt_estimate(graph, k, model, seed, l).kpt
    lam = (8 + 2 * eps) * n * (l * math.log(n) + logcnk(n, k) + math.log(2)) / eps**2
    return int(math.ceil(lam / kpt))
